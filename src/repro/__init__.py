"""repro — Relaxed Byzantine Vector Consensus.

A complete reproduction of *Relaxed Byzantine Vector Consensus* (Zhuolun
Xiang & Nitin H. Vaidya; brief announcement at SPAA 2016, full version
arXiv:1601.08067): the k-relaxed and (δ,p)-relaxed consensus problems,
the paper's algorithms (ALGO, Relaxed Verified Averaging), the baselines
they modify (exact BVC, verified averaging, scalar consensus, Byzantine /
reliable broadcast), the full geometric substrate (relaxed hulls, the
Γ/Ψ intersection operators, the certified δ* min-max solver, simplex
in-sphere geometry, Tverberg machinery), and a message-passing simulator
with pluggable Byzantine adversaries.

Quickstart
----------
>>> import numpy as np
>>> from repro import run_algo
>>> from repro.system import Adversary
>>> rng = np.random.default_rng(0)
>>> inputs = rng.normal(size=(4, 3))          # n = 4 processes, d = 3
>>> out = run_algo(inputs, f=1, adversary=Adversary(faulty=[3]))
>>> out.ok, out.delta_used is not None
(True, True)

Subpackages
-----------
``repro.geometry``  — convex-geometric substrate
``repro.system``    — message-passing simulator + broadcast protocols
``repro.core``      — the consensus problems, algorithms and bounds
``repro.analysis``  — workloads, metrics, table rendering
"""

from . import analysis, core, geometry, system
from .core import (
    ConsensusOutcome,
    RunSpec,
    run,
    run_algo,
    run_averaging,
    run_exact_bvc,
    run_k_relaxed,
    run_scalar,
)
from .core import bounds
from .geometry import (
    DeltaPHull,
    Hull,
    KRelaxedHull,
    delta_star,
    gamma_point,
    inradius,
    psi_k_point,
    tverberg_partition,
    tverberg_point,
)

__version__ = "1.0.0"

__all__ = [
    "ConsensusOutcome",
    "DeltaPHull",
    "Hull",
    "KRelaxedHull",
    "RunSpec",
    "__version__",
    "analysis",
    "bounds",
    "core",
    "delta_star",
    "gamma_point",
    "geometry",
    "inradius",
    "psi_k_point",
    "run",
    "run_algo",
    "run_averaging",
    "run_exact_bvc",
    "run_k_relaxed",
    "run_scalar",
    "system",
    "tverberg_partition",
    "tverberg_point",
]
