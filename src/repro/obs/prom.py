"""Prometheus text-format exposition of metrics and phase profiles.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot (and
optionally a :class:`~repro.obs.perf.PhaseProfiler` snapshot) as the
Prometheus text exposition format (version 0.0.4), so any scraper — or
plain ``curl`` — can consume the repo's telemetry:

* counters → ``# TYPE <name> counter`` + one sample;
* gauges → ``gauge`` (last-written value; ``_min``/``_max`` companions);
* exact histograms (:class:`~repro.obs.metrics.Histogram`) → ``summary``
  with exact ``quantile`` labels plus ``_sum``/``_count``;
* fixed-bucket phase timers → native ``histogram`` with cumulative
  ``le`` buckets, labelled by phase path.

Metric names are mapped into the Prometheus grammar by replacing every
character outside ``[a-zA-Z0-9_:]`` with ``_`` and prefixing ``repro_``
(``geometry.delta_star.seconds`` → ``repro_geometry_delta_star_seconds``);
the original dotted name is kept as a ``path`` label only where the
mapping is lossy (phase paths contain ``/``).

:func:`parse_prometheus_text` is a small validating parser used by the
tests and the CI smoke job: it checks every line against the exposition
grammar and returns the samples, so "the endpoint serves valid
Prometheus text" is a mechanical assertion, not a claim.

The HTTP side (:func:`serve_metrics`) is a deliberately tiny stdlib
server — one ``GET /metrics`` route over
:class:`http.server.ThreadingHTTPServer` — because the simulator is a
research artifact, not a production daemon; anything heavier belongs to
the service layer of ROADMAP item 3.
"""

from __future__ import annotations

import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping, Optional

__all__ = [
    "CONTENT_TYPE",
    "MetricsServer",
    "diff_counter_snapshots",
    "parse_prometheus_text",
    "prom_name",
    "render_metrics_snapshot",
    "render_profiler_snapshot",
    "render_exposition",
    "serve_metrics",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: Exposition grammar for one sample line:
#: ``name{label="value",...} number`` (timestamp omitted — we never emit one).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*)\})?"
    r" (?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?"
    r"|Inf|\+Inf|-Inf|NaN))$"
)

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def prom_name(name: str, prefix: str = "repro_") -> str:
    """Map a dotted metric name into the Prometheus name grammar."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return prefix + cleaned


def _fmt(value: float) -> str:
    """Number formatting for sample values (Prometheus accepts repr floats)."""
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    f = float(value)
    return repr(int(f)) if f.is_integer() and abs(f) < 2**53 else repr(f)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def render_metrics_snapshot(
    snapshot: Mapping[str, Any], *, prefix: str = "repro_"
) -> str:
    """Render a ``MetricsRegistry.snapshot()`` document as exposition text.

    Counters map to counters, gauges to gauges (with ``_min``/``_max``
    companion gauges), exact histograms to summaries with exact
    quantiles.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        record = snapshot[name]
        kind = record.get("type")
        pname = prom_name(name, prefix)
        if kind == "counter":
            lines.append(f"# HELP {pname} repro counter {name}")
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {_fmt(float(record['value']))}")
        elif kind == "gauge":
            if not record.get("updates"):
                continue
            lines.append(f"# HELP {pname} repro gauge {name}")
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_fmt(float(record['value']))}")
            lines.append(f"{pname}_min {_fmt(float(record['min']))}")
            lines.append(f"{pname}_max {_fmt(float(record['max']))}")
        elif kind == "histogram":
            lines.append(f"# HELP {pname} repro histogram {name}")
            lines.append(f"# TYPE {pname} summary")
            count = int(record.get("count", 0))
            if count:
                for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                    lines.append(
                        f'{pname}{{quantile="{q}"}} '
                        f"{_fmt(float(record[key]))}"
                    )
                lines.append(f"{pname}_sum {_fmt(float(record['total']))}")
            else:
                lines.append(f"{pname}_sum 0")
            lines.append(f"{pname}_count {count}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_profiler_snapshot(
    snapshot: Mapping[str, Any], *, prefix: str = "repro_"
) -> str:
    """Render a ``PhaseProfiler.snapshot()`` document as exposition text.

    Every phase path becomes one series of the
    ``repro_perf_phase_seconds`` histogram family (cumulative ``le``
    buckets straight from the fixed bucket ladder), plus
    ``repro_perf_phase_cpu_seconds_total`` counters; geometry-cache
    lookups surface as ``repro_perf_cache_lookups_total``.
    """
    phases: Mapping[str, Any] = snapshot.get("phases", {})
    lines: list[str] = []
    if phases:
        base = prefix + "perf_phase_seconds"
        lines.append(f"# HELP {base} wall seconds per profiled phase")
        lines.append(f"# TYPE {base} histogram")
        for path in sorted(phases):
            entry = phases[path]
            label = _escape_label(path)
            cumulative = 0
            saw_inf = False
            for bound, count in entry.get("buckets", []):
                cumulative += int(count)
                saw_inf = saw_inf or bound == "inf"
                le = "+Inf" if bound == "inf" else _fmt(float(bound))
                lines.append(
                    f'{base}_bucket{{phase="{label}",le="{le}"}} {cumulative}'
                )
            count_total = int(entry.get("count", 0))
            if not saw_inf:  # a histogram always ends with its +Inf bucket
                lines.append(
                    f'{base}_bucket{{phase="{label}",le="+Inf"}} {count_total}'
                )
            lines.append(
                f'{base}_sum{{phase="{label}"}} '
                f"{_fmt(float(entry.get('wall_seconds', 0.0)))}"
            )
            lines.append(f'{base}_count{{phase="{label}"}} {count_total}')
        cpu = prefix + "perf_phase_cpu_seconds_total"
        lines.append(f"# HELP {cpu} CPU seconds per profiled phase")
        lines.append(f"# TYPE {cpu} counter")
        for path in sorted(phases):
            label = _escape_label(path)
            lines.append(
                f'{cpu}{{phase="{label}"}} '
                f"{_fmt(float(phases[path].get('cpu_seconds', 0.0)))}"
            )
    cache: Mapping[str, Any] = snapshot.get("cache", {})
    if cache:
        name = prefix + "perf_cache_lookups_total"
        lines.append(f"# HELP {name} geometry cache lookups per kernel")
        lines.append(f"# TYPE {name} counter")
        for kernel in sorted(cache):
            entry = cache[kernel]
            klabel = _escape_label(kernel)
            for outcome in ("hits", "misses"):
                lines.append(
                    f'{name}{{kernel="{klabel}",outcome="{outcome}"}} '
                    f"{int(entry[outcome])}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def render_exposition(
    metrics_snapshot: Optional[Mapping[str, Any]] = None,
    perf_snapshot: Optional[Mapping[str, Any]] = None,
    *,
    prefix: str = "repro_",
) -> str:
    """Full scrape body: metrics first, then the phase profile (if any)."""
    parts = []
    if metrics_snapshot:
        parts.append(render_metrics_snapshot(metrics_snapshot, prefix=prefix))
    if perf_snapshot and (
        perf_snapshot.get("phases") or perf_snapshot.get("cache")
    ):
        parts.append(render_profiler_snapshot(perf_snapshot, prefix=prefix))
    body = "".join(parts)
    return body if body else "# (no metrics recorded)\n"


# ---------------------------------------------------------------------------
# validating parser (tests + CI smoke)
# ---------------------------------------------------------------------------


def parse_prometheus_text(
    text: str,
) -> list[tuple[str, dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Raises
    ------
    ValueError
        On any line that is neither a comment, blank, nor a grammatical
        sample line — the validation half of the CI smoke contract.
    """
    samples: list[tuple[str, dict[str, str], float]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip() or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(
                f"line {lineno} is not valid Prometheus text format: {line!r}"
            )
        labels: dict[str, str] = {}
        if m.group("labels"):
            for lm in _LABEL_RE.finditer(m.group("labels")):
                labels[lm.group(1)] = lm.group(2)
        raw = m.group("value")
        value = float(raw.replace("Inf", "inf").replace("NaN", "nan"))
        samples.append((m.group("name"), labels, value))
    return samples


def diff_counter_snapshots(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, float]:
    """Per-counter deltas between two ``MetricsRegistry.snapshot()`` docs.

    Only counters participate (gauges are point-in-time, histograms have
    no subtraction); counters absent from ``before`` count from zero.
    """
    out: dict[str, float] = {}
    for name, record in after.items():
        if record.get("type") != "counter":
            continue
        prev = before.get(name, {})
        base = float(prev.get("value", 0)) if prev.get("type") == "counter" else 0.0
        delta = float(record["value"]) - base
        if delta:
            out[name] = delta
    return dict(sorted(out.items()))


# ---------------------------------------------------------------------------
# the scrapeable endpoint
# ---------------------------------------------------------------------------


class MetricsServer:
    """A tiny ``GET /metrics`` HTTP server over a body-producing callable.

    ``source`` is called per scrape and must return the exposition text —
    so a live registry is re-snapshotted on every request, while a static
    snapshot just returns the same string.  ``max_requests`` makes the
    serve loop terminate after N scrapes (the CI smoke job scrapes once).
    """

    def __init__(
        self,
        source: Callable[[], str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_requests: Optional[int] = None,
    ) -> None:
        self.source = source
        self.max_requests = max_requests
        self.requests_served = 0
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404, "only /metrics is served")
                    return
                try:
                    body = outer.source().encode("utf-8")
                except Exception as exc:  # defensive: a scrape must not kill
                    self.send_error(500, f"metrics source failed: {exc}")
                    return
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                outer.requests_served += 1

            def log_message(self, format: str, *args: Any) -> None:
                return  # scrapes stay silent; the CLI prints its own line

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port resolved when 0 was asked."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> int:
        """Serve until ``max_requests`` scrapes (or forever); returns the
        number of requests served."""
        try:
            if self.max_requests is None:
                self._httpd.serve_forever(poll_interval=0.1)
            else:
                # handlers run in their own threads, so the count moves
                # after handle_request returns; a short accept timeout
                # keeps the bound re-checked instead of blocking on a
                # request that never comes
                self._httpd.timeout = 0.1
                while self.requests_served < self.max_requests:
                    self._httpd.handle_request()
        finally:
            self._httpd.server_close()
        return self.requests_served

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread (tests); returns the thread."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self._httpd.shutdown()


def serve_metrics(
    source: Callable[[], str],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: Optional[int] = None,
) -> MetricsServer:
    """Construct (but do not start) a :class:`MetricsServer` for ``source``."""
    return MetricsServer(
        source, host=host, port=port, max_requests=max_requests
    )
