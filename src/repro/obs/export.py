"""JSONL serialisation of traces and metrics, with a validating reader.

One trace file is a sequence of JSON objects, one per line, each with a
``"type"`` discriminator:

* ``{"type": "header", "schema", "run_id", "wall_time"}`` (at most one,
  always first; files written before schema 2 have none)
* ``{"type": "span", "id", "parent", "name", "t0", "t1", "tags"}``
* ``{"type": "event", "t", "name", "level", "fields"}``
* ``{"type": "causal", "eid", "kind", "pid", "lamport", "clock", ...}``
  (see :meth:`repro.obs.causal.CausalCollector.to_records`)
* ``{"type": "metrics", "metrics": {name: {...}, ...}}`` (at most one,
  conventionally last)

All span/event timestamps are monotonic-clock seconds (comparable within
one file, meaningless across files); the header's ``wall_time`` is the
one wall-clock anchor, recorded so a file can be placed in real time
without making any record depend on it.  ``read_jsonl`` round-trips
exactly what ``write_jsonl`` wrote and rejects malformed lines, so CI
can use it as a format check.  Readers accept old headerless files.
"""

from __future__ import annotations

import json
import time
import uuid
from typing import Any, Optional, Sequence, TextIO, Union

from .metrics import MetricsRegistry
from .tracer import EventRecord, SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "header_record",
    "trace_to_records",
    "write_jsonl",
    "dump_jsonl",
    "read_jsonl",
    "validate_records",
]

_TYPES = ("header", "span", "event", "causal", "metrics")

#: Version stamped into header records.  2 = headers + causal records.
SCHEMA_VERSION = 2


def header_record(run_id: Optional[str] = None) -> dict[str, Any]:
    """A fresh ``{"type": "header"}`` record (schema version, run id,
    wall-clock anchor).  ``run_id`` defaults to a random 12-hex id."""
    return {
        "type": "header",
        "schema": SCHEMA_VERSION,
        "run_id": run_id if run_id is not None else uuid.uuid4().hex[:12],
        "wall_time": time.time(),
    }


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of tag/field values to JSON-safe data."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item"):  # numpy scalars
        try:
            return value.item()
        except Exception:  # pragma: no cover - exotic array types
            pass
    if hasattr(value, "tolist"):  # numpy arrays
        try:
            return value.tolist()
        except Exception:  # pragma: no cover - exotic array types
            pass
    return repr(value)


def trace_to_records(
    tracer: Any = None,
    registry: Optional[MetricsRegistry] = None,
    collector: Any = None,
) -> list[dict[str, Any]]:
    """Flatten a tracer, registry, and/or causal collector into
    JSON-ready record dicts (no header — callers prepend one)."""
    records: list[dict[str, Any]] = []
    if tracer is not None:
        for span in getattr(tracer, "spans", ()):
            assert isinstance(span, SpanRecord)
            records.append(
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "t0": span.t0,
                    "t1": span.t1,
                    "tags": _jsonable(span.tags),
                }
            )
        for ev in getattr(tracer, "events", ()):
            assert isinstance(ev, EventRecord)
            records.append(
                {
                    "type": "event",
                    "t": ev.t,
                    "name": ev.name,
                    "level": ev.level,
                    "fields": _jsonable(ev.fields),
                }
            )
    if collector is not None and getattr(collector, "enabled", False):
        records.extend(collector.to_records())
    if registry is not None:
        records.append(
            {"type": "metrics", "metrics": _jsonable(registry.snapshot())}
        )
    return records


def dump_jsonl(records: Sequence[dict[str, Any]], fp: TextIO) -> int:
    """Write records to an open text file; returns the line count."""
    count = 0
    for rec in records:
        fp.write(json.dumps(rec, sort_keys=True) + "\n")
        count += 1
    return count


def write_jsonl(
    path: Union[str, Any],
    tracer: Any = None,
    registry: Optional[MetricsRegistry] = None,
    collector: Any = None,
    run_id: Optional[str] = None,
) -> int:
    """Export a tracer/registry/causal collector to a JSONL file (header
    first); returns the line count."""
    records = [header_record(run_id)]
    records.extend(trace_to_records(tracer, registry, collector))
    with open(path, "w", encoding="utf-8") as fp:
        return dump_jsonl(records, fp)


def validate_records(records: Sequence[dict[str, Any]]) -> None:
    """Raise ``ValueError`` on structurally invalid trace records.

    A header is optional (old files have none) but when present must be
    the first record, and there can be at most one.
    """
    span_ids = set()
    for i, rec in enumerate(records):
        if not isinstance(rec, dict) or rec.get("type") not in _TYPES:
            raise ValueError(f"record {i}: missing/unknown type: {rec!r}")
        if rec["type"] == "header":
            if i != 0:
                raise ValueError(
                    f"record {i}: header must be the first record (and "
                    "there can be only one)"
                )
            for key in ("schema", "run_id", "wall_time"):
                if key not in rec:
                    raise ValueError(f"record {i}: header missing {key!r}")
        elif rec["type"] == "span":
            for key in ("id", "name", "t0"):
                if key not in rec:
                    raise ValueError(f"record {i}: span missing {key!r}")
            span_ids.add(rec["id"])
        elif rec["type"] == "event":
            for key in ("t", "name", "level"):
                if key not in rec:
                    raise ValueError(f"record {i}: event missing {key!r}")
        elif rec["type"] == "causal":
            for key in ("eid", "kind", "pid", "lamport", "clock"):
                if key not in rec:
                    raise ValueError(f"record {i}: causal missing {key!r}")
        else:
            if not isinstance(rec.get("metrics"), dict):
                raise ValueError(f"record {i}: metrics payload must be a dict")
    for i, rec in enumerate(records):
        if rec["type"] == "span" and rec.get("parent") is not None:
            if rec["parent"] not in span_ids:
                raise ValueError(
                    f"record {i}: parent {rec['parent']} is not a span id"
                )


def read_jsonl(path: Union[str, Any]) -> list[dict[str, Any]]:
    """Load and validate a JSONL trace file."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
    validate_records(records)
    return records
