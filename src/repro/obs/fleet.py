"""Fleet observability: stitch per-node trails, run probes post-hoc.

A live cluster (``python -m repro launch`` / ``python -m repro node``)
writes one schema-2 JSONL trail per node.  Each trail's causal records
come from that node's own :class:`~repro.obs.causal.CausalCollector`, so
event ids are *node-local* and a deliver of a remote message has
``cause=None`` — the matching send lives in another file.  This module
rebuilds the cluster-wide happens-before DAG:

1. **Load** every trail (:func:`load_trails`), identifying each node
   from its ``transport.node.*`` events (fallbacks: the header run-id
   suffix, then the majority causal pid).
2. **Dedup** remote deliveries: the transport already drops retransmits
   by wire sequence number, but stitching tolerates trails from older
   or foreign writers by dropping any repeated ``(node, origin)`` pair.
3. **Merge** all events in Lamport order — ``(lamport, node,
   local_eid)`` is a valid topological order of the union because
   Lamport timestamps strictly increase along each node's program order
   and every deliver's timestamp exceeds its send's — then renumber
   eids densely and remap local ``cause`` references.
4. **Stitch** the cross-process edges: a remote deliver carries
   ``fields["origin"] = [origin_node, origin_eid]``
   (:meth:`~repro.obs.causal.CausalCollector.on_deliver_remote`); its
   ``cause`` becomes the merged eid of that send.  Delivers whose
   origin send is missing are counted as *orphans* (an incomplete
   collection — some node's trail is absent or truncated).

The merged records feed the ordinary
:class:`~repro.analysis.timeline.CausalGraph`, so ``repro fleet
explain`` renders cross-node decision cones with the same code path as
the in-process ``repro explain``.  Wall clocks never order anything:
each trail's header ``wall_time`` is reported as skew evidence only.

Post-hoc probes (:func:`fleet_probes`) re-run the paper's invariant
checks over the stitched evidence: validity-envelope and
agreement-convergence via :meth:`~repro.obs.probes.Probe.check_decisions`
on the decision vectors each node logged, and broadcast integrity as a
structural equivocation check over the merged graph (two sends of one
``(pid, tag, round)`` instance to different receivers must carry the
same payload digest).  Honest inputs are re-derived from the topology
parameters each node logs — the same ``default_rng(seed)`` derivation
the cluster itself used — so a trail directory is self-contained
evidence: no RunSpec, no repo state, just the files.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from ..analysis.timeline import CausalGraph
from .export import read_jsonl
from .probes import ProbeReport, build_probes

__all__ = [
    "FLEET_PROBE_NAMES",
    "NodeTrail",
    "StitchReport",
    "aggregate_metrics",
    "discover_trails",
    "fleet_probes",
    "load_trail",
    "load_trails",
    "stitch",
]

#: Probes `fleet_probes` evaluates (the full shipped set).
FLEET_PROBE_NAMES = ("validity", "agreement", "broadcast")

_RUN_ID_NODE = re.compile(r"-n(\d+)$")


@dataclass
class NodeTrail:
    """One node's parsed JSONL trail."""

    path: str
    node_id: int
    run_id: Optional[str]
    wall_time: Optional[float]
    causal: list[dict[str, Any]]
    events: list[dict[str, Any]]
    metrics: dict[str, Any] = field(default_factory=dict)

    def event_fields(self, name: str) -> Optional[dict[str, Any]]:
        """Fields of the first ``name`` trace event, if recorded."""
        for ev in self.events:
            if ev.get("name") == name:
                return dict(ev.get("fields") or {})
        return None


def _infer_node_id(
    run_id: Optional[str],
    events: Sequence[dict[str, Any]],
    causal: Sequence[dict[str, Any]],
) -> Optional[int]:
    for ev in events:
        if str(ev.get("name", "")).startswith("transport.node."):
            fields = ev.get("fields") or {}
            if "pid" in fields:
                return int(fields["pid"])
    if run_id is not None:
        match = _RUN_ID_NODE.search(run_id)
        if match:
            return int(match.group(1))
    counts: dict[int, int] = {}
    for rec in causal:
        counts[int(rec["pid"])] = counts.get(int(rec["pid"]), 0) + 1
    if counts:
        return max(sorted(counts), key=lambda pid: counts[pid])
    return None


def load_trail(path: str) -> NodeTrail:
    """Parse one JSONL trail into a :class:`NodeTrail`."""
    records = read_jsonl(path)
    run_id: Optional[str] = None
    wall_time: Optional[float] = None
    causal: list[dict[str, Any]] = []
    events: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    for rec in records:
        kind = rec.get("type")
        if kind == "header":
            run_id = rec.get("run_id")
            wall_time = rec.get("wall_time")
        elif kind == "causal":
            causal.append(rec)
        elif kind == "event":
            events.append(rec)
        elif kind == "metrics":
            metrics = rec.get("metrics") or {}
    node_id = _infer_node_id(run_id, events, causal)
    if node_id is None:
        raise ValueError(
            f"{path}: cannot identify the node (no transport.node.* "
            "event, no -n<pid> run-id suffix, no causal records)"
        )
    return NodeTrail(
        path=str(path), node_id=int(node_id), run_id=run_id,
        wall_time=wall_time, causal=causal, events=events, metrics=metrics,
    )


def discover_trails(directory: str) -> list[str]:
    """The ``*.jsonl`` files under one directory, sorted by name."""
    from pathlib import Path

    return sorted(str(p) for p in Path(directory).glob("*.jsonl"))


def load_trails(paths: Sequence[str]) -> list[NodeTrail]:
    """Load trails and order them by node id (duplicates are an error)."""
    trails = [load_trail(p) for p in paths]
    seen: dict[int, str] = {}
    for trail in trails:
        if trail.node_id in seen:
            raise ValueError(
                f"two trails claim node {trail.node_id}: "
                f"{seen[trail.node_id]} and {trail.path}"
            )
        seen[trail.node_id] = trail.path
    return sorted(trails, key=lambda t: t.node_id)


@dataclass(frozen=True)
class StitchReport:
    """What the merge did — the completeness evidence for a fleet graph."""

    nodes: tuple[int, ...]
    events: int
    sends: int
    delivers: int
    stitched_edges: int
    orphan_delivers: int
    duplicate_delivers_dropped: int
    run_ids: tuple[Optional[str], ...]
    #: max - min of the trails' header wall-clock anchors, seconds.
    wall_time_skew: Optional[float]

    @property
    def complete(self) -> bool:
        """True when every remote deliver found its send."""
        return self.orphan_delivers == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "nodes": list(self.nodes),
            "events": self.events,
            "sends": self.sends,
            "delivers": self.delivers,
            "stitched_edges": self.stitched_edges,
            "orphan_delivers": self.orphan_delivers,
            "duplicate_delivers_dropped": self.duplicate_delivers_dropped,
            "complete": self.complete,
            "run_ids": list(self.run_ids),
            "wall_time_skew": self.wall_time_skew,
        }


def stitch(trails: Sequence[NodeTrail]) -> tuple[CausalGraph, StitchReport]:
    """Merge per-node trails into one cluster-wide :class:`CausalGraph`.

    Returns the graph (dense re-numbered eids, remapped ``cause`` edges,
    cross-node send→deliver edges stitched via the ``origin`` stamps)
    plus a :class:`StitchReport` describing the merge.
    """
    dropped_dupes = 0
    merged: list[tuple[tuple[int, int, int], int, int, dict[str, Any]]] = []
    for trail in trails:
        seen_origins: set[tuple[int, int]] = set()
        for rec in trail.causal:
            origin = (rec.get("fields") or {}).get("origin")
            if origin is not None:
                key = (int(origin[0]), int(origin[1]))
                if key in seen_origins:
                    dropped_dupes += 1  # retransmit from an older writer
                    continue
                seen_origins.add(key)
            local_eid = int(rec["eid"])
            sort_key = (int(rec["lamport"]), trail.node_id, local_eid)
            merged.append((sort_key, trail.node_id, local_eid, dict(rec)))
    merged.sort(key=lambda item: item[0])

    renumber: dict[tuple[int, int], int] = {}
    for new_eid, (_, node, local_eid, _) in enumerate(merged):
        renumber[(node, local_eid)] = new_eid

    records: list[dict[str, Any]] = []
    sends = delivers = stitched = orphans = 0
    for new_eid, (_, node, local_eid, rec) in enumerate(merged):
        rec["eid"] = new_eid
        if rec.get("cause") is not None:
            rec["cause"] = renumber[(node, int(rec["cause"]))]
        kind = rec.get("kind")
        if kind == "send":
            sends += 1
        elif kind == "deliver":
            delivers += 1
            origin = (rec.get("fields") or {}).get("origin")
            if origin is not None:
                send_eid = renumber.get((int(origin[0]), int(origin[1])))
                if send_eid is None:
                    orphans += 1  # sender's trail missing or truncated
                else:
                    rec["cause"] = send_eid
                    stitched += 1
        records.append(rec)

    report = StitchReport(
        nodes=tuple(t.node_id for t in trails),
        events=len(records),
        sends=sends,
        delivers=delivers,
        stitched_edges=stitched,
        orphan_delivers=orphans,
        duplicate_delivers_dropped=dropped_dupes,
        run_ids=tuple(t.run_id for t in trails),
        wall_time_skew=_wall_skew(trails),
    )
    return CausalGraph(records), report


def _wall_skew(trails: Sequence[NodeTrail]) -> Optional[float]:
    anchors = [t.wall_time for t in trails if t.wall_time is not None]
    if len(anchors) < 2:
        return None
    return float(max(anchors) - min(anchors))


# ---------------------------------------------------------------------------
# post-hoc probes
# ---------------------------------------------------------------------------


def _topology_params(trails: Sequence[NodeTrail]) -> dict[str, Any]:
    """The cluster parameters, from any trail's topology event."""
    for trail in trails:
        fields = trail.event_fields("transport.node.topology")
        if fields:
            return fields
    raise ValueError(
        "no trail carries a transport.node.topology event — trails "
        "predate fleet tracing, or tracing was off"
    )


def _decisions(trails: Sequence[NodeTrail]) -> dict[int, np.ndarray]:
    out: dict[int, np.ndarray] = {}
    for trail in trails:
        fields = trail.event_fields("transport.node.decision")
        if fields and fields.get("decided") and fields.get("decision") is not None:
            out[trail.node_id] = np.atleast_1d(
                np.asarray(fields["decision"], dtype=float)
            )
    return out


def _honest_inputs(params: Mapping[str, Any]) -> np.ndarray:
    """Re-derive the cluster's inputs — live runs are honest, so *all*
    inputs are honest inputs (`RunSpec.resolved_inputs`, verbatim)."""
    rng = np.random.default_rng(int(params["seed"]))
    return rng.normal(
        scale=float(params["input_scale"]),
        size=(int(params["n"]), int(params["d"])),
    )


def _max_delta_used(trails: Sequence[NodeTrail]) -> float:
    delta = 0.0
    for trail in trails:
        fields = trail.event_fields("transport.node.decision") or {}
        used = fields.get("delta_used")
        if used is not None:
            delta = max(delta, float(used))
    return delta


def _inject(
    decisions: dict[int, np.ndarray], name: str, input_scale: float, d: int
) -> dict[int, np.ndarray]:
    """Perturb logged decisions (mirrors ``repro.dst.explore.INJECTIONS``)
    so probe sensitivity can be demonstrated on real trails."""
    out = {pid: np.array(v, dtype=float, copy=True)
           for pid, v in decisions.items()}
    if name == "split-brain":
        if out:
            pid = min(out)
            out[pid] = out[pid] + 10.0 * input_scale
        return out
    if name == "stale-echo":
        pids = sorted(out)
        if len(pids) >= 2:
            a, b = pids[0], pids[1]
            half = max(1, d // 2)
            out[a][:half], out[b][:half] = (
                out[b][:half].copy(), out[a][:half].copy()
            )
            out[a][:half] += input_scale
        return out
    raise ValueError(
        f"unknown injection {name!r} (choices: split-brain, stale-echo)"
    )


def _check_broadcast_integrity(graph: CausalGraph, probe: Any) -> None:
    """Structural equivocation check over the merged graph.

    Every send carries a payload digest (stamped by the live transport).
    Two sends of the same ``(pid, tag, round)`` instance to *different*
    receivers with different digests would mean one logical broadcast
    showed two faces — exactly what reliable broadcast forbids.
    Sequential re-sends to the *same* receiver are not equivocation.
    """
    groups: dict[tuple[int, str, Any], dict[str, Any]] = {}
    for ev in graph.events:
        if ev.get("kind") != "send":
            continue
        fields = ev.get("fields") or {}
        digest = fields.get("digest")
        if digest is None or ev.get("tag") is None:
            continue
        key = (int(ev["pid"]), str(ev["tag"]), fields.get("round"))
        group = groups.setdefault(key, {})
        dst = ev.get("dst")
        if dst in group:
            continue  # same receiver again: sequencing, not equivocation
        group[dst] = (digest, int(ev["eid"]))
    for key in sorted(groups, key=repr):
        group = groups[key]
        if len(group) < 2:
            continue
        probe.checks += 1
        digests = {digest for digest, _ in group.values()}
        if len(digests) > 1:
            pid, tag, round_ = key
            probe.record(
                round_ if isinstance(round_, int) else None,
                f"send instance (pid {pid}, tag {tag!r}) carried "
                f"{len(digests)} distinct payload digests across receivers",
                pids=(pid,),
            )


def fleet_probes(
    trails: Sequence[NodeTrail],
    graph: Optional[CausalGraph] = None,
    *,
    names: Sequence[str] = FLEET_PROBE_NAMES,
    inject: Optional[str] = None,
) -> tuple[list[ProbeReport], dict[str, Any]]:
    """Run the invariant probes post-hoc over stitched fleet evidence.

    Returns ``(reports, context)`` where ``context`` records what the
    probes were checked against (decisions, derived parameters, any
    injection).  ``inject`` perturbs the logged decisions the same way
    the DST explorer's injections do — for demonstrating that the
    probes would catch a violating cluster, not for honest validation.
    """
    params = _topology_params(trails)
    algorithm = str(params["algorithm"])
    decisions = _decisions(trails)
    if inject is not None:
        decisions = _inject(
            decisions, inject,
            float(params["input_scale"]), int(params["d"]),
        )
    honest = _honest_inputs(params)

    approximate = algorithm in ("averaging", "iterative")
    # check_decisions applies an explicit delta verbatim, so grant the
    # same solver-tolerance headroom the online probe computes itself.
    delta = _max_delta_used(trails) * (1.0 + 1e-6) + 1e-9
    probes = build_probes(
        names,
        algorithm=algorithm,
        p=params.get("p", 2),
        k=int(params.get("k", 1)),
        epsilon=float(params["epsilon"]) if approximate else None,
        delta=None if algorithm == "krelaxed" else delta,
    )
    for probe in probes:
        if probe.name == "broadcast":
            if graph is not None:
                _check_broadcast_integrity(graph, probe)
        else:
            probe.check_decisions(decisions, honest)
    context = {
        "algorithm": algorithm,
        "n": int(params["n"]),
        "d": int(params["d"]),
        "f": int(params["f"]),
        "seed": int(params["seed"]),
        "decided_nodes": sorted(decisions),
        "delta": delta,
        "epsilon": float(params["epsilon"]) if approximate else None,
        "inject": inject,
    }
    return [probe.report() for probe in probes], context


# ---------------------------------------------------------------------------
# fleet metrics aggregation
# ---------------------------------------------------------------------------


def aggregate_metrics(trails: Sequence[NodeTrail]) -> dict[str, Any]:
    """Merge the trails' metrics snapshots into one fleet snapshot.

    Counters sum; gauges keep the extreme envelope (``max`` of maxes,
    ``min`` of mins, last value = max across nodes — peaks, not means);
    histograms merge ``count``/``total``/``min``/``max`` exactly and
    approximate the quantiles by count-weighted averaging (each node's
    own ``/metrics`` endpoint stays the exact source).
    """
    out: dict[str, Any] = {}
    for trail in trails:
        for name, record in trail.metrics.items():
            kind = record.get("type")
            if kind == "counter":
                prev = out.setdefault(name, {"type": "counter", "value": 0})
                prev["value"] += int(record["value"])
            elif kind == "gauge":
                if not record.get("updates"):
                    continue
                prev = out.setdefault(name, {
                    "type": "gauge", "value": None, "max": -np.inf,
                    "min": np.inf, "updates": 0,
                })
                prev["updates"] += int(record["updates"])
                prev["max"] = max(prev["max"], float(record["max"]))
                prev["min"] = min(prev["min"], float(record["min"]))
                value = float(record["value"])
                prev["value"] = (
                    value if prev["value"] is None
                    else max(prev["value"], value)
                )
            elif kind == "histogram":
                count = int(record.get("count", 0))
                prev = out.setdefault(name, {
                    "type": "histogram", "count": 0, "total": 0.0,
                    "min": np.inf, "max": -np.inf,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0,
                })
                if not count:
                    continue
                merged_count = prev["count"] + count
                for q in ("p50", "p90", "p99"):
                    prev[q] = (
                        prev[q] * prev["count"] + float(record[q]) * count
                    ) / merged_count
                prev["count"] = merged_count
                prev["total"] += float(record["total"])
                prev["min"] = min(prev["min"], float(record["min"]))
                prev["max"] = max(prev["max"], float(record["max"]))
    for record in out.values():
        if record["type"] == "histogram" and record["count"]:
            record["mean"] = record["total"] / record["count"]
    return dict(sorted(out.items()))
