"""Performance observability: hierarchical phase timers, zero cost when off.

The correctness side of ``repro.obs`` (tracer, causal collector, probes)
answers *what happened*; this module answers *where the time went*.  A
:class:`PhaseProfiler` records a tree of **phases** — run → round →
protocol phase → geometry kernel — keyed by their slash-joined path
(``core.run/sched.round/averaging.select/geometry.delta_star``), with a
fixed-bucket latency histogram and a wall/CPU split per node.

The contract matches :data:`~repro.obs.causal.NULL_COLLECTOR` and
:data:`~repro.obs.tracer.NULL_TRACER` exactly: the default profiler is
the shared :data:`NULL_PROFILER` whose ``enabled`` flag is false, and
:func:`perf_phase` returns one preallocated no-op context manager, so
instrumented hot paths perform no allocation and no clock reads unless a
real profiler has been installed (``use_profiler``/``set_profiler``).
Profiling never changes a run: sweep decision digests are bit-identical
profiler on vs off (pinned by ``tests/obs/test_perf_identity.py``).

Unlike :class:`~repro.obs.metrics.Histogram` (exact samples, unbounded
memory), :class:`FixedBucketHistogram` keeps O(1) state per phase — a
geometric bucket ladder from 1µs to ~2min — so profiling a million async
steps costs the same memory as profiling ten.  Buckets map directly onto
Prometheus histogram semantics (cumulative ``le`` counts; see
:mod:`repro.obs.prom`).

Usage::

    from repro.obs import PhaseProfiler, use_profiler, perf_phase

    profiler = PhaseProfiler()
    with use_profiler(profiler):
        with perf_phase("core.run"):
            ...
    profiler.snapshot()     # JSON-able {path: aggregate} document
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional, Union

__all__ = [
    "BUCKET_BOUNDS",
    "FixedBucketHistogram",
    "NULL_PROFILER",
    "NullPhaseProfiler",
    "PERF_SCHEMA",
    "PhaseProfiler",
    "get_profiler",
    "perf_phase",
    "rollup_phases",
    "set_profiler",
    "use_profiler",
]

PERF_SCHEMA = "repro.obs.perf/1"

#: Geometric bucket ladder: 1µs · 2^i for i in 0..26 (≈1µs .. ≈67s).
#: Samples above the last bound land in the overflow bucket.
BUCKET_BOUNDS: tuple[float, ...] = tuple(1e-6 * 2.0**i for i in range(27))


class FixedBucketHistogram:
    """Latency histogram over a fixed geometric bucket ladder.

    O(1) memory per phase regardless of sample count; quantiles are
    bucket-resolution estimates (exact ``min``/``max``/``total`` are kept
    alongside).  The per-bucket counts are *non-cumulative*; renderers
    that need Prometheus-style cumulative ``le`` counts accumulate at
    render time.
    """

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)  # +1 = overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(BUCKET_BOUNDS)
        while lo < hi:  # first bound >= value (bisect, no import churn)
            mid = (lo + hi) // 2
            if BUCKET_BOUNDS[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the upper bound of the bucket holding the q-th sample,
        clamped to the exact observed ``max`` (so overflow samples never
        report an infinite latency).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            raise ValueError("quantile of an empty histogram")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                bound = (
                    BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else self.max
                )
                return min(bound, self.max)
        return self.max

    def bucket_pairs(self) -> list[tuple[float, int]]:
        """Non-empty ``(upper_bound_seconds, count)`` pairs; the overflow
        bucket reports ``inf`` as its bound."""
        out: list[tuple[float, int]] = []
        for i, c in enumerate(self.counts):
            if c:
                bound = (
                    BUCKET_BOUNDS[i]
                    if i < len(BUCKET_BOUNDS)
                    else float("inf")
                )
                out.append((bound, c))
        return out

    def as_dict(self) -> dict[str, Any]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            # JSON has no inf: encode the overflow bound as the string "inf"
            "buckets": [
                ["inf" if b == float("inf") else b, c]
                for b, c in self.bucket_pairs()
            ],
        }


class _PhaseAgg:
    """Aggregate state of one phase path: wall histogram + CPU total."""

    __slots__ = ("name", "parent", "hist", "cpu_seconds")

    def __init__(self, name: str, parent: Optional[str]) -> None:
        self.name = name
        self.parent = parent
        self.hist = FixedBucketHistogram()
        self.cpu_seconds = 0.0


class _ActivePhase:
    """Context manager binding one phase interval to the profiler stack."""

    __slots__ = ("_profiler", "_path", "_name", "_t0", "_c0")

    def __init__(self, profiler: "PhaseProfiler", path: str, name: str):
        self._profiler = profiler
        self._path = path
        self._name = name

    def __enter__(self) -> "_ActivePhase":
        self._profiler._stack.append(self._path)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc: Any) -> bool:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        prof = self._profiler
        prof._stack.pop()
        agg = prof._aggs.get(self._path)
        if agg is None:
            parent = self._path[: -len(self._name) - 1] or None
            agg = prof._aggs[self._path] = _PhaseAgg(self._name, parent)
        agg.hist.observe(wall)
        agg.cpu_seconds += cpu
        return False


class _NullPhase:
    """Shared no-op phase: entering and exiting do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_PHASE = _NullPhase()
_NULL_PHASE = NULL_PHASE


class PhaseProfiler:
    """Hierarchical phase timers with per-phase wall/CPU aggregates.

    Phase identity is the slash-joined path of open phase names, so the
    same kernel shows up separately under each caller — a flame view —
    while :func:`repro.analysis.profiling.phases_by_name` rolls paths up
    per leaf name when a flat table is wanted.
    """

    enabled = True

    def __init__(self) -> None:
        self._aggs: dict[str, _PhaseAgg] = {}
        self._stack: list[str] = []
        #: kernel name -> [hits, misses] as reported by the geometry cache.
        self._cache: dict[str, list[int]] = {}

    def phase(self, name: str) -> _ActivePhase:
        """Open a phase named ``name`` under the currently open phase."""
        stack = self._stack
        path = name if not stack else stack[-1] + "/" + name
        return _ActivePhase(self, path, name)

    def note_cache(self, name: str, hit: bool) -> None:
        """Record one geometry-cache lookup outcome for kernel ``name``."""
        pair = self._cache.get(name)
        if pair is None:
            pair = self._cache[name] = [0, 0]
        pair[0 if hit else 1] += 1

    def clear(self) -> None:
        self._aggs.clear()
        self._stack.clear()
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._aggs)

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of every phase aggregate (JSON-serialisable)."""
        phases: dict[str, Any] = {}
        for path, agg in sorted(self._aggs.items()):
            entry = agg.hist.as_dict()
            entry["name"] = agg.name
            entry["parent"] = agg.parent
            entry["wall_seconds"] = agg.hist.total
            entry["cpu_seconds"] = agg.cpu_seconds
            phases[path] = entry
        return {
            "schema": PERF_SCHEMA,
            "phases": phases,
            "cache": {
                name: {"hits": pair[0], "misses": pair[1]}
                for name, pair in sorted(self._cache.items())
            },
        }


class NullPhaseProfiler:
    """The disabled profiler: records nothing, allocates nothing."""

    enabled = False

    def phase(self, name: str) -> _NullPhase:
        return _NULL_PHASE

    def note_cache(self, name: str, hit: bool) -> None:
        return None

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict[str, Any]:
        return {"schema": PERF_SCHEMA, "phases": {}, "cache": {}}


NULL_PROFILER = NullPhaseProfiler()

AnyProfiler = Union[PhaseProfiler, NullPhaseProfiler]

_profiler: AnyProfiler = NULL_PROFILER


def get_profiler() -> AnyProfiler:
    """The currently installed profiler (:data:`NULL_PROFILER` by default)."""
    return _profiler


def set_profiler(profiler: Optional[AnyProfiler]) -> AnyProfiler:
    """Install ``profiler`` globally; returns the previous one."""
    global _profiler
    prev = _profiler
    _profiler = profiler if profiler is not None else NULL_PROFILER
    return prev


@contextmanager
def use_profiler(profiler: Optional[AnyProfiler]) -> Iterator[AnyProfiler]:
    """Install ``profiler`` for the ``with`` body, then restore."""
    prev = set_profiler(profiler)
    try:
        yield _profiler
    finally:
        set_profiler(prev)


def perf_phase(name: str) -> "_ActivePhase | _NullPhase":
    """Open a phase on the installed profiler (shared no-op when off)."""
    p = _profiler
    if not p.enabled:
        return _NULL_PHASE
    return p.phase(name)


def rollup_phases(snapshot: dict[str, Any]) -> dict[str, dict[str, Any]]:
    """Aggregate a profiler snapshot per leaf phase *name*.

    The snapshot keys phases by their full path, so ``geometry.delta_star``
    under the sync scheduler and under ``averaging.select`` are separate
    flame nodes.  This folds those paths into one row per name —
    ``{"count", "wall_seconds", "cpu_seconds", "self_seconds", "paths"}``
    — where ``self_seconds`` subtracts the wall time of each node's
    direct children (time attributed here and nowhere deeper).
    """
    phases: dict[str, Any] = snapshot.get("phases", {})
    child_wall: dict[str, float] = {}
    for entry in phases.values():
        parent = entry.get("parent")
        if parent is not None:
            child_wall[parent] = (
                child_wall.get(parent, 0.0) + float(entry["wall_seconds"])
            )
    out: dict[str, dict[str, Any]] = {}
    for path, entry in phases.items():
        name = entry["name"]
        row = out.get(name)
        if row is None:
            row = out[name] = {
                "count": 0,
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "self_seconds": 0.0,
                "paths": 0,
            }
        row["count"] += int(entry["count"])
        row["wall_seconds"] += float(entry["wall_seconds"])
        row["cpu_seconds"] += float(entry["cpu_seconds"])
        row["self_seconds"] += max(
            0.0, float(entry["wall_seconds"]) - child_wall.get(path, 0.0)
        )
        row["paths"] += 1
    return dict(sorted(out.items(), key=lambda kv: -kv[1]["wall_seconds"]))
