"""Online invariant probes evaluated at round/step boundaries.

The paper's guarantees are run-time invariants, not just post-hoc
verdicts: every intermediate and decided value must stay inside the
relaxed hull of the correct inputs (validity, Xiang–Vaidya Theorems 6/15,
Vaidya–Garg validity for the exact baseline), per-round spread must
shrink monotonically for Relaxed Verified Averaging (the ``ρ = f/(n-f)``
contraction), and reliable broadcast must never let two correct processes
accept different values for one ``(sender, tag)`` instance (Bracha
agreement).  A :class:`Probe` watches one of these invariants *during*
the run: the schedulers evaluate the installed probes at every round
boundary (synchronous) or every ``probe_interval`` delivery steps
(asynchronous), so a violating execution is flagged at the moment it
diverges, with the offending round and processes attached.

Violations surface three ways at once:

* a warning-level trace event (``probe.<name>.violation``),
* a counter on the ambient registry (``probe.<name>.violations``),
* a structured :class:`ProbeReport` on ``RunResult.probes``.

Probes are read-only: they never touch the scheduler's RNG, the network,
or process state, so enabling them cannot change any decision — the
bit-identity contract is pinned by ``tests/obs/test_probe_identity.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from . import metrics as _obs
from .tracer import trace_event

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at run time: geometry's kernels record onto
    # repro.obs.metrics, so a module-level import here would be circular.
    from ..geometry.relaxed import DeltaPHull, KRelaxedHull

__all__ = [
    "PROBE_NAMES",
    "Probe",
    "ProbeReport",
    "ProbeView",
    "ProbeViolation",
    "ValidityEnvelopeProbe",
    "AgreementConvergenceProbe",
    "BroadcastIntegrityProbe",
    "build_probes",
]

PNorm = Union[float, int]

#: Canonical probe names accepted by :func:`build_probes` and
#: ``RunSpec.probes`` (``"all"`` expands to the full set).
PROBE_NAMES = ("validity", "agreement", "broadcast")


@dataclass(frozen=True)
class ProbeViolation:
    """One observed invariant violation."""

    probe: str
    time: Optional[int]  # round (sync) or step (async) of the boundary
    detail: str
    pids: tuple[int, ...] = ()
    measure: Optional[float] = None  # quantitative excess, when meaningful


@dataclass(frozen=True)
class ProbeReport:
    """Structured outcome of one probe over one run."""

    name: str
    checks: int
    violations: tuple[ProbeViolation, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "checks": self.checks,
            "ok": self.ok,
            "violations": [
                {
                    "time": v.time,
                    "detail": v.detail,
                    "pids": list(v.pids),
                    "measure": v.measure,
                }
                for v in self.violations
            ],
        }


class ProbeView:
    """Read-only window onto a live run, handed to every probe hook.

    Built once per run by the scheduler; exposes the per-process contexts
    and protocol objects so probes can inspect state without being able
    to perturb scheduling.
    """

    def __init__(
        self,
        n: int,
        f: int,
        contexts: Mapping[int, Any],
        processes: Mapping[int, Any],
        faulty: frozenset[int],
    ):
        self.n = n
        self.f = f
        self.contexts = contexts
        self.processes = processes
        self.faulty = faulty
        self.correct = tuple(p for p in range(n) if p not in faulty)
        self._honest: Optional[np.ndarray] = None

    def honest_inputs(self) -> Optional[np.ndarray]:
        """The ``(n - |faulty|, d)`` matrix of correct inputs, when the
        protocol objects expose ``input_value`` (all shipped ones do)."""
        if self._honest is None:
            rows = []
            for pid in self.correct:
                value = getattr(self.processes[pid], "input_value", None)
                if value is None:
                    return None
                rows.append(np.asarray(value, dtype=float).ravel())
            if not rows:
                return None
            self._honest = np.stack(rows)
        return self._honest

    def correct_decisions(self) -> dict[int, np.ndarray]:
        return {
            pid: np.asarray(self.contexts[pid].decision, dtype=float).ravel()
            for pid in self.correct
            if self.contexts[pid].decided
        }


class Probe:
    """Base class: accumulate checks/violations; subclasses add the hooks."""

    name = "probe"

    def __init__(self) -> None:
        self.violations: list[ProbeViolation] = []
        self.checks = 0

    def attach(self, view: ProbeView) -> None:
        """Called once at run start, before any boundary."""

    def on_boundary(self, view: ProbeView, time: int) -> None:
        """Called at every round (sync) / probe-interval step (async)."""

    def on_finish(self, view: ProbeView, time: int) -> None:
        """Called once after the run loop (defaults to a last boundary)."""
        self.on_boundary(view, time)

    def check_decisions(
        self,
        decisions: Mapping[int, np.ndarray],
        honest_inputs: Optional[np.ndarray],
        *,
        time: Optional[int] = None,
    ) -> None:
        """Re-evaluate the invariant against an explicit decision map.

        Post-run hook used by the DST explorer: fault *injections*
        perturb decisions after the run, and this is how the perturbed
        map is pushed back through the probe.
        """

    def record(
        self,
        time: Optional[int],
        detail: str,
        *,
        pids: Iterable[int] = (),
        measure: Optional[float] = None,
    ) -> None:
        violation = ProbeViolation(
            probe=self.name, time=time, detail=detail,
            pids=tuple(sorted(pids)), measure=measure,
        )
        self.violations.append(violation)
        trace_event(
            f"probe.{self.name}.violation", level="warning",
            time=time, detail=detail, pids=list(violation.pids),
            measure=measure,
        )
        _obs.inc(f"probe.{self.name}.violations")

    def report(self) -> ProbeReport:
        return ProbeReport(
            name=self.name, checks=self.checks,
            violations=tuple(self.violations),
        )


def _diameter(values: Sequence[np.ndarray]) -> float:
    """Max pairwise L_inf distance (matches ``core.problems``)."""
    worst = 0.0
    for i, a in enumerate(values):
        for b in values[i + 1:]:
            worst = max(worst, float(np.max(np.abs(a - b))))
    return worst


class ValidityEnvelopeProbe(Probe):
    """Intermediate and decided values stay in the relaxed hull of the
    correct inputs.

    The envelope is ``H_{(δ,p)}(honest inputs)`` with δ the running max of
    the processes' achieved ``delta_used`` (exact algorithms: δ = 0) plus
    the same solver-tolerance headroom the post-hoc checker grants, or —
    for k-relaxed consensus — the k-relaxed hull ``H_k``.  Checks are
    incremental: each ``(pid, round)`` intermediate value and each
    decision is measured once.
    """

    name = "validity"

    def __init__(
        self,
        *,
        p: PNorm = 2,
        delta: Optional[float] = None,
        k: Optional[int] = None,
        tol: float = 1e-6,
    ):
        super().__init__()
        self.p = p
        self.delta = delta  # None: dynamic (max achieved delta_used)
        self.k = k  # not None: k-relaxed envelope (delta ignored)
        self.tol = float(tol)
        self._hull: Optional["DeltaPHull"] = None
        self._khull: Optional["KRelaxedHull"] = None
        self._checked_values: set[tuple[int, int]] = set()
        self._checked_decisions: set[int] = set()
        self._last_delta = 0.0

    def _envelope_delta(self, view: ProbeView) -> float:
        if self.delta is not None:
            delta = self.delta
        else:
            delta = 0.0
            for pid in view.correct:
                used = getattr(view.processes[pid], "delta_used", None)
                if used is not None:
                    delta = max(delta, float(used))
        # Same headroom the post-hoc checker applies: the selected point
        # sits exactly at distance δ* from some subset hull.
        self._last_delta = delta * (1.0 + 1e-6) + 1e-9
        return self._last_delta

    def _excess(self, value: np.ndarray, honest: np.ndarray, delta: float) -> float:
        from ..geometry.relaxed import DeltaPHull, KRelaxedHull

        if self.k is not None:
            if self._khull is None:
                self._khull = KRelaxedHull(honest, self.k)
            return float(self._khull.violation(value, math.inf))
        if self._hull is None:
            self._hull = DeltaPHull(honest, 0.0, self.p)
        return max(0.0, float(self._hull.distance_to_core(value)) - delta)

    def on_boundary(self, view: ProbeView, time: int) -> None:
        honest = view.honest_inputs()
        if honest is None:
            return
        delta = self._envelope_delta(view)
        for pid in view.correct:
            proc = view.processes[pid]
            my_values = getattr(proc, "my_values", None)
            if my_values is not None:
                for rnd in sorted(my_values):
                    if rnd < 1 or (pid, rnd) in self._checked_values:
                        continue
                    self._checked_values.add((pid, rnd))
                    self.checks += 1
                    excess = self._excess(
                        np.asarray(my_values[rnd], dtype=float).ravel(),
                        honest, delta,
                    )
                    if excess > self.tol:
                        self.record(
                            time,
                            f"round-{rnd} value of pid {pid} leaves the "
                            f"validity envelope by {excess:.3g}",
                            pids=(pid,), measure=excess,
                        )
            ctx = view.contexts[pid]
            if ctx.decided and pid not in self._checked_decisions:
                self._checked_decisions.add(pid)
                self.checks += 1
                excess = self._excess(
                    np.asarray(ctx.decision, dtype=float).ravel(), honest, delta
                )
                if excess > self.tol:
                    self.record(
                        time,
                        f"decision of pid {pid} leaves the validity "
                        f"envelope by {excess:.3g}",
                        pids=(pid,), measure=excess,
                    )

    def check_decisions(
        self,
        decisions: Mapping[int, np.ndarray],
        honest_inputs: Optional[np.ndarray],
        *,
        time: Optional[int] = None,
    ) -> None:
        if honest_inputs is None:
            return
        honest = np.atleast_2d(np.asarray(honest_inputs, dtype=float))
        delta = self._last_delta if self.delta is None else self.delta
        for pid in sorted(decisions):
            self.checks += 1
            excess = self._excess(
                np.asarray(decisions[pid], dtype=float).ravel(), honest, delta
            )
            if excess > self.tol:
                self.record(
                    time,
                    f"decision of pid {pid} leaves the validity envelope "
                    f"by {excess:.3g}",
                    pids=(pid,), measure=excess,
                )


class AgreementConvergenceProbe(Probe):
    """Agreement (exact or ε) on decisions, plus monotone per-round
    spread contraction for Relaxed Verified Averaging.

    For any two verified round-``t`` values (``t >= 2``) share at least
    ``n - 2f`` averaging terms, so the coordinate range of the union of
    verified round-``t`` values can never exceed the round ``t-1`` range
    — the probe asserts that at every boundary, on the growing verified
    sets.  Decisions must agree within ``epsilon`` (exact algorithms:
    bit-agreement up to ``tol``).
    """

    name = "agreement"

    def __init__(self, *, epsilon: Optional[float] = None, tol: float = 1e-7):
        super().__init__()
        self.epsilon = epsilon
        self.tol = float(tol)
        self._flagged_rounds: set[int] = set()
        self._flagged_deciders: frozenset[int] = frozenset()

    def _round_ranges(self, view: ProbeView) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Per round: coordinatewise (min, max) over the union of all
        correct processes' verified values."""
        ranges: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for pid in view.correct:
            verified = getattr(view.processes[pid], "verified", None)
            if not verified:
                continue
            for (_, rnd), value in verified.items():
                vec = np.asarray(value, dtype=float).ravel()
                if rnd in ranges:
                    lo, hi = ranges[rnd]
                    ranges[rnd] = (np.minimum(lo, vec), np.maximum(hi, vec))
                else:
                    ranges[rnd] = (vec.copy(), vec.copy())
        return ranges

    def on_boundary(self, view: ProbeView, time: int) -> None:
        ranges = self._round_ranges(view)
        for rnd in sorted(ranges):
            if rnd < 2 or rnd in self._flagged_rounds or rnd - 1 not in ranges:
                continue
            self.checks += 1
            lo_prev, hi_prev = ranges[rnd - 1]
            lo, hi = ranges[rnd]
            spread_prev = float(np.max(hi_prev - lo_prev))
            spread = float(np.max(hi - lo))
            if spread > spread_prev + self.tol:
                self._flagged_rounds.add(rnd)
                self.record(
                    time,
                    f"round-{rnd} verified spread {spread:.3g} exceeds "
                    f"round-{rnd - 1} spread {spread_prev:.3g} "
                    "(contraction violated)",
                    measure=spread - spread_prev,
                )

        decisions = view.correct_decisions()
        self._check_diameter(decisions, time)

    def _check_diameter(
        self, decisions: Mapping[int, np.ndarray], time: Optional[int]
    ) -> None:
        deciders = frozenset(decisions)
        if len(deciders) < 2 or deciders == self._flagged_deciders:
            return
        self.checks += 1
        diameter = _diameter([decisions[pid] for pid in sorted(decisions)])
        bound = (self.epsilon if self.epsilon is not None else 0.0) + self.tol
        if diameter > bound:
            self._flagged_deciders = deciders
            self.record(
                time,
                f"decision diameter {diameter:.3g} exceeds the "
                f"agreement bound {bound:.3g}",
                pids=deciders, measure=diameter - bound,
            )

    def check_decisions(
        self,
        decisions: Mapping[int, np.ndarray],
        honest_inputs: Optional[np.ndarray],
        *,
        time: Optional[int] = None,
    ) -> None:
        self._flagged_deciders = frozenset()
        self._check_diameter(
            {pid: np.asarray(v, dtype=float).ravel()
             for pid, v in decisions.items()},
            time,
        )


class BroadcastIntegrityProbe(Probe):
    """No two correct processes accept different values for one
    ``(sender, tag)`` broadcast instance.

    Watches the reliable-broadcast delivery maps of the asynchronous
    processes (``_delivered``: Bracha agreement) and the agreed multiset
    of the synchronous broadcast-all template (identical ``S`` at every
    correct process — EIG/Dolev–Strong correctness).
    """

    name = "broadcast"

    def __init__(self) -> None:
        super().__init__()
        self._flagged_keys: set[Any] = set()
        self._checked_pairs: set[tuple[Any, int, int]] = set()

    @staticmethod
    def _equal(a: Any, b: Any) -> bool:
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return bool(np.array_equal(np.asarray(a), np.asarray(b)))
        result = a == b
        return bool(np.all(result)) if isinstance(result, np.ndarray) else bool(result)

    def on_boundary(self, view: ProbeView, time: int) -> None:
        # Asynchronous reliable broadcast: per-(sender, round) deliveries.
        delivered: dict[Any, list[tuple[int, Any]]] = {}
        for pid in view.correct:
            accepted = getattr(view.processes[pid], "_delivered", None)
            if accepted:
                for key, value in accepted.items():
                    delivered.setdefault(key, []).append((pid, value))
        for key in sorted(delivered, key=repr):
            if key in self._flagged_keys:
                continue
            entries = delivered[key]
            first_pid, first_value = entries[0]
            for pid, value in entries[1:]:
                pair = (key, first_pid, pid)
                if pair in self._checked_pairs:
                    continue
                self._checked_pairs.add(pair)
                self.checks += 1
                if not self._equal(first_value, value):
                    self._flagged_keys.add(key)
                    self.record(
                        time,
                        f"correct pids {first_pid} and {pid} accepted "
                        f"different values for broadcast instance {key!r}",
                        pids=(first_pid, pid),
                    )
                    break

        # Synchronous broadcast-all: the agreed multiset must be identical.
        multisets = [
            (pid, getattr(view.processes[pid], "multiset", None))
            for pid in view.correct
        ]
        multisets = [(pid, S) for pid, S in multisets if S is not None]
        if len(multisets) >= 2 and "multiset" not in self._flagged_keys:
            first_pid, first_S = multisets[0]
            for pid, S in multisets[1:]:
                pair = ("multiset", first_pid, pid)
                if pair in self._checked_pairs:
                    continue
                self._checked_pairs.add(pair)
                self.checks += 1
                if not self._equal(first_S, S):
                    self._flagged_keys.add("multiset")
                    self.record(
                        time,
                        f"correct pids {first_pid} and {pid} agreed on "
                        "different broadcast multisets",
                        pids=(first_pid, pid),
                    )
                    break


def build_probes(
    names: Sequence[str],
    *,
    algorithm: Optional[str] = None,
    p: PNorm = 2,
    k: int = 1,
    epsilon: Optional[float] = None,
    delta: Optional[float] = None,
) -> list[Probe]:
    """Instantiate probes by name, configured for one algorithm.

    ``names`` entries are members of :data:`PROBE_NAMES` or ``"all"``.
    ``epsilon`` configures the agreement bound for the approximate
    algorithms (``averaging``/``iterative``); exact algorithms assert
    bit-agreement.  ``krelaxed`` swaps the validity envelope for ``H_k``.
    """
    expanded: list[str] = []
    for name in names:
        if name == "all":
            expanded.extend(PROBE_NAMES)
        elif name in PROBE_NAMES:
            expanded.append(name)
        else:
            raise ValueError(
                f"unknown probe {name!r}; choices {PROBE_NAMES + ('all',)}"
            )
    approximate = algorithm in ("averaging", "iterative")
    probes: list[Probe] = []
    for name in dict.fromkeys(expanded):  # dedupe, keep order
        if name == "validity":
            if algorithm == "krelaxed":
                probes.append(ValidityEnvelopeProbe(k=k))
            else:
                # Iterative LP steps each carry feasibility slack; give
                # the online check the post-hoc checker's headroom.
                tol = 1e-6 if algorithm != "iterative" else 1e-5
                probes.append(ValidityEnvelopeProbe(p=p, delta=delta, tol=tol))
        elif name == "agreement":
            probes.append(AgreementConvergenceProbe(
                epsilon=epsilon if approximate else None,
            ))
        else:
            probes.append(BroadcastIntegrityProbe())
    return probes
