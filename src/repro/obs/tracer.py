"""Structured tracing: spans (timed, nested) and events (point-in-time).

The design goal is *zero cost when off*: the default tracer is a shared
:data:`NULL_TRACER` whose :func:`trace_span` returns one preallocated
no-op context manager, so instrumented hot paths do no allocation and no
clock reads unless a real :class:`Tracer` has been installed.

With a real tracer installed::

    from repro.obs import Tracer, use_tracer, trace_span

    tracer = Tracer()
    with use_tracer(tracer):
        with trace_span("sched.sync.round", round=3):
            ...
    tracer.spans        # -> [SpanRecord(...), ...]

Spans carry a monotonic-clock ``(t0, t1)`` interval, a ``span_id``, the
``parent_id`` of the enclosing span (None at the root), and free-form
``tags``.  Events are instantaneous records with a log level; the tracer's
``level`` filters them (``debug`` < ``info`` < ``warning``), which is what
the CLI's ``--quiet``/``--verbose`` flags control.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = [
    "SpanRecord",
    "EventRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "NULL_SPAN",
    "LEVELS",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "trace_span",
    "trace_event",
]

#: Log levels in increasing severity; a tracer records events at or above
#: its own level.
LEVELS = {"debug": 10, "info": 20, "warning": 30}


@dataclass
class SpanRecord:
    """One completed (or still-open) timed span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    t0: float
    t1: Optional[float] = None
    tags: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0


@dataclass(frozen=True)
class EventRecord:
    """One instantaneous event."""

    t: float
    name: str
    level: str
    fields: dict[str, Any]


class _ActiveSpan:
    """Context manager binding one SpanRecord to the tracer's span stack."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def tag(self, **tags: Any) -> "_ActiveSpan":
        """Attach tags to the span after opening (e.g. computed results)."""
        self.record.tags.update(tags)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack.append(self.record.span_id)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.record.t1 = time.perf_counter()
        self._tracer._stack.pop()
        return False


class _NullSpan:
    """Shared no-op span: entering, exiting and tagging all do nothing."""

    __slots__ = ()

    def tag(self, **tags: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


#: Shared no-op span — safe to use directly in hot loops that branch on
#: ``get_tracer().enabled`` themselves to avoid building a kwargs dict.
NULL_SPAN = _NullSpan()
_NULL_SPAN = NULL_SPAN


class Tracer:
    """Collects span and event records in memory.

    Parameters
    ----------
    level:
        Minimum event level recorded (``"debug"``, ``"info"``,
        ``"warning"``).  Spans are always recorded.
    echo:
        When true, recorded events are also printed to ``stderr`` as they
        happen (the CLI's ``--verbose`` behaviour).
    """

    enabled = True

    def __init__(self, level: str = "info", echo: bool = False):
        if level not in LEVELS:
            raise ValueError(f"unknown level {level!r}; choices {sorted(LEVELS)}")
        self.level = level
        self.echo = bool(echo)
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self._stack: list[int] = []
        self._next_id = 0

    def span(self, name: str, **tags: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        sid = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=sid,
            parent_id=parent,
            name=name,
            t0=time.perf_counter(),
            tags=dict(tags) if tags else {},
        )
        self.spans.append(record)
        return _ActiveSpan(self, record)

    def event(self, name: str, level: str = "info", **fields: Any) -> None:
        """Record an instantaneous event (dropped when below the level)."""
        if LEVELS.get(level, 20) < LEVELS[self.level]:
            return
        record = EventRecord(
            t=time.perf_counter(), name=name, level=level, fields=fields
        )
        self.events.append(record)
        if self.echo:  # pragma: no cover - console side effect
            import sys

            extras = " ".join(f"{k}={v}" for k, v in fields.items())
            print(f"[{level}] {name} {extras}".rstrip(), file=sys.stderr)

    def clear(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self._next_id = 0


class NullTracer:
    """The disabled tracer: records nothing, allocates nothing."""

    enabled = False
    level = "warning"
    spans: tuple = ()
    events: tuple = ()

    def span(self, name: str, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, level: str = "info", **fields: Any) -> None:
        return None


NULL_TRACER = NullTracer()

_tracer: Any = NULL_TRACER


def get_tracer() -> Any:
    """The currently installed tracer (NULL_TRACER by default)."""
    return _tracer


def set_tracer(tracer: Any) -> Any:
    """Install ``tracer`` globally; returns the previous one."""
    global _tracer
    prev = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return prev


@contextmanager
def use_tracer(tracer: Any) -> Iterator[Any]:
    """Install ``tracer`` for the ``with`` body, then restore."""
    prev = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(prev)


def trace_span(name: str, **tags: Any) -> "_ActiveSpan | _NullSpan":
    """Open a span on the installed tracer (shared no-op when disabled)."""
    t = _tracer
    if not t.enabled:
        return _NULL_SPAN
    return t.span(name, **tags)


def trace_event(name: str, level: str = "info", **fields: Any) -> None:
    """Record an event on the installed tracer (no-op when disabled)."""
    t = _tracer
    if t.enabled:
        t.event(name, level=level, **fields)
