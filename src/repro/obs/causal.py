"""Causal event collection: Lamport + vector clocks and happens-before.

The schedulers and the network stamp every *send* and *deliver* (plus
protocol-level *decide*/*iterate* marks) with a stable event id, a
Lamport timestamp, and a vector clock, and record the happens-before DAG:
send→deliver edges across processes, implicit program order within one
process.  :mod:`repro.analysis.timeline` consumes the recorded events to
reconstruct the causal cone of any decision ("why did process i decide
v?") and render per-round timelines.

The design goal matches :data:`~repro.obs.tracer.NULL_TRACER`: *zero cost
when off*.  The default collector is the shared :data:`NULL_COLLECTOR`
whose ``enabled`` flag is false; every instrumented call site branches on
``collector.enabled`` before building arguments, so the scheduler hot
loop does no allocation and no clock bookkeeping unless a real
:class:`CausalCollector` has been installed (``use_causal_collector`` /
``set_causal_collector``).

Event-id correspondence between sends and deliveries is exact even under
duplication and atomic broadcast: :meth:`CausalCollector.on_send` queues
the send's event id on the message's ``(src, dst)`` link mirror, and
:meth:`CausalCollector.pop_send` dequeues it when the scheduler pops the
link — the network's per-link FIFO discipline keeps both queues in
lockstep.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Iterator, Optional

__all__ = [
    "CausalEvent",
    "CausalCollector",
    "NullCausalCollector",
    "NULL_COLLECTOR",
    "get_causal_collector",
    "set_causal_collector",
    "use_causal_collector",
    "note_decision",
    "note_iteration",
]


@dataclass
class CausalEvent:
    """One stamped event of the happens-before DAG.

    ``eid`` is the event's stable id: its index in the collector's event
    list, assigned in recording order, so two replays of the same
    deterministic run number their events identically.  ``cause`` is the
    matching send event's id on deliver events (None elsewhere);
    program-order edges are implicit (consecutive events of one ``pid``).
    """

    eid: int
    kind: str  # "send" | "deliver" | "decide" | "iterate"
    pid: int
    lamport: int
    clock: tuple[int, ...]
    time: Optional[int] = None  # scheduler round (sync) or step (async)
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[str] = None
    cause: Optional[int] = None
    fields: dict[str, Any] = field(default_factory=dict)


class CausalCollector:
    """Records stamped events and happens-before edges for one run.

    Parameters
    ----------
    n:
        Number of processes (sizes the vector clocks).  May be 0; clocks
        grow on demand when events mention larger pids.
    """

    enabled = True

    def __init__(self, n: int = 0):
        self.events: list[CausalEvent] = []
        #: (cause_eid, effect_eid) send→deliver edges, in recording order.
        self.edges: list[tuple[int, int]] = []
        #: Current scheduler time (round or step), stamped on events whose
        #: call site does not pass ``time`` (the network, protocol code).
        self.now: Optional[int] = None
        self._lamport: list[int] = [0] * n
        self._clock: list[list[int]] = [[0] * n for _ in range(n)]
        #: per-link FIFO mirror of the network buffers: send event ids
        #: awaiting their delivery.
        self._in_flight: dict[tuple[int, int], Deque[int]] = {}
        #: pid -> eid of the process's most recent event (program order).
        self.last_event: dict[int, int] = {}

    # ------------------------------------------------------------- clocks
    def _ensure(self, pid: int) -> None:
        """Grow the clock state to cover ``pid`` (and keep clocks square)."""
        size = max(pid + 1, len(self._lamport))
        if size > len(self._lamport):
            self._lamport.extend([0] * (size - len(self._lamport)))
        for vc in self._clock:
            if size > len(vc):
                vc.extend([0] * (size - len(vc)))
        while len(self._clock) < size:
            self._clock.append([0] * size)

    def _record(self, event: CausalEvent) -> int:
        self.events.append(event)
        self.last_event[event.pid] = event.eid
        return event.eid

    # -------------------------------------------------------------- hooks
    def on_send(
        self,
        src: int,
        dst: int,
        tag: str,
        *,
        time: Optional[int] = None,
        **fields: Any,
    ) -> int:
        """Stamp one message submission; returns the send event's id.

        Called by :meth:`repro.system.network.Network.submit` once per
        accepted message (atomic broadcasts count once — their single
        send event fans out to one deliver event per target).
        """
        if time is None:
            time = self.now
        self._ensure(src)
        self._lamport[src] += 1
        vc = self._clock[src]
        vc[src] += 1
        eid = len(self.events)
        self._in_flight.setdefault((src, dst), deque()).append(eid)
        return self._record(CausalEvent(
            eid=eid, kind="send", pid=src, lamport=self._lamport[src],
            clock=tuple(vc), time=time, src=src, dst=dst, tag=tag,
            fields=dict(fields) if fields else {},
        ))

    def pop_send(self, src: int, dst: int) -> Optional[int]:
        """Dequeue the send event id for the head-of-line ``(src, dst)``
        message the scheduler just popped (None when the send predates
        collector installation)."""
        queue = self._in_flight.get((src, dst))
        if not queue:
            return None
        return queue.popleft()

    def stamp(self, eid: int) -> tuple[int, int, tuple[int, ...]]:
        """The ``(eid, lamport, clock)`` wire stamp of a recorded event.

        The live transport attaches this to outgoing MSG frames (wire
        version 2) so the receiving node's collector can merge the
        sender's clocks even though the two collectors live in different
        OS processes.
        """
        ev = self.events[eid]
        return (ev.eid, ev.lamport, ev.clock)

    def on_deliver(
        self,
        dst: int,
        send_eid: Optional[int],
        *,
        time: Optional[int] = None,
        **fields: Any,
    ) -> int:
        """Stamp one delivery at ``dst``, merging the send's clocks.

        One atomic broadcast yields one deliver event per target process,
        all caused by the same send event.
        """
        if time is None:
            time = self.now
        self._ensure(dst)
        cause = None
        lamport_floor = 0
        if send_eid is not None and 0 <= send_eid < len(self.events):
            sent = self.events[send_eid]
            cause = send_eid
            lamport_floor = sent.lamport
            vc = self._clock[dst]
            self._ensure(len(sent.clock) - 1)
            for i, v in enumerate(sent.clock):
                if v > vc[i]:
                    vc[i] = v
        self._lamport[dst] = max(self._lamport[dst], lamport_floor) + 1
        vc = self._clock[dst]
        vc[dst] += 1
        eid = len(self.events)
        if cause is not None:
            self.edges.append((cause, eid))
        src = self.events[cause].src if cause is not None else None
        tag = self.events[cause].tag if cause is not None else None
        return self._record(CausalEvent(
            eid=eid, kind="deliver", pid=dst, lamport=self._lamport[dst],
            clock=tuple(vc), time=time, src=src, dst=dst, tag=tag,
            cause=cause, fields=dict(fields) if fields else {},
        ))

    def on_deliver_remote(
        self,
        dst: int,
        origin: int,
        origin_eid: int,
        lamport: int,
        clock: tuple[int, ...],
        *,
        src: Optional[int] = None,
        tag: Optional[str] = None,
        time: Optional[int] = None,
        **fields: Any,
    ) -> int:
        """Stamp a delivery whose send event lives in *another process's*
        collector (a wire-stamped frame from a remote node).

        The carried Lamport timestamp and vector clock are merged exactly
        as :meth:`on_deliver` merges a local send's, but ``cause`` stays
        None — the matching send eid belongs to the origin node's event
        numbering, not ours.  The ``origin`` pair is recorded in
        ``fields["origin"]`` so post-hoc trail stitching
        (:mod:`repro.obs.fleet`) can reconnect the cross-process
        send→deliver edge.
        """
        if time is None:
            time = self.now
        self._ensure(dst)
        self._ensure(len(clock) - 1)
        vc = self._clock[dst]
        for i, v in enumerate(clock):
            if v > vc[i]:
                vc[i] = v
        self._lamport[dst] = max(self._lamport[dst], int(lamport)) + 1
        vc = self._clock[dst]
        vc[dst] += 1
        eid = len(self.events)
        merged = dict(fields) if fields else {}
        merged["origin"] = [int(origin), int(origin_eid)]
        return self._record(CausalEvent(
            eid=eid, kind="deliver", pid=dst, lamport=self._lamport[dst],
            clock=tuple(vc), time=time, src=src, dst=dst, tag=tag,
            cause=None, fields=merged,
        ))

    def on_mark(
        self,
        kind: str,
        pid: int,
        *,
        time: Optional[int] = None,
        **fields: Any,
    ) -> int:
        """Stamp a protocol-local event (``decide``, ``iterate``, ...)."""
        if time is None:
            time = self.now
        self._ensure(pid)
        self._lamport[pid] += 1
        vc = self._clock[pid]
        vc[pid] += 1
        eid = len(self.events)
        return self._record(CausalEvent(
            eid=eid, kind=kind, pid=pid, lamport=self._lamport[pid],
            clock=tuple(vc), time=time,
            fields=dict(fields) if fields else {},
        ))

    # ------------------------------------------------------------- queries
    def predecessors(self, eid: int) -> list[int]:
        """Immediate happens-before predecessors of one event: the
        process-local previous event plus (for deliveries) the send."""
        event = self.events[eid]
        preds: list[int] = []
        for prior in range(eid - 1, -1, -1):
            if self.events[prior].pid == event.pid:
                preds.append(prior)
                break
        if event.cause is not None:
            preds.append(event.cause)
        return preds

    def causal_cone(self, eid: int) -> list[int]:
        """Every event that happens-before (or is) ``eid``, ascending."""
        if not 0 <= eid < len(self.events):
            raise IndexError(f"no event {eid} (have {len(self.events)})")
        seen = {eid}
        frontier = [eid]
        while frontier:
            nxt = frontier.pop()
            for prior in self.predecessors(nxt):
                if prior not in seen:
                    seen.add(prior)
                    frontier.append(prior)
        return sorted(seen)

    def decide_event(self, pid: int) -> Optional[CausalEvent]:
        """The (first) decide event recorded for ``pid``, if any."""
        for event in self.events:
            if event.kind == "decide" and event.pid == pid:
                return event
        return None

    def to_records(self) -> list[dict[str, Any]]:
        """JSONL-ready ``{"type": "causal"}`` record dicts."""
        records: list[dict[str, Any]] = []
        for ev in self.events:
            rec: dict[str, Any] = {
                "type": "causal",
                "eid": ev.eid,
                "kind": ev.kind,
                "pid": ev.pid,
                "lamport": ev.lamport,
                "clock": list(ev.clock),
                "time": ev.time,
            }
            if ev.kind in ("send", "deliver"):
                rec["src"] = ev.src
                rec["dst"] = ev.dst
                rec["tag"] = ev.tag
            if ev.cause is not None:
                rec["cause"] = ev.cause
            if ev.fields:
                from .export import _jsonable

                rec["fields"] = _jsonable(ev.fields)
            records.append(rec)
        return records

    def clear(self) -> None:
        self.events.clear()
        self.edges.clear()
        self.last_event.clear()
        self._in_flight.clear()
        self._lamport = [0] * len(self._lamport)
        self._clock = [[0] * len(self._lamport) for _ in self._lamport]


class NullCausalCollector:
    """The disabled collector: records nothing, allocates nothing.

    Instrumented call sites branch on ``enabled`` *before* calling any
    method, so with the null collector installed the hot loop performs
    one attribute load and one truth test per guard — no method calls,
    no argument tuples (pinned by ``tests/obs/test_causal.py``).
    """

    enabled = False
    events: tuple = ()
    edges: tuple = ()

    def on_send(self, src: int, dst: int, tag: str, **kw: Any) -> Optional[int]:
        return None

    def pop_send(self, src: int, dst: int) -> Optional[int]:
        return None

    def on_deliver(self, dst: int, send_eid: Optional[int], **kw: Any) -> Optional[int]:
        return None

    def on_deliver_remote(
        self, dst: int, origin: int, origin_eid: int,
        lamport: int, clock: Any, **kw: Any,
    ) -> Optional[int]:
        return None

    def stamp(self, eid: int) -> None:
        return None

    def on_mark(self, kind: str, pid: int, **kw: Any) -> Optional[int]:
        return None


NULL_COLLECTOR = NullCausalCollector()

_collector: Any = NULL_COLLECTOR


def get_causal_collector() -> Any:
    """The installed collector (:data:`NULL_COLLECTOR` by default)."""
    return _collector


def set_causal_collector(collector: Any) -> Any:
    """Install ``collector`` globally; returns the previous one."""
    global _collector
    prev = _collector
    _collector = collector if collector is not None else NULL_COLLECTOR
    return prev


@contextmanager
def use_causal_collector(collector: Any) -> Iterator[Any]:
    """Install ``collector`` for the ``with`` body, then restore."""
    prev = set_causal_collector(collector)
    try:
        yield collector
    finally:
        set_causal_collector(prev)


def note_decision(pid: int, *, time: Optional[int] = None, **fields: Any) -> None:
    """Stamp a decide event for ``pid`` on the installed collector.

    Protocol code calls this at the moment ``ctx.decide`` fires, so the
    decide event lands in program order *after* the deliveries that
    justified it — that ordering is what makes
    :meth:`CausalCollector.causal_cone` an explanation of the decision.
    """
    c = _collector
    if c.enabled:
        c.on_mark("decide", pid, time=time, **fields)


def note_iteration(pid: int, *, time: Optional[int] = None, **fields: Any) -> None:
    """Stamp a protocol-iteration event (e.g. an averaging round advance)."""
    c = _collector
    if c.enabled:
        c.on_mark("iterate", pid, time=time, **fields)
