"""Observability substrate: structured tracing, metrics, run profiling.

Three pieces (see ``docs/observability.md`` for the guide):

* :mod:`repro.obs.tracer` — span/event records with a no-op default, so
  instrumented hot paths cost nothing until a :class:`Tracer` is
  installed (``use_tracer``/``set_tracer``).
* :mod:`repro.obs.metrics` — counters, gauges, and exact histograms in a
  :class:`MetricsRegistry`; every scheduler run owns one and surfaces it
  as ``RunResult.metrics``.
* :mod:`repro.obs.export` — JSONL serialisation and a validating reader
  (the human-readable renderers live in :mod:`repro.analysis.profiling`).

``@timed`` is the one-liner instrumentation: it records a wall-time
histogram sample on the ambient registry (and a span when tracing is on)
for every call of the decorated function.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, TypeVar

from .causal import (
    NULL_COLLECTOR,
    CausalCollector,
    CausalEvent,
    NullCausalCollector,
    get_causal_collector,
    note_decision,
    note_iteration,
    set_causal_collector,
    use_causal_collector,
)
from .export import (
    SCHEMA_VERSION,
    dump_jsonl,
    header_record,
    read_jsonl,
    trace_to_records,
    validate_records,
    write_jsonl,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    global_registry,
    use_registry,
)
from .perf import (
    NULL_PROFILER,
    FixedBucketHistogram,
    NullPhaseProfiler,
    PhaseProfiler,
    get_profiler,
    perf_phase,
    set_profiler,
    use_profiler,
)
from .probes import (
    PROBE_NAMES,
    AgreementConvergenceProbe,
    BroadcastIntegrityProbe,
    Probe,
    ProbeReport,
    ProbeView,
    ProbeViolation,
    ValidityEnvelopeProbe,
    build_probes,
)
from .tracer import (
    EventRecord,
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    trace_event,
    trace_span,
    use_tracer,
)

__all__ = [
    "AgreementConvergenceProbe",
    "BroadcastIntegrityProbe",
    "CausalCollector",
    "CausalEvent",
    "Counter",
    "EventRecord",
    "FixedBucketHistogram",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COLLECTOR",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullCausalCollector",
    "NullPhaseProfiler",
    "NullTracer",
    "PROBE_NAMES",
    "PhaseProfiler",
    "Probe",
    "ProbeReport",
    "ProbeView",
    "ProbeViolation",
    "SCHEMA_VERSION",
    "SpanRecord",
    "Tracer",
    "ValidityEnvelopeProbe",
    "build_probes",
    "current_registry",
    "dump_jsonl",
    "get_causal_collector",
    "get_profiler",
    "get_tracer",
    "global_registry",
    "header_record",
    "note_decision",
    "note_iteration",
    "perf_phase",
    "read_jsonl",
    "set_causal_collector",
    "set_profiler",
    "set_tracer",
    "timed",
    "trace_event",
    "trace_span",
    "trace_to_records",
    "use_causal_collector",
    "use_profiler",
    "use_registry",
    "use_tracer",
    "validate_records",
    "write_jsonl",
]

F = TypeVar("F", bound=Callable[..., Any])


def timed(name: str) -> Callable[[F], F]:
    """Decorator: time every call into ``<name>.seconds`` on the ambient
    registry, and open a ``<name>`` span when tracing is enabled."""

    def deco(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with trace_span(name):
                t0 = time.perf_counter()
                try:
                    return fn(*args, **kwargs)
                finally:
                    current_registry().observe(
                        f"{name}.seconds", time.perf_counter() - t0
                    )

        return wrapper  # type: ignore[return-value]

    return deco
