"""Process-local metrics: counters, gauges, and latency histograms.

A :class:`MetricsRegistry` is a flat namespace of named metrics.  Each
scheduler run owns one registry (surfaced as ``RunResult.metrics``), and
installs it as the *ambient* registry for the duration of the run so that
deep layers — broadcast state machines, the geometry kernels — can record
without any plumbing::

    from repro.obs import metrics
    metrics.inc("bcast.bracha.echo")          # ambient registry
    metrics.observe("geometry.delta_star.seconds", dt)

Outside any run the ambient registry is a process-global one, so
standalone kernel calls (CLI, notebooks) still accumulate somewhere
inspectable.

Naming convention (see ``docs/observability.md``): dotted lowercase paths,
``<layer>.<component>.<what>`` — e.g. ``net.messages_sent``,
``sched.sync.rounds``, ``geometry.delta_star.seconds``.  Histogram names
end in a unit (``.seconds``, ``.bytes``).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "current_registry",
    "global_registry",
    "use_registry",
    "inc",
    "observe",
    "set_gauge",
]


class Counter:
    """Monotonically increasing count (int or float)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value, tracking the extremes seen."""

    __slots__ = ("value", "max", "min", "updates")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.max: float = -math.inf
        self.min: float = math.inf
        self.updates: int = 0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value
        if value < self.min:
            self.min = value
        self.updates += 1

    def as_dict(self) -> dict[str, Any]:
        if not self.updates:
            return {"type": "gauge", "value": None, "max": None, "min": None,
                    "updates": 0}
        return {"type": "gauge", "value": self.value, "max": self.max,
                "min": self.min, "updates": self.updates}


class Histogram:
    """Exact sample histogram with percentile queries.

    Stores every observation (simulation scale — thousands, not billions),
    so percentiles are exact order statistics with linear interpolation.
    """

    __slots__ = ("samples",)

    def __init__(self) -> None:
        self.samples: list[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def min(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (0 <= q <= 100), linearly interpolated."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            raise ValueError("percentile of an empty histogram")
        xs = sorted(self.samples)
        if len(xs) == 1:
            return xs[0]
        pos = (q / 100.0) * (len(xs) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(xs) - 1)
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    def as_dict(self) -> dict[str, Any]:
        if not self.samples:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Flat namespace of named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ accessors
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram()
        return h

    # ------------------------------------------------------------ recording
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ----------------------------------------------------------- inspection
    def counter_value(self, name: str, default: int = 0) -> int:
        c = self._counters.get(name)
        return c.value if c is not None else default

    def names(self) -> list[str]:
        return sorted({*self._counters, *self._gauges, *self._histograms})

    def snapshot(self) -> dict[str, Any]:
        """Plain-data view of every metric (JSON-serialisable)."""
        out: dict[str, Any] = {}
        for name, c in self._counters.items():
            out[name] = c.as_dict()
        for name, g in self._gauges.items():
            out[name] = g.as_dict()
        for name, h in self._histograms.items():
            out[name] = h.as_dict()
        return dict(sorted(out.items()))

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )


# ---------------------------------------------------------------------------
# ambient registry (single-threaded simulator: a simple stack suffices)
# ---------------------------------------------------------------------------

_GLOBAL = MetricsRegistry()
_STACK: list[MetricsRegistry] = [_GLOBAL]


def global_registry() -> MetricsRegistry:
    """The process-wide fallback registry."""
    return _GLOBAL


def current_registry() -> MetricsRegistry:
    """The innermost active registry (the global one outside any run)."""
    return _STACK[-1]


def active_registry() -> Optional[MetricsRegistry]:
    """The innermost *explicitly installed* registry, or None.

    Unlike :func:`current_registry` this never falls back to the global
    registry; schedulers use it so that a run started inside a
    ``use_registry`` scope (the ``repro trace`` CLI) records into that
    scope's registry, while standalone runs get a private one.
    """
    return _STACK[-1] if len(_STACK) > 1 else None


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient registry for the ``with`` body."""
    reg = registry if registry is not None else MetricsRegistry()
    _STACK.append(reg)
    try:
        yield reg
    finally:
        _STACK.pop()


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the ambient registry."""
    _STACK[-1].counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram sample on the ambient registry."""
    _STACK[-1].histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient registry."""
    _STACK[-1].gauge(name).set(value)
