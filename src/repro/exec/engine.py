"""The sweep engine: run a grid of trials, serially or across workers.

Determinism contract
--------------------
A trial's outcome is a pure function of its :class:`TrialSpec`: the
per-cell seed is position-independent (hashed from the cell
coordinates), every trial runs under its own fresh
:class:`~repro.obs.metrics.MetricsRegistry`, and the geometry cache keys
on exact argument bytes, so a hit returns exactly the bits the wrapped
kernel would have computed.  Pool workers additionally start from a
*cleared* cache (a pool initializer drops any table inherited through
``fork``), so parallel results are computed independently rather than
replayed from the parent's history.  Consequently
``run_sweep(trials, workers=1)`` and
``run_sweep(trials, workers=8)`` produce byte-identical decision vectors
and verdicts — checked by :func:`compare_grid` and asserted in CI.

Parallel execution uses a ``multiprocessing`` pool with
``imap_unordered``: trials are dealt out in chunks and idle workers
steal the next chunk, so a slow cell (a Tverberg search, say) does not
serialise the sweep.  Results carry their grid ``index`` and are
re-sorted after the barrier, so completion order never leaks into the
output.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from dataclasses import replace
from typing import Any, Optional, Sequence

from ..core.runner import run
from ..geometry.cache import cache_enabled, clear_cache, set_cache_enabled
from ..obs.metrics import MetricsRegistry
from .grid import SweepGrid, TrialSpec, build_runspec
from .results import SweepResult, TrialResult, decisions_to_hex

__all__ = ["compare_grid", "run_grid", "run_sweep", "run_trial"]


def _rollup_metrics(registry: MetricsRegistry) -> dict[str, float]:
    """Flatten a registry snapshot: counters verbatim, histograms as
    ``<name>.total`` (gauges are point-in-time; dropped)."""
    out: dict[str, float] = {}
    for name, record in registry.snapshot().items():
        kind = record.get("type")
        if kind == "counter":
            out[name] = float(record["value"])
        elif kind == "histogram" and record.get("count"):
            out[name + ".total"] = float(record["total"])
    return out


def run_trial(trial: TrialSpec) -> TrialResult:
    """Execute one grid cell under a fresh metrics registry.

    This is the unit of parallel work: it builds the adversary and the
    :class:`~repro.core.runspec.RunSpec` locally (nothing live crosses
    the process boundary) and returns a plain-data record.
    """
    registry = MetricsRegistry()
    spec = replace(build_runspec(trial), metrics=registry)
    start = time.perf_counter()
    outcome = run(spec)
    wall = time.perf_counter() - start
    stats = outcome.result.stats
    report = outcome.report
    return TrialResult(
        index=trial.index,
        algorithm=trial.algorithm,
        n=trial.n,
        d=trial.d,
        f=trial.f,
        adversary=trial.adversary,
        rep=trial.rep,
        seed=trial.seed,
        ok=outcome.ok,
        agreement_ok=report.agreement_ok,
        validity_ok=report.validity_ok,
        termination_ok=report.termination_ok,
        rounds=int(outcome.result.rounds),
        messages=int(stats.messages_sent),
        bytes_estimate=int(stats.bytes_estimate),
        delta_used=None if outcome.delta_used is None
        else float(outcome.delta_used),
        decisions=decisions_to_hex(outcome.decisions),
        wall_seconds=wall,
        metrics=_rollup_metrics(registry),
        probe_violations=int(outcome.probe_violations),
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start cheap; fall back to the platform default
    # where fork is unavailable.  Either way _worker_init clears the
    # geometry cache, so workers never replay state inherited from the
    # parent process.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _worker_init() -> None:
    # Under fork the worker inherits the parent's warm cache table.  A
    # parallel pass must compute its results independently — both so the
    # serial-vs-parallel identity check can actually catch cache bugs and
    # so timing comparisons are cold-vs-cold — so every worker starts
    # from an empty table.
    clear_cache()


def run_sweep(
    trials: Sequence[TrialSpec],
    *,
    workers: int = 1,
    chunksize: Optional[int] = None,
    skipped_trials: int = 0,
    grid: Optional[dict[str, Any]] = None,
) -> SweepResult:
    """Run every trial and aggregate into a :class:`SweepResult`.

    ``workers=1`` runs in-process (no pool, easiest to debug/profile);
    ``workers>1`` fans trials over a process pool in chunks of
    ``chunksize`` (default: ~4 chunks per worker, the classic
    work-stealing balance between dispatch overhead and tail latency).
    Either way the result list is in grid order.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    trial_list = list(trials)
    start = time.perf_counter()
    if workers == 1 or len(trial_list) <= 1:
        results = [run_trial(t) for t in trial_list]
    else:
        if chunksize is None:
            chunksize = max(1, math.ceil(len(trial_list) / (workers * 4)))
        ctx = _pool_context()
        with ctx.Pool(processes=workers, initializer=_worker_init) as pool:
            results = list(pool.imap_unordered(
                run_trial, trial_list, chunksize=chunksize
            ))
        results.sort(key=lambda r: r.index)
    wall = time.perf_counter() - start
    return SweepResult(
        trials=results,
        workers=workers,
        wall_seconds=wall,
        cpu_count=os.cpu_count() or 1,
        skipped_trials=skipped_trials,
        grid=dict(grid or {}),
        cache_enabled=cache_enabled(),
    )


def run_grid(
    grid: SweepGrid,
    *,
    workers: int = 1,
    chunksize: Optional[int] = None,
) -> SweepResult:
    """Expand a grid and run it."""
    trials, skipped = grid.trials()
    return run_sweep(
        trials,
        workers=workers,
        chunksize=chunksize,
        skipped_trials=skipped,
        grid=grid.to_dict(),
    )


def compare_grid(
    grid: SweepGrid,
    *,
    workers: int,
    chunksize: Optional[int] = None,
    measure_cache: bool = False,
) -> dict[str, Any]:
    """Run a grid serially and in parallel; check bit-identity.

    Returns the comparison document serialised into ``BENCH_sweep.json``
    by the CLI: both modes' timings, the shared decisions digest, and —
    with ``measure_cache`` — a third serial pass with the geometry cache
    disabled, quantifying the cache's speedup on the same grid.

    Every timed pass starts from a cleared geometry cache (and pool
    workers clear again in their initializer): the passes must compute
    their results independently for the identity assertion to mean
    anything, and cold-vs-cold keeps the timing ratio apples-to-apples.
    """
    clear_cache()
    serial = run_grid(grid, workers=1, chunksize=chunksize)
    clear_cache()
    parallel = run_grid(grid, workers=workers, chunksize=chunksize)
    serial_digest = serial.decisions_digest()
    parallel_digest = parallel.decisions_digest()
    cpu_count = os.cpu_count() or 1
    doc: dict[str, Any] = {
        "schema": "repro.exec.compare/1",
        "grid": grid.to_dict(),
        "cpu_count": cpu_count,
        "trial_count": serial.trial_count,
        "skipped_trials": serial.skipped_trials,
        "identical": serial_digest == parallel_digest,
        "decisions_digest": {"serial": serial_digest,
                             "parallel": parallel_digest},
        "modes": [
            {"workers": 1, "wall_seconds": round(serial.wall_seconds, 6)},
            {"workers": workers,
             "wall_seconds": round(parallel.wall_seconds, 6)},
        ],
        "parallel_speedup": round(
            serial.wall_seconds / parallel.wall_seconds, 4
        ) if parallel.wall_seconds else None,
        "summary": serial.summary(),
        "trials": [t.to_dict() for t in serial.trials],
    }
    if cpu_count == 1:
        # A 1-core box time-shares the pool: the ratio measures scheduler
        # overhead, not parallelism.  Never report it as a speedup.
        doc["parallel_speedup"] = None
        doc["parallel_speedup_note"] = (
            "unmeasurable: cpu_count == 1 — parallel workers time-share a "
            "single core, so the wall-clock ratio is not a speedup"
        )
    if measure_cache:
        was_enabled = set_cache_enabled(False)
        try:
            clear_cache()
            uncached = run_grid(grid, workers=1, chunksize=chunksize)
        finally:
            set_cache_enabled(was_enabled)
        doc["cache_off"] = {
            "wall_seconds": round(uncached.wall_seconds, 6),
            "identical_to_cached": uncached.decisions_digest() == serial_digest,
            "cache_speedup": round(
                uncached.wall_seconds / serial.wall_seconds, 4
            ) if serial.wall_seconds else None,
        }
    return doc
