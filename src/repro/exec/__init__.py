"""Deterministic parallel experiment engine.

Declare a sweep as a :class:`SweepGrid` (the cross product ``algorithm ×
d × f × n × adversary × rep``), expand it to plain-data
:class:`TrialSpec` cells with position-independent hashed seeds, and run
it with :func:`run_grid` — in-process or fanned over a
``multiprocessing`` pool.  Serial and parallel execution produce
byte-identical decision vectors and verdicts (:func:`compare_grid`
checks this; ``python -m repro sweep`` exposes it).

>>> from repro.exec import SweepGrid, run_grid
>>> result = run_grid(SweepGrid(algorithms=("algo",), reps=2), workers=2)
>>> result.ok_count == result.trial_count
True
"""

from .bench import (
    BENCH_SCHEMA,
    STANDARD_GRIDS,
    bench_grid,
    compare_bench,
    environment_block,
    run_bench,
)
from .engine import compare_grid, run_grid, run_sweep, run_trial
from .grid import (
    ADVERSARIES,
    SweepGrid,
    TrialSpec,
    build_adversary,
    build_runspec,
    derive_trial_seed,
    min_trial_size,
)
from .live_launch import (
    TOPOLOGY_SCHEMA,
    build_process,
    build_topology,
    launch_local,
    load_topology,
    run_node,
    write_topology,
)
from .results import SweepResult, TrialResult, decisions_to_hex, hex_to_decisions

__all__ = [
    "ADVERSARIES",
    "BENCH_SCHEMA",
    "STANDARD_GRIDS",
    "TOPOLOGY_SCHEMA",
    "SweepGrid",
    "SweepResult",
    "TrialResult",
    "TrialSpec",
    "bench_grid",
    "build_adversary",
    "build_process",
    "build_runspec",
    "build_topology",
    "compare_bench",
    "compare_grid",
    "decisions_to_hex",
    "derive_trial_seed",
    "environment_block",
    "hex_to_decisions",
    "launch_local",
    "load_topology",
    "min_trial_size",
    "run_bench",
    "run_grid",
    "run_node",
    "run_sweep",
    "run_trial",
    "write_topology",
]
