"""Throughput benchmark harness: the BENCH_perf trajectory.

ROADMAP item 2 wants decisions/sec vs ``n``, ``d``, ``f`` to be "a
tracked number, not a slogan".  This module is the tracker: it drives
the sweep engine over a named standard grid with a
:class:`~repro.obs.perf.PhaseProfiler` installed, and emits a versioned
``BENCH_perf.json`` that every later perf PR (vectorised kernels,
multi-core) is judged against:

* **throughput rows** — one per ``(algorithm, n, d, f)`` cell,
  aggregated over adversaries and reps, each with decisions/sec and
  mean rounds/messages;
* **per-phase breakdown** — the full flame snapshot plus a per-name
  rollup (where did the wall clock actually go);
* **environment block** — cpu_count / python / numpy / platform, so a
  1-core artifact can never masquerade as a parallel measurement: when
  ``cpu_count == 1`` any parallel pass reports ``speedup: null`` with an
  explicit "unmeasurable" note instead of a number (the same honesty
  rule :func:`repro.exec.engine.compare_grid` applies).

:func:`compare_bench` diffs two BENCH documents under a regression
threshold — ``python -m repro bench --compare OLD NEW`` exits non-zero
when throughput fell by more than the allowed fraction, which is the CI
regression gate.  Wall-clock numbers are only comparable on similar
machines, so the threshold is deliberately generous by default and the
comparison refuses cells the two documents don't share.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Mapping, Optional

from ..geometry.cache import clear_cache
from ..obs.perf import PhaseProfiler, rollup_phases, use_profiler
from .grid import SweepGrid
from .results import SweepResult
from .engine import run_grid

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_COMPARE_SCHEMA",
    "STANDARD_GRIDS",
    "bench_grid",
    "compare_bench",
    "environment_block",
    "run_bench",
]

BENCH_SCHEMA = "repro.exec.bench/1"
BENCH_COMPARE_SCHEMA = "repro.exec.bench.compare/1"

#: Default fraction of baseline throughput a cell may lose before the
#: comparison fails.  Generous on purpose: decisions/sec moves with the
#: machine, so only a large drop on the *same* machine is a signal.
DEFAULT_MAX_REGRESSION = 0.5

_GRID_SPECS: dict[str, dict[str, Any]] = {
    # CI smoke: seconds, two algorithm families (sync geometry + async
    # averaging), enough reps for a stable rate.
    "tiny": dict(
        algorithms=("algo", "averaging"),
        dimensions=(2,),
        faults=(1,),
        sizes=(6,),
        adversaries=("none",),
        reps=2,
        base_seed=2016,
    ),
    # The committed-baseline grid: every synchronous family plus
    # averaging, two dimensions, silent faults — a superset of ``tiny``'s
    # cells so the CI smoke run always has rows to compare against.
    "small": dict(
        algorithms=("algo", "exact", "averaging"),
        dimensions=(2, 3),
        faults=(1,),
        sizes=(6, 8),
        adversaries=("none", "silent"),
        reps=2,
        base_seed=2016,
    ),
    # The full trajectory grid for perf PRs (mirrors BENCH_sweep.json's
    # axes with the k-relaxed family added).
    "standard": dict(
        algorithms=("algo", "exact", "krelaxed", "averaging"),
        dimensions=(3, 4),
        faults=(1,),
        sizes=(8, 10, 12),
        adversaries=("none", "silent", "mutate"),
        reps=2,
        base_seed=2016,
    ),
}

STANDARD_GRIDS = tuple(sorted(_GRID_SPECS))


def bench_grid(name: str) -> SweepGrid:
    """The named standard grid (``tiny`` / ``small`` / ``standard``)."""
    try:
        spec = _GRID_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown bench grid {name!r}; choose from {', '.join(STANDARD_GRIDS)}"
        ) from None
    return SweepGrid(**spec)


def environment_block() -> dict[str, Any]:
    """Where this BENCH document was measured — the honesty header."""
    import numpy

    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def _cell_key(algorithm: str, n: int, d: int, f: int) -> str:
    return f"{algorithm}/n={n}/d={d}/f={f}"


def _throughput_cells(result: SweepResult) -> list[dict[str, Any]]:
    """One row per ``(algorithm, n, d, f)``, aggregated over adversaries
    and reps.  ``decisions`` counts individual per-process decisions (the
    unit of consensus work); the rate divides by the cells' summed trial
    wall time, not the sweep wall (which includes engine overhead)."""
    groups: dict[tuple[str, int, int, int], list[Any]] = {}
    for t in result.trials:
        groups.setdefault((t.algorithm, t.n, t.d, t.f), []).append(t)
    cells = []
    for (algorithm, n, d, f), trials in sorted(groups.items()):
        decisions = sum(len(t.decisions) for t in trials)
        wall = sum(t.wall_seconds for t in trials)
        cells.append({
            "key": _cell_key(algorithm, n, d, f),
            "algorithm": algorithm,
            "n": n,
            "d": d,
            "f": f,
            "trials": len(trials),
            "ok": sum(1 for t in trials if t.ok),
            "decisions": decisions,
            "wall_seconds": round(wall, 6),
            "decisions_per_second": round(decisions / wall, 3) if wall else None,
            "rounds_mean": round(
                sum(t.rounds for t in trials) / len(trials), 2
            ),
            "messages_mean": round(
                sum(t.messages for t in trials) / len(trials), 1
            ),
        })
    return cells


def run_bench(
    grid: SweepGrid,
    *,
    grid_name: Optional[str] = None,
    workers: int = 1,
) -> dict[str, Any]:
    """Run the benchmark and build the BENCH document.

    The timed pass is always serial and cold (cache cleared first) with a
    :class:`~repro.obs.perf.PhaseProfiler` installed, so the per-phase
    breakdown and the throughput numbers describe the same execution.
    ``workers > 1`` adds a second, parallel pass; its speedup is reported
    only when the environment can actually measure one (``cpu_count > 1``)
    and is flagged unmeasurable otherwise.
    """
    env = environment_block()
    profiler = PhaseProfiler()
    clear_cache()
    with use_profiler(profiler):
        result = run_grid(grid, workers=1)
    snapshot = profiler.snapshot()
    decisions_total = sum(len(t.decisions) for t in result.trials)
    doc: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "grid_name": grid_name,
        "grid": grid.to_dict(),
        "environment": env,
        "trial_count": result.trial_count,
        "skipped_trials": result.skipped_trials,
        "ok_count": result.ok_count,
        "decisions_digest": result.decisions_digest(),
        "wall_seconds": round(result.wall_seconds, 6),
        "throughput": {
            "decisions_total": decisions_total,
            "decisions_per_second": round(
                decisions_total / result.wall_seconds, 3
            ) if result.wall_seconds else None,
            "trials_per_second": round(
                result.trial_count / result.wall_seconds, 3
            ) if result.wall_seconds else None,
        },
        "cells": _throughput_cells(result),
        "phases": snapshot["phases"],
        "phases_by_name": {
            name: {
                "count": row["count"],
                "wall_seconds": round(row["wall_seconds"], 6),
                "cpu_seconds": round(row["cpu_seconds"], 6),
                "self_seconds": round(row["self_seconds"], 6),
                "paths": row["paths"],
            }
            for name, row in rollup_phases(snapshot).items()
        },
        "cache": snapshot["cache"],
    }
    if workers > 1:
        clear_cache()
        t0 = time.perf_counter()
        parallel = run_grid(grid, workers=workers)
        parallel_wall = time.perf_counter() - t0
        block: dict[str, Any] = {
            "workers": workers,
            "wall_seconds": round(parallel_wall, 6),
            "identical": (
                parallel.decisions_digest() == doc["decisions_digest"]
            ),
        }
        if env["cpu_count"] == 1:
            block["speedup"] = None
            block["note"] = (
                "unmeasurable: cpu_count == 1 — parallel workers time-share "
                "a single core, so the wall-clock ratio is not a speedup"
            )
        else:
            block["speedup"] = round(
                result.wall_seconds / parallel_wall, 4
            ) if parallel_wall else None
        doc["parallel"] = block
    return doc


def _rate_drop(old: Optional[float], new: Optional[float]) -> Optional[float]:
    """Fractional throughput loss from ``old`` to ``new`` (>0 = slower)."""
    if not old or new is None:
        return None
    return (old - new) / old


def compare_bench(
    old: Mapping[str, Any],
    new: Mapping[str, Any],
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> dict[str, Any]:
    """Diff two BENCH documents under a throughput-regression threshold.

    A cell present in both documents regresses when its decisions/sec
    drops by more than ``max_regression`` (a fraction: 0.5 means "new may
    not be less than half of old").  The overall rate is judged only when
    the two documents ran the same grid — otherwise the mix of cells
    makes the aggregate meaningless and only shared cells are compared.
    The verdict also flags an environment change (different cpu_count or
    machine), since cross-machine wall-clock deltas are not regressions.
    """
    if not 0.0 <= max_regression < 1.0:
        raise ValueError(
            f"max_regression must be in [0, 1), got {max_regression}"
        )
    for label, doc in (("old", old), ("new", new)):
        if doc.get("schema") != BENCH_SCHEMA:
            raise ValueError(
                f"{label} document schema {doc.get('schema')!r} is not "
                f"{BENCH_SCHEMA!r}"
            )
    old_env = old.get("environment", {})
    new_env = new.get("environment", {})
    env_changed = (
        old_env.get("cpu_count") != new_env.get("cpu_count")
        or old_env.get("machine") != new_env.get("machine")
    )
    old_cells = {c["key"]: c for c in old.get("cells", [])}
    new_cells = {c["key"]: c for c in new.get("cells", [])}
    shared = sorted(set(old_cells) & set(new_cells))
    regressions: list[dict[str, Any]] = []
    improvements: list[dict[str, Any]] = []
    for key in shared:
        drop = _rate_drop(
            old_cells[key].get("decisions_per_second"),
            new_cells[key].get("decisions_per_second"),
        )
        if drop is None:
            continue
        row = {
            "key": key,
            "old_decisions_per_second": old_cells[key]["decisions_per_second"],
            "new_decisions_per_second": new_cells[key]["decisions_per_second"],
            "drop": round(drop, 4),
        }
        if drop > max_regression:
            regressions.append(row)
        elif drop < -max_regression:
            improvements.append(row)
    same_grid = old.get("grid") == new.get("grid")
    overall_drop = None
    if same_grid:
        overall_drop = _rate_drop(
            old.get("throughput", {}).get("decisions_per_second"),
            new.get("throughput", {}).get("decisions_per_second"),
        )
        if overall_drop is not None and overall_drop > max_regression:
            regressions.append({
                "key": "overall",
                "old_decisions_per_second":
                    old["throughput"]["decisions_per_second"],
                "new_decisions_per_second":
                    new["throughput"]["decisions_per_second"],
                "drop": round(overall_drop, 4),
            })
    return {
        "schema": BENCH_COMPARE_SCHEMA,
        "max_regression": max_regression,
        "same_grid": same_grid,
        "environment_changed": env_changed,
        "cells_compared": len(shared),
        "cells_only_old": sorted(set(old_cells) - set(new_cells)),
        "cells_only_new": sorted(set(new_cells) - set(old_cells)),
        "overall_drop": (
            round(overall_drop, 4) if overall_drop is not None else None
        ),
        "regressions": regressions,
        "improvements": improvements,
        "ok": not regressions,
    }
