"""Structured results of a sweep: per-trial records and the aggregate.

Decision vectors are stored as ``float.hex`` strings — exact, JSON-safe
encodings of every coordinate bit — so "serial and parallel sweeps are
bit-identical" is checkable (and checked) at the byte level, not through
a lossy ``repr`` round-trip.

A :class:`TrialResult` separates its **identity** (algorithm, shape,
seed, verdicts, rounds, messages, exact decisions — everything that must
match between execution modes) from its **measurements** (wall time,
rolled-up obs metrics — which legitimately vary with scheduling and
cache warmth).  :meth:`SweepResult.decisions_digest` hashes only the
identity records.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["TrialResult", "SweepResult", "decisions_to_hex", "hex_to_decisions"]

SCHEMA = "repro.exec.sweep/1"


def decisions_to_hex(
    decisions: dict[int, np.ndarray],
) -> tuple[tuple[int, tuple[str, ...]], ...]:
    """Exact encoding of a decision map: pid-sorted ``float.hex`` tuples."""
    return tuple(
        (int(pid), tuple(float(x).hex() for x in np.asarray(vec).ravel()))
        for pid, vec in sorted(decisions.items())
    )


def hex_to_decisions(
    encoded: tuple[tuple[int, tuple[str, ...]], ...],
) -> dict[int, np.ndarray]:
    """Inverse of :func:`decisions_to_hex` (bit-exact round trip)."""
    return {
        int(pid): np.array([float.fromhex(h) for h in coords])
        for pid, coords in encoded
    }


@dataclass(frozen=True)
class TrialResult:
    """One executed grid cell.

    ``decisions`` holds every correct process's decision vector in exact
    ``float.hex`` coordinates; ``metrics`` is the flat roll-up of the
    trial's :class:`~repro.obs.metrics.MetricsRegistry` (counters
    verbatim, histograms as ``<name>.total``).
    """

    index: int
    algorithm: str
    n: int
    d: int
    f: int
    adversary: str
    rep: int
    seed: int
    ok: bool
    agreement_ok: bool
    validity_ok: bool
    termination_ok: bool
    rounds: int
    messages: int
    bytes_estimate: int
    delta_used: Optional[float]
    decisions: tuple[tuple[int, tuple[str, ...]], ...]
    wall_seconds: float
    metrics: dict[str, float] = field(default_factory=dict)
    #: Total online probe violations (0 when the trial ran without
    #: probes).  Deliberately NOT part of the identity record: probes
    #: observe a run, they never change it, so enabling them must not
    #: move the decisions digest.
    probe_violations: int = 0

    def identity_record(self) -> dict[str, Any]:
        """Everything that must be bit-identical across execution modes
        (excludes wall time, obs metrics, and probe-violation counts,
        which measure the run)."""
        return {
            "index": self.index,
            "algorithm": self.algorithm,
            "n": self.n,
            "d": self.d,
            "f": self.f,
            "adversary": self.adversary,
            "rep": self.rep,
            "seed": self.seed,
            "ok": self.ok,
            "agreement_ok": self.agreement_ok,
            "validity_ok": self.validity_ok,
            "termination_ok": self.termination_ok,
            "rounds": self.rounds,
            "messages": self.messages,
            "bytes_estimate": self.bytes_estimate,
            "delta_used": None if self.delta_used is None
            else float(self.delta_used).hex(),
            "decisions": [[pid, list(coords)] for pid, coords in self.decisions],
        }

    def to_dict(self) -> dict[str, Any]:
        out = asdict(self)
        out["decisions"] = [[pid, list(coords)] for pid, coords in self.decisions]
        return out

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "TrialResult":
        decisions = tuple(
            (int(pid), tuple(str(h) for h in coords))
            for pid, coords in d.get("decisions", [])
        )
        kwargs = dict(d)
        kwargs["decisions"] = decisions
        kwargs["metrics"] = dict(d.get("metrics", {}))
        # files written before probes existed carry no count
        kwargs["probe_violations"] = int(d.get("probe_violations", 0))
        return cls(**kwargs)


@dataclass
class SweepResult:
    """All trials of one sweep execution, plus how it was executed."""

    trials: list[TrialResult]
    workers: int
    wall_seconds: float
    cpu_count: int
    #: Trials omitted during grid expansion (undersized ``n``, scalar on
    #: vector dimensions) — counted per trial, so ``trial_count +
    #: skipped_trials`` is the grid's full cross product.
    skipped_trials: int = 0
    grid: dict[str, Any] = field(default_factory=dict)
    cache_enabled: bool = True

    @property
    def trial_count(self) -> int:
        return len(self.trials)

    @property
    def ok_count(self) -> int:
        return sum(1 for t in self.trials if t.ok)

    @property
    def probe_violations(self) -> int:
        """Total online probe violations across every trial."""
        return sum(t.probe_violations for t in self.trials)

    def decisions_digest(self) -> str:
        """SHA-256 over the canonical JSON of every identity record.

        Two sweeps of the same grid agree on this digest iff every
        per-trial decision vector and verdict is byte-identical.
        """
        records = [t.identity_record() for t in sorted(self.trials,
                                                      key=lambda t: t.index)]
        payload = json.dumps(records, sort_keys=True,
                             separators=(",", ":")).encode()
        return hashlib.sha256(payload).hexdigest()

    def metric_total(self, name: str) -> float:
        """Sum of one rolled-up metric across every trial."""
        return float(sum(t.metrics.get(name, 0.0) for t in self.trials))

    def summary(self) -> dict[str, Any]:
        """Aggregate view: verdicts, traffic, solver time, cache rates."""
        hits = self.metric_total("geometry.cache.hits")
        misses = self.metric_total("geometry.cache.misses")
        lookups = hits + misses
        per_algorithm: dict[str, dict[str, Any]] = {}
        for t in self.trials:
            agg = per_algorithm.setdefault(t.algorithm, {
                "trials": 0, "ok": 0, "wall_seconds": 0.0,
                "messages": 0, "rounds": 0, "probe_violations": 0,
            })
            agg["trials"] += 1
            agg["ok"] += int(t.ok)
            agg["wall_seconds"] = round(agg["wall_seconds"] + t.wall_seconds, 6)
            agg["messages"] += t.messages
            agg["rounds"] += t.rounds
            agg["probe_violations"] += t.probe_violations
        return {
            "trials": self.trial_count,
            "ok": self.ok_count,
            "probe_violations": self.probe_violations,
            "skipped_trials": self.skipped_trials,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "wall_seconds": round(self.wall_seconds, 6),
            "cache_enabled": self.cache_enabled,
            "geometry_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
            },
            "delta_star_calls": self.metric_total("geometry.delta_star.calls"),
            "delta_star_seconds": round(
                self.metric_total("geometry.delta_star.seconds.total"), 6),
            "messages": int(self.metric_total("net.messages_sent")),
            "per_algorithm": dict(sorted(per_algorithm.items())),
        }

    # ------------------------------------------------------------- serialise
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": SCHEMA,
            "grid": self.grid,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "wall_seconds": round(self.wall_seconds, 6),
            "skipped_trials": self.skipped_trials,
            "cache_enabled": self.cache_enabled,
            "decisions_digest": self.decisions_digest(),
            "summary": self.summary(),
            "trials": [t.to_dict() for t in self.trials],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def save(self, path: str) -> None:
        """Write the sweep as JSON (``BENCH_sweep.json`` by convention)."""
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SweepResult":
        if d.get("schema") != SCHEMA:
            raise ValueError(f"unknown sweep schema {d.get('schema')!r}")
        return cls(
            trials=[TrialResult.from_dict(t) for t in d.get("trials", [])],
            workers=int(d.get("workers", 1)),
            wall_seconds=float(d.get("wall_seconds", 0.0)),
            cpu_count=int(d.get("cpu_count", 1)),
            skipped_trials=int(d.get("skipped_trials", 0)),
            grid=dict(d.get("grid", {})),
            cache_enabled=bool(d.get("cache_enabled", True)),
        )

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
