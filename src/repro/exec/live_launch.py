"""Subprocess-per-node deployment of the live transport.

The in-process :class:`~repro.system.transport.live.LiveTransport` runs a
whole cluster on one event loop — good for tests, useless for demonstrating
that the protocol stack really is transport-independent.  This module is
the other half of ROADMAP item 1: every node is its **own OS process**
(``python -m repro node``), finding its peers through a shared *topology
file*, and a launcher (``python -m repro launch``) that spawns a local
cluster and collects the decisions.

Topology file (JSON, schema ``repro.transport.topology/1``)::

    {
      "schema": "repro.transport.topology/1",
      "instance": "launch-averaging-tcp-n4-s0",
      "algorithm": "averaging",      # any repro.core.ALGORITHMS entry
      "n": 4, "d": 2, "f": 1,
      "kind": "tcp",                 # or "uds"
      "seed": 0,                     # master seed (inputs, ctx rngs, keys)
      "broadcast": "eig",            # sync algorithms' primitive
      "p": 2.0, "k": 1, "delta": 0.0, "epsilon": 0.05,
      "mode": "optimal", "alpha": 0.5,
      "rounds": 17,                  # resolved at build time (see below)
      "input_scale": 3.0,
      "max_rounds": 64, "max_steps": 2000000,
      "nodes": [{"id": 0, "kind": "tcp", "host": "127.0.0.1",
                 "port": 40001, "path": ""}, ...]
    }

Everything a node needs is derived deterministically from the document:

* **Inputs** — ``default_rng(seed).normal(scale=input_scale, size=(n, d))``,
  the exact :meth:`~repro.core.runspec.RunSpec.resolved_inputs` derivation,
  so a live cluster computes on the same inputs a ``RunSpec`` with the same
  seed would.
* **Signature keys** (``broadcast="dolev-strong"``) — every node builds
  ``SignatureScheme(n, default_rng(seed))``; the scheme is deterministic in
  the rng, so n separate processes derive identical key tables without any
  key-distribution step.
* **Averaging round budget** — termination needs every node to run the
  same number of rounds; the contraction-bound estimate depends only on
  the (seed-derived) inputs, so it is resolved once at *build* time and
  written into the document rather than recomputed per node.

Live deployments execute **honest** runs only (the document has no
adversary vocabulary); Byzantine behaviour needs the deterministic
simulator (``transport="sim"``).

TCP ports are allocated by binding port 0 and releasing the socket just
before the node binds it again — racy in principle, fine in practice for
loopback CI clusters (and UDS paths have no such race).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Optional

import numpy as np

from ..core.runspec import ALGORITHMS
from ..system.transport.live import LiveNode, NodeAddress
from .grid import min_trial_size

__all__ = [
    "TOPOLOGY_SCHEMA",
    "allocate_addresses",
    "build_process",
    "build_topology",
    "launch_local",
    "load_topology",
    "run_node",
    "write_topology",
]

TOPOLOGY_SCHEMA = "repro.transport.topology/1"

#: Document keys every topology file must carry (beyond the schema tag).
_REQUIRED_KEYS = (
    "instance", "algorithm", "n", "d", "f", "kind", "seed", "broadcast",
    "p", "k", "delta", "epsilon", "mode", "alpha", "rounds", "input_scale",
    "max_rounds", "max_steps", "nodes",
)


# ---------------------------------------------------------------------------
# topology documents
# ---------------------------------------------------------------------------


def _derived_inputs(doc: dict[str, Any]) -> np.ndarray:
    """The cluster's input matrix — RunSpec.resolved_inputs, verbatim."""
    rng = np.random.default_rng(int(doc["seed"]))
    return rng.normal(
        scale=float(doc["input_scale"]), size=(int(doc["n"]), int(doc["d"]))
    )


def build_topology(
    algorithm: str,
    n: int,
    d: int,
    f: int,
    nodes: list[NodeAddress],
    *,
    kind: str = "tcp",
    seed: int = 0,
    broadcast: str = "eig",
    p: float = 2.0,
    k: int = 1,
    delta: float = 0.0,
    epsilon: float = 5e-2,
    mode: str = "optimal",
    alpha: float = 0.5,
    rounds: Optional[int] = None,
    input_scale: float = 3.0,
    max_rounds: int = 64,
    max_steps: int = 2_000_000,
    instance: Optional[str] = None,
) -> dict[str, Any]:
    """Assemble (and validate) a topology document for one cluster."""
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choices {ALGORITHMS}"
        )
    if kind not in ("tcp", "uds"):
        raise ValueError(f"unknown transport kind {kind!r} (tcp or uds)")
    if algorithm == "scalar" and d != 1:
        raise ValueError(f"scalar consensus requires d=1, got d={d}")
    floor = min_trial_size(algorithm, d, f, k)
    if n < floor:
        raise ValueError(
            f"{algorithm} with d={d}, f={f} needs n >= {floor}, got {n}"
        )
    if len(nodes) != n:
        raise ValueError(f"need {n} node addresses, got {len(nodes)}")
    if sorted(a.node_id for a in nodes) != list(range(n)):
        raise ValueError("node ids must be exactly 0..n-1")
    doc: dict[str, Any] = {
        "schema": TOPOLOGY_SCHEMA,
        "instance": instance
        or f"launch-{algorithm}-{kind}-n{n}-s{seed}",
        "algorithm": algorithm,
        "n": int(n),
        "d": int(d),
        "f": int(f),
        "kind": kind,
        "seed": int(seed),
        "broadcast": broadcast,
        "p": float(p),
        "k": int(k),
        "delta": float(delta),
        "epsilon": float(epsilon),
        "mode": mode,
        "alpha": float(alpha),
        "rounds": rounds,
        "input_scale": float(input_scale),
        "max_rounds": int(max_rounds),
        "max_steps": int(max_steps),
        "nodes": [a.as_dict() for a in sorted(nodes, key=lambda a: a.node_id)],
    }
    if doc["rounds"] is None:
        if algorithm == "averaging":
            # Same estimate _handle_averaging uses, resolved once here so
            # every node terminates after the identical round count.
            from ..core.averaging import rounds_for_epsilon

            inputs = _derived_inputs(doc)
            spread = float(np.max(inputs.max(axis=0) - inputs.min(axis=0)))
            doc["rounds"] = rounds_for_epsilon(
                3.0 * max(spread, float(epsilon)), n, f, float(epsilon)
            )
        elif algorithm == "iterative":
            doc["rounds"] = 30
    if algorithm == "iterative":
        doc["max_rounds"] = int(doc["rounds"]) + 2
    return doc


def write_topology(path: str, doc: dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_topology(path: str) -> dict[str, Any]:
    """Read and structurally validate a topology file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != TOPOLOGY_SCHEMA:
        raise ValueError(
            f"{path!r} is not a {TOPOLOGY_SCHEMA} document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in doc]
    if missing:
        raise ValueError(f"{path!r} is missing topology keys: {missing}")
    if doc["algorithm"] not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {doc['algorithm']!r} in {path!r}")
    n = int(doc["n"])
    addresses = [NodeAddress.from_dict(entry) for entry in doc["nodes"]]
    if sorted(a.node_id for a in addresses) != list(range(n)):
        raise ValueError(f"{path!r}: node ids must be exactly 0..{n - 1}")
    if doc["algorithm"] in ("averaging", "iterative") and doc["rounds"] is None:
        raise ValueError(
            f"{path!r}: {doc['algorithm']} topologies must carry a "
            "resolved 'rounds' (build_topology resolves it)"
        )
    return doc


def allocate_addresses(
    n: int, kind: str, *, host: str = "127.0.0.1", base_dir: str = ""
) -> list[NodeAddress]:
    """Concrete listen addresses for a local ``n``-node cluster.

    TCP ports come from the bind-0/close dance; UDS sockets live under
    ``base_dir`` (which must already exist).
    """
    if kind == "tcp":
        socks: list[socket.socket] = []
        try:
            for _ in range(n):
                s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                s.bind((host, 0))
                socks.append(s)
            ports = [s.getsockname()[1] for s in socks]
        finally:
            for s in socks:
                s.close()
        return [
            NodeAddress(pid, "tcp", host=host, port=ports[pid])
            for pid in range(n)
        ]
    if kind == "uds":
        if not base_dir:
            raise ValueError("uds address allocation needs a base_dir")
        return [
            NodeAddress(pid, "uds", path=os.path.join(base_dir, f"n{pid}.sock"))
            for pid in range(n)
        ]
    raise ValueError(f"unknown transport kind {kind!r} (tcp or uds)")


# ---------------------------------------------------------------------------
# one node
# ---------------------------------------------------------------------------


def build_process(doc: dict[str, Any], pid: int) -> Any:
    """Materialise node ``pid``'s protocol process from the document.

    Deterministic in the document alone: n separate OS processes calling
    this with the same file agree on inputs, signature keys, and round
    budgets without exchanging a byte.
    """
    algorithm = doc["algorithm"]
    n, d, f = int(doc["n"]), int(doc["d"]), int(doc["f"])
    if not 0 <= pid < n:
        raise ValueError(f"pid {pid} outside 0..{n - 1}")
    inputs = _derived_inputs(doc)
    broadcast = str(doc["broadcast"])
    scheme = None
    if broadcast == "dolev-strong":
        from ..system.crypto import SignatureScheme

        # Deterministic in the seed: every node derives the same keys.
        scheme = SignatureScheme(n, np.random.default_rng(int(doc["seed"])))
    if algorithm == "exact":
        from ..core.exact_bvc import ExactBVCProcess

        return ExactBVCProcess(
            n, f, pid, inputs[pid], broadcast=broadcast, scheme=scheme
        )
    if algorithm == "algo":
        from ..core.algo_sync import AlgoProcess

        return AlgoProcess(
            n, f, pid, inputs[pid], p=doc["p"],
            broadcast=broadcast, scheme=scheme,
        )
    if algorithm == "krelaxed":
        from ..core.krelaxed import KRelaxedProcess

        return KRelaxedProcess(
            n, f, pid, inputs[pid], k=int(doc["k"]),
            broadcast=broadcast, scheme=scheme,
        )
    if algorithm == "scalar":
        from ..core.scalar import ScalarConsensusProcess

        return ScalarConsensusProcess(
            n, f, pid, inputs[pid], broadcast=broadcast, scheme=scheme
        )
    if algorithm == "iterative":
        from ..core.iterative import IterativeBVCProcess
        from ..system.topology import complete_topology

        return IterativeBVCProcess(
            n, f, pid, inputs[pid], topology=complete_topology(n),
            num_rounds=int(doc["rounds"]), alpha=float(doc["alpha"]),
        )
    assert algorithm == "averaging"
    from ..core.averaging import VerifiedAveragingProcess

    return VerifiedAveragingProcess(
        n, f, pid, inputs[pid], num_rounds=int(doc["rounds"]),
        mode=str(doc["mode"]), delta=float(doc["delta"]), p=doc["p"],
    )


def run_node(
    doc: dict[str, Any],
    pid: int,
    *,
    metrics_port: Optional[int] = None,
    linger: float = 0.0,
    trace_path: Optional[str] = None,
    emit: Optional[Callable[[dict[str, Any]], None]] = None,
) -> dict[str, Any]:
    """Run one cluster node to completion; returns its decision record.

    ``metrics_port`` serves live Prometheus text at ``/metrics`` for the
    whole run (plus ``linger`` extra seconds afterwards, so a scraper can
    still reach a node whose run finished first).  ``emit`` is called
    with the decision record *before* the linger window — the launcher
    reads decisions from stdout while slower nodes keep running.

    ``trace_path`` exports the node's trail as JSONL *with causal
    tracing on*: a per-process :class:`~repro.obs.causal.CausalCollector`
    stamps every send/deliver (the stamps ride the version-2 wire frames
    to peers), and the trail carries ``transport.node.topology`` /
    ``transport.node.decision`` events so a directory of trails is
    self-contained input for :mod:`repro.obs.fleet` stitching and
    post-hoc probes.
    """
    import asyncio

    from ..obs.causal import CausalCollector, use_causal_collector
    from ..obs.export import write_jsonl
    from ..obs.prom import serve_metrics
    from ..obs.tracer import Tracer, use_tracer

    addresses = {
        int(entry["id"]): NodeAddress.from_dict(entry)
        for entry in doc["nodes"]
    }
    process = build_process(doc, pid)
    node = LiveNode(
        pid, int(doc["n"]), int(doc["f"]), process, addresses[pid],
        instance=str(doc["instance"]), seed=int(doc["seed"]),
        max_rounds=int(doc["max_rounds"]), max_steps=int(doc["max_steps"]),
    )

    server = None
    if metrics_port is not None:
        # Re-snapshotted per scrape: _result() folds the node's current
        # NetworkStats and per-link counters into a fresh registry.
        from ..obs.prom import render_exposition

        def source() -> str:
            return render_exposition(node._result().metrics.snapshot())

        server = serve_metrics(source, port=metrics_port)
        server.start_background()

    async def drive() -> Any:
        await node.start_server()
        node.connect_peers(addresses)
        try:
            return await node.run()
        finally:
            await node.shutdown()

    tracer = Tracer(level="info")
    collector = CausalCollector(int(doc["n"])) if trace_path else None
    tracer.event(
        "transport.node.topology",
        pid=pid, instance=doc["instance"], algorithm=doc["algorithm"],
        n=int(doc["n"]), d=int(doc["d"]), f=int(doc["f"]),
        seed=int(doc["seed"]), input_scale=float(doc["input_scale"]),
        epsilon=float(doc["epsilon"]), p=doc["p"], k=int(doc["k"]),
        delta=float(doc["delta"]), kind=doc["kind"],
    )
    try:
        with use_tracer(tracer), use_causal_collector(collector):
            with tracer.span(
                "transport.node", pid=pid, instance=doc["instance"]
            ):
                result = asyncio.run(drive())
    finally:
        record = _node_record(doc, pid, node)
        if trace_path:
            decision = record["decision"]
            delta_used = getattr(node.process, "delta_used", None)
            tracer.event(
                "transport.node.decision",
                pid=pid, decided=record["decided"], decision=decision,
                rounds=record["rounds"], completed=record["completed"],
                delta_used=None if delta_used is None else float(delta_used),
            )
            write_jsonl(trace_path, tracer, node._result().metrics,
                        collector=collector,
                        run_id=f"{doc['instance']}-n{pid}")
        if emit is not None:
            emit(record)
        if server is not None and linger > 0:
            time.sleep(linger)
        if server is not None:
            server.shutdown()
    record["rounds"] = int(result.rounds)
    return record


def _node_record(doc: dict[str, Any], pid: int, node: LiveNode) -> dict[str, Any]:
    """The one-line JSON decision record ``repro node`` prints."""
    decided = node.ctx.decided
    decision = node.ctx.decision
    if decision is not None and hasattr(decision, "tolist"):
        decision = decision.tolist()
    elif isinstance(decision, tuple):
        decision = list(decision)
    live = {
        name: int(metric["value"])
        for name, metric in node._result().metrics.snapshot().items()
        if name.startswith("net.live.") and metric.get("type") == "counter"
    }
    return {
        "schema": "repro.transport.decision/1",
        "instance": doc["instance"],
        "algorithm": doc["algorithm"],
        "node": pid,
        "decided": bool(decided),
        "decision": decision if decided else None,
        "rounds": int(node.rounds_done),
        "completed": bool(node.completed),
        "messages_sent": int(node.stats.messages_sent),
        "messages_delivered": int(node.stats.messages_delivered),
        "live": live,
    }


# ---------------------------------------------------------------------------
# the local launcher
# ---------------------------------------------------------------------------


def _spread(decisions: list[np.ndarray]) -> float:
    """Largest pairwise Euclidean distance between decisions."""
    worst = 0.0
    for i in range(len(decisions)):
        for j in range(i + 1, len(decisions)):
            worst = max(
                worst, float(np.linalg.norm(decisions[i] - decisions[j]))
            )
    return worst


def launch_local(
    algorithm: str,
    n: int,
    d: int,
    f: int,
    *,
    kind: str = "tcp",
    seed: int = 0,
    broadcast: str = "eig",
    p: float = 2.0,
    k: int = 1,
    epsilon: float = 5e-2,
    rounds: Optional[int] = None,
    mode: str = "optimal",
    workdir: Optional[str] = None,
    timeout: float = 120.0,
    metrics_port: Optional[int] = None,
    linger: float = 0.0,
    trace_dir: Optional[str] = None,
    python: str = sys.executable,
) -> dict[str, Any]:
    """Spawn an ``n``-subprocess cluster; collect and judge the decisions.

    Returns a launch report.  ``ok`` holds when every node decided and
    completed, the decisions agree — bitwise (to solver tolerance) for
    the exact algorithms, within ``epsilon`` for the approximate ones —
    and, when trails were collected, the stitched fleet evidence is
    complete and every post-hoc probe is clean.

    ``metrics_port`` is a *base* port: node ``pid`` serves ``/metrics``
    on ``metrics_port + pid`` (every node, not just node 0), and the
    report records each node's scrape address under
    ``metrics_addresses``.  ``trace_dir`` collects one causal-traced
    JSONL trail per node and folds a ``fleet`` block (stitch report +
    probe verdicts) into the launch report.
    """
    owned_tmp: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-launch-")
        workdir = owned_tmp.name
    try:
        addresses = allocate_addresses(n, kind, base_dir=workdir)
        doc = build_topology(
            algorithm, n, d, f, addresses, kind=kind, seed=seed,
            broadcast=broadcast, p=p, k=k, epsilon=epsilon, rounds=rounds,
            mode=mode,
        )
        topology_path = os.path.join(workdir, "topology.json")
        write_topology(topology_path, doc)

        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        metrics_addresses: dict[str, str] = {}
        procs: list[subprocess.Popen[str]] = []
        for pid in range(n):
            cmd = [python, "-m", "repro", "node",
                   "--topology", topology_path, "--id", str(pid)]
            if metrics_port is not None:
                cmd += ["--metrics-port", str(metrics_port + pid)]
                if linger > 0:
                    cmd += ["--linger", str(linger)]
                metrics_addresses[str(pid)] = (
                    f"http://127.0.0.1:{metrics_port + pid}/metrics"
                )
            if trace_dir:
                os.makedirs(trace_dir, exist_ok=True)
                cmd += ["--trace",
                        os.path.join(trace_dir, f"node-{pid}.jsonl")]
            procs.append(subprocess.Popen(
                cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=env,
            ))

        deadline = time.monotonic() + timeout
        records: list[Optional[dict[str, Any]]] = [None] * n
        errors: list[str] = []
        try:
            for pid, proc in enumerate(procs):
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    out, err = proc.communicate(timeout=remaining)
                except subprocess.TimeoutExpired:
                    errors.append(f"node {pid}: timed out after {timeout}s")
                    continue
                line = next(
                    (ln for ln in reversed(out.splitlines()) if ln.strip()),
                    "",
                )
                try:
                    records[pid] = json.loads(line)
                except ValueError:
                    tail = (err or out or "").strip().splitlines()
                    errors.append(
                        f"node {pid}: no decision line (exit "
                        f"{proc.returncode}): {tail[-1] if tail else '?'}"
                    )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
            for proc in procs:
                if proc.poll() is None:
                    proc.wait()

        good = [r for r in records if r is not None]
        decided = [r for r in good if r.get("decided")]
        decisions = [
            np.atleast_1d(np.asarray(r["decision"], dtype=float))
            for r in decided
        ]
        spread = _spread(decisions) if len(decisions) >= 2 else 0.0
        exactish = algorithm in ("exact", "algo", "krelaxed", "scalar")
        tolerance = 1e-9 if exactish else float(epsilon)
        fleet_block = _fleet_block(trace_dir) if trace_dir else None
        ok = (
            not errors
            and len(decided) == n
            and all(r.get("completed") for r in good)
            and spread <= tolerance
            and (fleet_block is None or fleet_block.get("ok", False))
        )
        return {
            "schema": "repro.transport.launch-report/1",
            "instance": doc["instance"],
            "algorithm": algorithm,
            "kind": kind,
            "n": n,
            "d": d,
            "f": f,
            "seed": seed,
            "ok": bool(ok),
            "decided_nodes": len(decided),
            "agreement_spread": spread,
            "agreement_tolerance": tolerance,
            "errors": errors,
            "metrics_addresses": metrics_addresses,
            "fleet": fleet_block,
            "nodes": records,
            "topology": doc,
        }
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()


def _fleet_block(trace_dir: str) -> dict[str, Any]:
    """Stitch the collected trails and run the post-hoc probes.

    ``ok`` holds when the merged graph is complete (every remote deliver
    found its send) and no probe recorded a violation.  A stitching or
    probe failure is reported, never raised — the launch report must
    still be written so the cluster outcome stays inspectable.
    """
    from ..obs.fleet import (
        discover_trails,
        fleet_probes,
        load_trails,
        stitch,
    )

    try:
        trails = load_trails(discover_trails(trace_dir))
        graph, stitch_report = stitch(trails)
        reports, context = fleet_probes(trails, graph)
        probes_ok = all(report.ok for report in reports)
        return {
            "ok": bool(stitch_report.complete and probes_ok),
            "stitch": stitch_report.to_dict(),
            "probes": [report.to_dict() for report in reports],
            "probes_ok": probes_ok,
            "context": context,
        }
    except (OSError, ValueError) as exc:
        return {"ok": False, "error": str(exc)}
