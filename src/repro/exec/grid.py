"""Deterministic experiment grids: cells, seeds, adversaries.

A :class:`SweepGrid` is the cross product ``algorithm × d × f × n ×
adversary × rep``.  Expansion is a plain nested loop over the declared
axes (no RNG), so the same grid always yields the same ordered tuple of
:class:`TrialSpec` cells; cells whose ``n`` falls below the algorithm's
resilience bound (:func:`min_trial_size`) are skipped deterministically.

Each cell's seed is derived by hashing the cell's coordinates
(:func:`derive_trial_seed`), so a trial's randomness depends only on
*what* it is — never on where in the grid it sits, which worker runs it,
or what ran before it.  That is the load-bearing half of the engine's
serial-vs-parallel bit-identity contract.

Adversaries are named (:data:`ADVERSARIES`) rather than stored as
objects: a :class:`TrialSpec` stays plain picklable data and the actual
:class:`~repro.system.adversary.Adversary` — which may hold stateful
strategies — is constructed fresh inside whichever worker process runs
the trial.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from typing import Any, Callable, Optional, Union

import numpy as np

from ..core import bounds
from ..core.runspec import ALGORITHMS, RunSpec
from ..system.adversary import (
    Adversary,
    CrashStrategy,
    DuplicateStrategy,
    EquivocateStrategy,
    MutateStrategy,
    SilentStrategy,
)

__all__ = [
    "ADVERSARIES",
    "SweepGrid",
    "TrialSpec",
    "build_adversary",
    "build_runspec",
    "derive_trial_seed",
    "min_trial_size",
]

PNorm = Union[float, int]


# ---------------------------------------------------------------------------
# per-cell seed derivation
# ---------------------------------------------------------------------------


def derive_trial_seed(
    base_seed: int,
    algorithm: str,
    n: int,
    d: int,
    f: int,
    adversary: str,
    rep: int,
) -> int:
    """Position-independent seed for one grid cell.

    SHA-256 of the cell coordinates, truncated to 8 bytes.  Two cells
    differing in any coordinate get statistically independent seeds; the
    same cell gets the same seed in every expansion, ordering, and
    worker assignment.
    """
    key = f"{base_seed}|{algorithm}|n={n}|d={d}|f={f}|{adversary}|rep={rep}"
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


# ---------------------------------------------------------------------------
# named adversaries
# ---------------------------------------------------------------------------


def _perturb_payload(value: Any, rng: np.random.Generator, scale: float) -> Any:
    """Structured noise on numeric tuples (protocol-agnostic), matching
    the DST fault-script mutator."""
    if isinstance(value, tuple):
        if value and all(isinstance(v, float) for v in value):
            return tuple(v + float(rng.normal() * scale) for v in value)
        return tuple(_perturb_payload(v, rng, scale) for v in value)
    return value


def _faulty_suffix(n: int, f: int) -> list[int]:
    """The highest-pid ``f`` processes — the conventional corrupt set."""
    return list(range(n - f, n))


def _adv_none(n: int, f: int) -> Optional[Adversary]:
    return None


def _adv_honest(n: int, f: int) -> Optional[Adversary]:
    # Corrupt set declared, but runs honest logic: exercises the f-count
    # bookkeeping (trim sizes, checker filtering) without misbehaviour.
    return Adversary(faulty=_faulty_suffix(n, f)) if f else None


def _adv_silent(n: int, f: int) -> Optional[Adversary]:
    if not f:
        return None
    return Adversary(faulty=_faulty_suffix(n, f), strategy=SilentStrategy())


def _adv_crash(n: int, f: int) -> Optional[Adversary]:
    if not f:
        return None
    return Adversary(faulty=_faulty_suffix(n, f), strategy=CrashStrategy(1))


def _adv_mutate(n: int, f: int) -> Optional[Adversary]:
    if not f:
        return None
    strategy = MutateStrategy(
        lambda tag, payload, rng: _perturb_payload(payload, rng, 10.0)
    )
    return Adversary(faulty=_faulty_suffix(n, f), strategy=strategy)


def _adv_equivocate(n: int, f: int) -> Optional[Adversary]:
    if not f:
        return None
    strategy = EquivocateStrategy(
        lambda tag, payload, dst, rng: _perturb_payload(payload, rng, 10.0)
    )
    return Adversary(faulty=_faulty_suffix(n, f), strategy=strategy)


def _adv_duplicate(n: int, f: int) -> Optional[Adversary]:
    if not f:
        return None
    return Adversary(faulty=_faulty_suffix(n, f), strategy=DuplicateStrategy(2))


#: name -> factory ``(n, f) -> Optional[Adversary]``.  Factories run inside
#: the worker process that executes the trial, so strategies never cross a
#: process boundary.
ADVERSARIES: dict[str, Callable[[int, int], Optional[Adversary]]] = {
    "none": _adv_none,
    "honest": _adv_honest,
    "silent": _adv_silent,
    "crash": _adv_crash,
    "mutate": _adv_mutate,
    "equivocate": _adv_equivocate,
    "duplicate": _adv_duplicate,
}


def build_adversary(name: str, n: int, f: int) -> Optional[Adversary]:
    """Instantiate the named adversary for an ``(n, f)`` system."""
    if name not in ADVERSARIES:
        raise ValueError(
            f"unknown adversary {name!r}; choices {sorted(ADVERSARIES)}"
        )
    return ADVERSARIES[name](n, f)


# ---------------------------------------------------------------------------
# grid cells
# ---------------------------------------------------------------------------


def min_trial_size(algorithm: str, d: int, f: int, k: int = 1) -> int:
    """Smallest legal ``n`` for a grid cell (resilience + geometry floor).

    Resilience bounds come from :mod:`repro.core.bounds`; the extra
    ``d + 1`` floor keeps the vector algorithms' subset machinery
    non-degenerate (matching the DST scenario sampler).
    """
    if algorithm == "exact":
        return bounds.exact_bvc_min_n(d, f)
    if algorithm == "scalar":
        return 3 * f + 1
    if algorithm == "iterative":
        return bounds.approx_bvc_min_n(d, f)
    if algorithm == "krelaxed":
        return max(bounds.k_relaxed_exact_min_n(d, f, k), d + 1)
    if algorithm in ("algo", "averaging"):
        return max(3 * f + 1, d + 1)
    raise ValueError(f"unknown algorithm {algorithm!r}; choices {ALGORITHMS}")


@dataclass(frozen=True)
class TrialSpec:
    """One grid cell: plain picklable data, no live objects.

    ``seed`` is the cell's derived seed (already position-independent);
    ``index`` is the cell's rank in grid order, used only to re-sort
    results after unordered parallel completion.
    """

    index: int
    algorithm: str
    n: int
    d: int
    f: int
    adversary: str
    rep: int
    seed: int
    p: PNorm = 2
    k: int = 1
    epsilon: float = 5e-2
    input_scale: float = 3.0
    #: Online probe names (never objects — cells must stay picklable).
    probes: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)


def build_runspec(trial: TrialSpec) -> RunSpec:
    """Materialise a cell into a runnable :class:`RunSpec`.

    Called in the worker that executes the trial — this is where the
    named adversary becomes an object.
    """
    return RunSpec(
        algorithm=trial.algorithm,
        n=trial.n,
        d=trial.d,
        f=trial.f,
        adversary=build_adversary(trial.adversary, trial.n, trial.f),
        p=trial.p,
        k=trial.k,
        epsilon=trial.epsilon,
        seed=trial.seed,
        input_scale=trial.input_scale,
        probes=trial.probes,
    )


@dataclass(frozen=True)
class SweepGrid:
    """Declarative cross product of experiment axes.

    ``sizes`` lists explicit ``n`` values; empty means "the smallest
    legal ``n`` for each ``(algorithm, d, f)`` cell".  Cells below the
    resilience floor are skipped (counted, not errors), so a grid can
    mix algorithms with different bounds without hand-tuning ``n``.
    Skips are counted at *trial* granularity — a skipped axis slice
    contributes the number of trials it would have expanded to, so
    ``len(trials) + skipped`` always equals the full cross product.
    """

    algorithms: tuple[str, ...] = ("algo",)
    dimensions: tuple[int, ...] = (2,)
    faults: tuple[int, ...] = (1,)
    sizes: tuple[int, ...] = ()
    adversaries: tuple[str, ...] = ("none",)
    reps: int = 1
    base_seed: int = 0
    p: PNorm = 2
    k: int = 1
    epsilon: float = 5e-2
    input_scale: float = 3.0
    #: Online probe names enabled for every trial ("all" expands).
    #: Violation counts aggregate into the sweep summary but stay out of
    #: the identity digest — probes observe, they never decide.
    probes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        from ..obs.probes import PROBE_NAMES

        for algorithm in self.algorithms:
            if algorithm not in ALGORITHMS:
                raise ValueError(
                    f"unknown algorithm {algorithm!r}; choices {ALGORITHMS}"
                )
        for name in self.adversaries:
            if name not in ADVERSARIES:
                raise ValueError(
                    f"unknown adversary {name!r}; choices {sorted(ADVERSARIES)}"
                )
        for name in self.probes:
            if name not in PROBE_NAMES + ("all",):
                raise ValueError(
                    f"unknown probe {name!r}; choices {PROBE_NAMES + ('all',)}"
                )
        if self.reps < 1:
            raise ValueError(f"reps must be >= 1, got {self.reps}")

    def to_dict(self) -> dict[str, Any]:
        # JSON-native lists, so a saved sweep's grid compares equal to a
        # freshly built one after a load round-trip.
        return {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in asdict(self).items()
        }

    def trials(self) -> tuple[tuple[TrialSpec, ...], int]:
        """Expand to ``(cells, skipped_trials)`` in deterministic grid
        order; ``skipped_trials`` counts the trials each skipped slice
        would have expanded to (so cells + skipped = full cross product).
        """
        cells: list[TrialSpec] = []
        skipped = 0
        trials_per_n = len(self.adversaries) * self.reps
        index = 0
        for algorithm in self.algorithms:
            for d in self.dimensions:
                if algorithm == "scalar" and d != 1:
                    skipped += (len(self.faults)
                                * (len(self.sizes) or 1) * trials_per_n)
                    continue
                for f in self.faults:
                    floor = min_trial_size(algorithm, d, f, self.k)
                    sizes = self.sizes or (floor,)
                    for n in sizes:
                        if n < floor:
                            skipped += trials_per_n
                            continue
                        for adversary in self.adversaries:
                            for rep in range(self.reps):
                                seed = derive_trial_seed(
                                    self.base_seed, algorithm, n, d, f,
                                    adversary, rep,
                                )
                                cells.append(TrialSpec(
                                    index=index,
                                    algorithm=algorithm,
                                    n=n,
                                    d=d,
                                    f=f,
                                    adversary=adversary,
                                    rep=rep,
                                    seed=seed,
                                    p=self.p,
                                    k=self.k,
                                    epsilon=self.epsilon,
                                    input_scale=self.input_scale,
                                    probes=self.probes,
                                ))
                                index += 1
        return tuple(cells), skipped
