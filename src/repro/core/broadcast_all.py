"""Step 1 shared by every synchronous algorithm: all-to-all Byzantine
broadcast of the inputs.

Both the exact BVC baseline and the paper's ALGO start identically
("Step 1: each process i performs a Byzantine broadcast of its
d-dimensional input v_i ... all non-faulty processes obtain identical set
S").  :class:`BroadcastAllProcess` runs ``n`` parallel broadcast instances
— one per commander — over either OM(f)/EIG (unauthenticated, the paper's
reference [12]) or Dolev–Strong (authenticated, polynomial for larger f),
then hands the agreed multiset ``S`` to a subclass hook.

Detectably-faulty senders (broadcast resolved to the protocol default) are
replaced by a deterministic substitute — the first successfully broadcast
value — so the multiset always has ``n`` entries, as the paper's Step 2
assumes; every correct process substitutes identically, preserving
agreement.  A substituted value is just "an arbitrary point chosen by the
faulty process", which the algorithms must tolerate anyway.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Any, Optional

import numpy as np

from ..system.broadcast.interface import make_broadcast
from ..system.crypto import SignatureScheme
from ..system.process import Context, Inbox, SyncProcess

__all__ = ["BroadcastAllProcess", "broadcast_tag"]


def broadcast_tag(instance: int) -> str:
    """Network tag for broadcast instance ``instance`` (commander id)."""
    return f"bc:{instance}"


class BroadcastAllProcess(SyncProcess):
    """Synchronous process template: broadcast all inputs, then decide.

    Parameters
    ----------
    n, f, pid:
        System parameters and this process's id.
    input_value:
        This process's ``d``-dimensional input vector.
    broadcast:
        ``"eig"`` (OM(f), needs ``n >= 3f+1``, exponential in f),
        ``"dolev-strong"`` (authenticated, needs a shared
        :class:`SignatureScheme`), or ``"atomic"`` — the paper's
        footnote-3 model where the network itself is a reliable broadcast
        channel, making Step 1 a single round and lifting the
        ``n >= 3f+1`` requirement entirely.  (This knob was historically
        named ``transport``; that name now selects the execution backend
        on :class:`~repro.core.runspec.RunSpec`.)
    scheme:
        Signature scheme, required for the authenticated broadcast.
    """

    def __init__(
        self,
        n: int,
        f: int,
        pid: int,
        input_value: np.ndarray,
        *,
        broadcast: str = "eig",
        scheme: Optional[SignatureScheme] = None,
    ):
        self.n, self.f, self.pid = n, f, pid
        self.input_value = np.asarray(input_value, dtype=float).ravel()
        self.d = self.input_value.size
        if broadcast not in ("eig", "dolev-strong", "atomic"):
            raise ValueError(f"unknown broadcast {broadcast!r}")
        if broadcast == "dolev-strong" and scheme is None:
            raise ValueError("dolev-strong broadcast requires a SignatureScheme")
        self.broadcast = broadcast
        if broadcast == "atomic":
            # atomic channel: one slot per sender, filled on delivery
            self.instances: dict[int, Any] = {}
            self._atomic_values: dict[int, Any] = {}
        else:
            self.instances = {
                c: make_broadcast(
                    broadcast, n, f, c, pid,
                    scheme=scheme if broadcast == "dolev-strong" else None,
                )
                for c in range(n)
            }
        self.multiset: Optional[list[Any]] = None
        self.defaulted_senders: list[int] = []

    # ------------------------------------------------------------- template
    def on_round(self, ctx: Context, round: int, inbox: Inbox) -> None:
        if self.broadcast == "atomic":
            self._on_round_atomic(ctx, round, inbox)
            return
        # 1. feed deliveries into the per-commander broadcast machines
        for src, entries in inbox.items():
            for tag, payload in entries:
                if not tag.startswith("bc:"):
                    continue
                try:
                    instance = int(tag.split(":", 1)[1])
                except ValueError:
                    continue
                if 0 <= instance < self.n:
                    self.instances[instance].receive(round, src, payload)

        # 2. emit this round's protocol messages for every instance
        if round <= self.f:
            value = tuple(float(x) for x in self.input_value)
            for instance, state in self.instances.items():
                own = value if instance == self.pid else None
                for dst, payload in state.messages_for_round(round, own):
                    ctx.send(dst, broadcast_tag(instance), payload, round=round)
            return

        # 3. final round: extract the agreed multiset and decide
        if round == self.f + 1 and self.multiset is None:
            raw = [self.instances[c].decide() for c in range(self.n)]
            self.multiset = self._resolve_defaults(raw)
            S = np.array(self.multiset, dtype=float)
            self.decide_from_multiset(ctx, S)

    def _on_round_atomic(self, ctx: Context, round: int, inbox: Inbox) -> None:
        """Footnote-3 path: the channel is itself a reliable broadcast.

        Round 0: atomically broadcast the input.  Round 1: every process
        has received the identical per-sender values (equivocation is
        physically impossible); missing/malformed senders are defaulted.
        """
        if round == 0:
            value = tuple(float(x) for x in self.input_value)
            ctx.atomic_broadcast("abc", value, round=0)
            return
        if round == 1 and self.multiset is None:
            for src, entries in inbox.items():
                for tag, payload in entries:
                    if tag == "abc" and src not in self._atomic_values:
                        self._atomic_values[src] = payload
            raw = [self._atomic_values.get(c) for c in range(self.n)]
            self.multiset = self._resolve_defaults(raw)
            S = np.array(self.multiset, dtype=float)
            self.decide_from_multiset(ctx, S)

    def _resolve_defaults(self, raw: list[Any]) -> list[tuple[float, ...]]:
        """Replace default (provably-faulty) entries deterministically."""
        valid = [
            v
            for v in raw
            if isinstance(v, tuple)
            and len(v) == self.d
            and all(isinstance(x, float) and np.isfinite(x) for x in v)
        ]
        if not valid:
            raise RuntimeError(
                "all broadcasts resolved to the default — more than f faults?"
            )
        substitute = valid[0]
        out = []
        for sender, v in enumerate(raw):
            if (
                isinstance(v, tuple)
                and len(v) == self.d
                and all(isinstance(x, float) and np.isfinite(x) for x in v)
            ):
                out.append(v)
            else:
                self.defaulted_senders.append(sender)
                out.append(substitute)
        return out

    # ------------------------------------------------------------------ hook
    @abstractmethod
    def decide_from_multiset(self, ctx: Context, S: np.ndarray) -> None:
        """Step 2: decide from the agreed ``(n, d)`` multiset ``S``.

        Called exactly once, at round ``f + 1``, with the same ``S`` at
        every correct process (broadcast agreement).  Implementations call
        ``ctx.decide(...)``.
        """

    @property
    def total_rounds(self) -> int:
        """Scheduler rounds this process needs (sends 0..f, decide at f+1;
        the atomic channel needs exactly 2 regardless of f)."""
        if self.broadcast == "atomic":
            return 2
        return self.f + 2
