"""The paper's contribution: relaxed Byzantine vector consensus.

Problem specifications and checkers, the complete bound catalogue
(Theorems 1–6, Table 1, Conjectures 1–4), the synchronous algorithms
(exact BVC, ALGO, k-relaxed, scalar), the asynchronous Relaxed Verified
Averaging, the executable impossibility constructions, and high-level
runners.
"""

from .algo_sync import AlgoProcess, algo_decision
from .averaging import (
    VerifiedAveragingProcess,
    contraction_factor,
    rounds_for_epsilon,
)
from .broadcast_all import BroadcastAllProcess, broadcast_tag
from .convex_consensus import (
    ConvexConsensusProcess,
    check_convex_consensus,
    convex_consensus_decision,
)
from .exact_bvc import ExactBVCProcess, exact_bvc_decision
from .iterative import IterativeBVCProcess, iterative_update
from .krelaxed import KRelaxedProcess, k_relaxed_decision
from .lemma10 import NaiveAveragingProcess, RingResult, lemma10_demo, run_ring
from .lower_bounds import (
    psi_i_separation,
    theorem3_inputs,
    theorem3_verdict,
    theorem4_inputs,
    theorem4_verdict,
    theorem5_inputs,
    theorem5_verdict,
    theorem6_inputs,
    theorem6_verdict,
)
from .problems import (
    ApproximateBVC,
    DeltaPApproximateBVC,
    DeltaPExactBVC,
    ExactBVC,
    KRelaxedApproximateBVC,
    KRelaxedExactBVC,
    ProblemSpec,
    ValidityReport,
    agreement_diameter,
)
from .runner import (
    ConsensusOutcome,
    run,
    run_algo,
    run_averaging,
    run_exact_bvc,
    run_iterative,
    run_k_relaxed,
    run_scalar,
)
from .runspec import ALGORITHMS, RunSpec
from .scalar import (
    ScalarConsensusProcess,
    scalar_decision,
    scalar_decision_vector,
    trimmed_multiset,
)
from . import bounds

__all__ = [
    "ALGORITHMS",
    "AlgoProcess",
    "ApproximateBVC",
    "BroadcastAllProcess",
    "ConsensusOutcome",
    "ConvexConsensusProcess",
    "DeltaPApproximateBVC",
    "DeltaPExactBVC",
    "ExactBVC",
    "ExactBVCProcess",
    "IterativeBVCProcess",
    "KRelaxedApproximateBVC",
    "KRelaxedExactBVC",
    "KRelaxedProcess",
    "NaiveAveragingProcess",
    "ProblemSpec",
    "RingResult",
    "RunSpec",
    "ScalarConsensusProcess",
    "ValidityReport",
    "VerifiedAveragingProcess",
    "agreement_diameter",
    "algo_decision",
    "bounds",
    "broadcast_tag",
    "check_convex_consensus",
    "contraction_factor",
    "convex_consensus_decision",
    "exact_bvc_decision",
    "iterative_update",
    "k_relaxed_decision",
    "lemma10_demo",
    "psi_i_separation",
    "run",
    "run_ring",
    "rounds_for_epsilon",
    "run_algo",
    "run_averaging",
    "run_exact_bvc",
    "run_iterative",
    "run_k_relaxed",
    "run_scalar",
    "scalar_decision",
    "scalar_decision_vector",
    "theorem3_inputs",
    "theorem3_verdict",
    "theorem4_inputs",
    "theorem4_verdict",
    "theorem5_inputs",
    "theorem5_verdict",
    "theorem6_inputs",
    "theorem6_verdict",
    "trimmed_multiset",
]
