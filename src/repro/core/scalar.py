"""Exact scalar Byzantine consensus (the d = 1 base case, and the engine
behind 1-relaxed consensus).

§5.3: "When k = 1, the k-relaxed consensus can be achieved using Byzantine
scalar consensus ... the input of each process is the i-th coordinate of
its input vector."  The classical tight bound is ``n >= 3f + 1`` ([7]).

Decision rule on the agreed multiset (after all-to-all Byzantine
broadcast): sort the ``n`` values, discard the ``f`` smallest and ``f``
largest, and take the midpoint of the survivors' range.

* *Agreement*: every correct process applies the same deterministic rule
  to the identical broadcast multiset.
* *Validity*: at most ``f`` of the ``n`` values are faulty; after trimming
  ``f`` from each end, every survivor is bracketed by honest values, so
  the midpoint lies in ``[min honest, max honest]`` — the convex hull of
  the honest scalar inputs.  Nonempty because ``n - 2f >= f + 1 >= 1``
  when ``n >= 3f + 1``.
"""

from __future__ import annotations

import numpy as np

from ..system.process import Context
from .bounds import trim_min_size
from .broadcast_all import BroadcastAllProcess

__all__ = ["scalar_decision", "trimmed_multiset", "ScalarConsensusProcess"]


def trimmed_multiset(values: np.ndarray, f: int) -> np.ndarray:
    """Sort and discard the ``f`` smallest and ``f`` largest entries."""
    vals = np.sort(np.asarray(values, dtype=float).ravel())
    n = vals.size
    if n < trim_min_size(f):
        raise ValueError(
            f"cannot trim f={f} from each end of {n} values "
            f"(need >= {trim_min_size(f)})"
        )
    return vals[f : n - f]


def scalar_decision(values: np.ndarray, f: int) -> float:
    """Midpoint of the f-trimmed range — the deterministic decision rule."""
    core = trimmed_multiset(values, f)
    return float((core[0] + core[-1]) / 2.0)


def scalar_decision_vector(S: np.ndarray, f: int) -> np.ndarray:
    """Coordinate-wise scalar decisions on an ``(n, d)`` multiset.

    This is exactly the §5.3 reduction that solves 1-relaxed BVC: the
    output's i-th coordinate is the scalar consensus on the i-th
    coordinates.
    """
    S = np.atleast_2d(np.asarray(S, dtype=float))
    return np.array([scalar_decision(S[:, j], f) for j in range(S.shape[1])])


class ScalarConsensusProcess(BroadcastAllProcess):
    """Full protocol: broadcast scalar inputs, decide the trimmed midpoint.

    Inputs are passed as 1-vectors; the decision is a 1-vector too, to
    keep the vector-consensus interfaces uniform.
    """

    def decide_from_multiset(self, ctx: Context, S: np.ndarray) -> None:
        ctx.decide(scalar_decision_vector(S, self.f))
