"""Lemma 10 (Appendix A), executable: input-dependent (δ,p)-consensus is
impossible with ``n <= 3f``.

The proof is the classic Fischer–Lynch–Merritt ring argument: take any
3-process algorithm for ``n = 3, f = 1`` and wire *six* copies of its
process code into a ring

    ... — r1 — p0 — q0 — r0 — p1 — q1 — (r1) ...

where ``p0, q0, r0`` start with input ``0^d`` and ``p1, q1, r1`` with
``1^d``.  Every node runs the unmodified 3-process code; the ring routes
its "to q"/"to r" messages to the adjacent copy of that role.  Then:

* to the pair ``(p0, q0)``, the execution is indistinguishable from a
  3-process run where ``r`` is Byzantine and ``p, q`` both hold ``0^d``
  (scenario B) — with inputs all-0 the input-dependent δ is 0, so
  validity forces them to decide ``0^d``;
* symmetrically ``(p1, q1)`` must decide ``1^d`` (scenario B');
* but to the adjacent pair ``(p0, r1)`` the execution is also a
  3-process run where ``q`` is Byzantine (scenario C) — so agreement
  forces ``p0`` and ``r1`` to decide the *same* value.  Contradiction.

Because the argument quantifies over all algorithms, no simulation can
"prove" it for every algorithm — but it can *execute* it for any concrete
one: :func:`run_ring` builds the six-copy system for a supplied 3-process
protocol, and :func:`lemma10_demo` reports the decisions of ``p0`` and
``r1``, whose disagreement (for any protocol satisfying the two
scenario-B validity obligations) is exactly the contradiction.

The module ships :class:`NaiveAveragingProcess` — a plausible 3-process
"consensus" that satisfies scenario-B validity — so the violation is
observable out of the box.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..system.process import Context, Inbox, SyncProcess

__all__ = ["NaiveAveragingProcess", "RingResult", "run_ring", "lemma10_demo"]

# Role indices inside the 3-process protocol.
P, Q, R = 0, 1, 2

#: Ring layout: (role, copy) per node, adjacency = consecutive (cyclic).
RING = [(R, 1), (P, 0), (Q, 0), (R, 0), (P, 1), (Q, 1)]


class NaiveAveragingProcess(SyncProcess):
    """A natural — and by Lemma 10 necessarily broken — 3-process protocol.

    Round 0: broadcast the input.  Round 1: decide the average of the
    three values seen (own + two neighbours; a missing value is replaced
    by one's own).  It satisfies the scenario-B validity obligation (all
    inputs equal ⇒ decide that input), which is all the ring argument
    needs to exhibit the agreement violation.
    """

    def __init__(self, input_value: np.ndarray):
        self.input_value = np.asarray(input_value, dtype=float).ravel()

    def on_round(self, ctx: Context, round: int, inbox: Inbox) -> None:
        if round == 0:
            ctx.broadcast("val", tuple(self.input_value), round=0)
            return
        values = [self.input_value]
        for src in sorted(inbox):
            for tag, payload in inbox[src]:
                if tag == "val" and src != ctx.pid:
                    values.append(np.asarray(payload, dtype=float))
        while len(values) < 3:
            values.append(self.input_value)
        ctx.decide(np.mean(values[:3], axis=0))


@dataclass
class RingResult:
    """Decisions of all six ring nodes, keyed by (role, copy)."""

    decisions: dict[tuple[int, int], np.ndarray]

    @property
    def p0(self) -> np.ndarray:
        return self.decisions[(P, 0)]

    @property
    def r1(self) -> np.ndarray:
        return self.decisions[(R, 1)]

    def agreement_violation(self) -> float:
        """``‖p0 − r1‖∞`` — positive means scenario C's agreement breaks."""
        return float(np.max(np.abs(self.p0 - self.r1)))


def run_ring(
    protocol_factory: Callable[[np.ndarray], SyncProcess],
    d: int = 1,
    *,
    zero: Optional[np.ndarray] = None,
    one: Optional[np.ndarray] = None,
    max_rounds: int = 64,
) -> RingResult:
    """Execute six copies of a 3-process protocol on the Lemma-10 ring.

    Each node runs ``protocol_factory(input)`` believing it is role
    ``p``/``q``/``r`` of a 3-process system; the ring remaps each
    role-addressed message to the adjacent node carrying that role.
    """
    zero = np.zeros(d) if zero is None else np.asarray(zero, dtype=float)
    one = np.ones(d) if one is None else np.asarray(one, dtype=float)

    nodes: list[SyncProcess] = []
    ctxs: list[Context] = []
    for role, copy in RING:
        value = one if copy == 1 else zero
        nodes.append(protocol_factory(value))
        ctx = Context(role, 3, 1, np.random.default_rng(0))
        ctxs.append(ctx)

    n_ring = len(RING)

    def neighbour_with_role(i: int, role: int) -> Optional[int]:
        for j in (i - 1, i + 1):
            if RING[j % n_ring][0] == role:
                return j % n_ring
        return None

    inboxes: list[dict[int, list]] = [dict() for _ in range(n_ring)]
    for _ in range(max_rounds):
        round_msgs: list[tuple[int, int, str, object]] = []
        for i, (role, _copy) in enumerate(RING):
            ctx = ctxs[i]
            if ctx.decided:
                continue
            ctx.outbox = []
            nodes[i].on_round(ctx, _current_round(ctx), inboxes[i])
            for msg in ctx.outbox:
                if msg.dst == role:
                    round_msgs.append((i, i, msg.tag, msg.payload))
                    continue
                tgt = neighbour_with_role(i, msg.dst)
                if tgt is not None:
                    round_msgs.append((i, tgt, msg.tag, msg.payload))
            ctx._round = _current_round(ctx) + 1  # type: ignore[attr-defined]
        inboxes = [dict() for _ in range(n_ring)]
        for src_i, dst_i, tag, payload in round_msgs:
            src_role = RING[src_i][0]
            inboxes[dst_i].setdefault(src_role, []).append((tag, payload))
        if all(ctx.decided for ctx in ctxs):
            break

    decisions = {
        RING[i]: np.asarray(ctxs[i].decision, dtype=float)
        for i in range(n_ring)
        if ctxs[i].decided
    }
    return RingResult(decisions)


def _current_round(ctx: Context) -> int:
    return getattr(ctx, "_round", 0)


def lemma10_demo(d: int = 2) -> RingResult:
    """Run the ring with the naive protocol and return the contradiction.

    In the returned result, scenario-B indistinguishability forces
    ``p0 -> 0^d`` and ``r1 -> 1^d`` for any protocol meeting its validity
    obligations; scenario C demands they agree.  The naive protocol's
    :meth:`RingResult.agreement_violation` is therefore strictly positive
    — the executable content of Lemma 10.
    """
    return run_ring(NaiveAveragingProcess, d=d)
