"""Algorithm **ALGO** — synchronous (δ,p)-relaxed exact BVC with
input-dependent δ (paper §9).

The paper's two steps:

* *Step 1*: each process Byzantine-broadcasts its ``d``-dimensional input;
  all non-faulty processes obtain the identical multiset ``S``
  (:class:`~repro.core.broadcast_all.BroadcastAllProcess`).
* *Step 2*: "Each process determines the smallest value δ such that
  ``Γ_{(δ,2)}(S) = ∩_{T⊆S,|T|=|S|-f} H_{(δ,2)}(T)`` is non-empty, and for
  this value of δ, the process deterministically chooses a point in
  ``Γ_{(δ,2)}(S)`` as its output."

Step 2 is :func:`repro.geometry.minimax.delta_star`: the certified min-max
solver returns both ``δ*(S)`` and a deterministic minimiser.  The paper's
§9 results bound this δ* by input-dependent quantities (Table 1 /
:mod:`repro.core.bounds`); our benchmarks verify the measured ``δ*``
against those bounds on every run.

Generalised beyond the paper's L2 presentation to any ``p >= 1`` (the
paper's §9.3 transfers the bounds to ``p >= 2`` via Theorem 14; the
algorithm itself is norm-generic).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..geometry.minimax import DeltaStarResult, delta_star
from ..obs.causal import note_decision
from ..obs.tracer import trace_event
from ..system.crypto import SignatureScheme
from ..system.process import Context
from .broadcast_all import BroadcastAllProcess

__all__ = ["AlgoProcess", "algo_decision"]

PNorm = Union[float, int]


def algo_decision(S: np.ndarray, f: int, p: PNorm = 2) -> DeltaStarResult:
    """Step 2 of ALGO: smallest feasible δ and a deterministic point.

    Returns the full :class:`~repro.geometry.minimax.DeltaStarResult` so
    callers can inspect the achieved δ against the paper's bounds.
    """
    return delta_star(np.atleast_2d(np.asarray(S, dtype=float)), f, p=p)


class AlgoProcess(BroadcastAllProcess):
    """Full synchronous ALGO protocol process.

    After the run, :attr:`delta_used` holds the δ*(S) this process
    computed (identical at all correct processes), and :attr:`multiset`
    (from the base class) holds the agreed ``S``.
    """

    def __init__(
        self,
        n: int,
        f: int,
        pid: int,
        input_value: np.ndarray,
        *,
        p: PNorm = 2,
        broadcast: str = "eig",
        scheme: Optional[SignatureScheme] = None,
    ):
        super().__init__(n, f, pid, input_value, broadcast=broadcast, scheme=scheme)
        self.p = p
        self.delta_used: Optional[float] = None
        self.delta_result: Optional[DeltaStarResult] = None

    def decide_from_multiset(self, ctx: Context, S: np.ndarray) -> None:
        result = algo_decision(S, self.f, self.p)
        self.delta_result = result
        self.delta_used = result.value
        ctx.decide(result.point)
        note_decision(self.pid, delta_used=result.value,
                      multiset_size=int(S.shape[0]))
        trace_event("core.algo.decide", pid=self.pid,
                    delta_used=result.value)
