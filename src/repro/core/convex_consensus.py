"""Byzantine Convex Hull Consensus (Tseng & Vaidya — the paper's [15, 16]).

The paper's §2: "A more generalized problem called Convex Hull Consensus
... The tight bounds on number of processes n is identical to the vector
consensus case."  Instead of one vector, the processes agree on an entire
convex *polytope* that is contained in the convex hull of the honest
inputs — the largest answer any of them can defend.

Synchronous algorithm (the natural exact counterpart of [15]'s
asynchronous one, and the set-valued sibling of this repo's exact BVC):

* Step 1: all-to-all Byzantine broadcast of the inputs — all correct
  processes hold the identical multiset ``S``;
* Step 2: output the polytope ``Γ(S) = ∩_{|T| = n-f} H(T)`` in canonical
  vertex representation (:func:`repro.geometry.polytope.gamma_polytope`).

Correctness:

* *Agreement* — identical ``S`` and a deterministic, canonicalised
  polytope computation give the identical output object;
* *Validity* — ``Γ(S) ⊆ H(T*)`` for the honest subset ``T*``, so the
  whole output polytope lies in the hull of the honest inputs;
* *Optimality flavour* — ``Γ(S)`` contains every point that is provably
  in the honest hull given ``S``, so no correct algorithm can output a
  strictly larger set (this is the optimality [15] proves for its
  asynchronous output).

Requires ``n >= max(3f+1, (d+1)f+1)``, exactly like exact BVC (the [16]
bound the paper quotes).
"""

from __future__ import annotations


import numpy as np

from ..geometry.polytope import Polytope, gamma_polytope
from ..system.process import Context
from .bounds import tverberg_min_n
from .broadcast_all import BroadcastAllProcess

__all__ = ["ConvexConsensusProcess", "convex_consensus_decision",
           "check_convex_consensus"]


def convex_consensus_decision(S: np.ndarray, f: int) -> Polytope:
    """Step 2: the canonical ``Γ(S)`` polytope.

    Raises
    ------
    ValueError
        When ``Γ(S)`` is empty (below the ``(d+1)f+1`` bound).
    """
    poly = gamma_polytope(np.atleast_2d(np.asarray(S, dtype=float)), f)
    if poly is None:
        n, d = np.atleast_2d(S).shape
        raise ValueError(
            f"Γ(S) is empty for n={n}, d={d}, f={f}; convex hull consensus "
            f"requires n >= (d+1)f+1 = {tverberg_min_n(d, f)}"
        )
    return poly


class ConvexConsensusProcess(BroadcastAllProcess):
    """Full synchronous convex-hull-consensus protocol process.

    The decision recorded on the context is the :class:`Polytope`.
    """

    def decide_from_multiset(self, ctx: Context, S: np.ndarray) -> None:
        ctx.decide(convex_consensus_decision(S, self.f))


def check_convex_consensus(
    honest_inputs: np.ndarray,
    decisions: dict[int, Polytope],
    *,
    tol: float = 1e-6,
) -> tuple[bool, bool]:
    """(agreement_ok, validity_ok) for a convex-consensus outcome.

    Agreement: all decided polytopes are geometrically equal.  Validity:
    every polytope is contained in the hull of the honest inputs.
    """
    polys = list(decisions.values())
    if not polys:
        return False, False
    first = polys[0]
    agreement = all(first.equals(p, tol) for p in polys[1:])
    honest = np.atleast_2d(np.asarray(honest_inputs, dtype=float))
    validity = all(p.is_subset_of_hull(honest, tol) for p in polys)
    return agreement, validity
