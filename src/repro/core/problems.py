"""Problem specifications and correctness checkers.

The paper defines six consensus problems (Definitions 7, 8, 10, 11 plus
the unrelaxed originals of §4).  Each is represented by a spec object that
knows how to *check* an outcome — agreement, the problem's validity
condition, termination — against the ground-truth honest inputs.  The
checkers are what every integration test and benchmark asserts on, so they
are written directly from the definitions:

* **Agreement** (exact problems): identical decision vectors at all
  non-faulty processes.
* **ε-Agreement** (approximate problems): for every coordinate ``l``, the
  ``l``-th elements of any two non-faulty decisions differ by at most
  ``ε`` (i.e. ``L_inf`` distance at most ``ε`` — footnotes 1–2 of the
  paper).
* **Validity** — membership of every non-faulty decision in ``H(N)``,
  ``H_k(N)`` or ``H_{(δ,p)}(N)`` where ``N`` is the multiset of non-faulty
  inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Union

import numpy as np

from ..geometry.distance import distance_to_hull
from ..geometry.norms import validate_p
from ..geometry.relaxed import DeltaPHull, KRelaxedHull

__all__ = [
    "ValidityReport",
    "ProblemSpec",
    "ExactBVC",
    "ApproximateBVC",
    "KRelaxedExactBVC",
    "KRelaxedApproximateBVC",
    "DeltaPExactBVC",
    "DeltaPApproximateBVC",
    "agreement_diameter",
]

PNorm = Union[float, int]


def agreement_diameter(decisions: Mapping[int, np.ndarray]) -> float:
    """Largest L_inf distance between any two decision vectors.

    Zero means exact agreement; ``<= ε`` means ε-agreement under the
    paper's coordinate-wise definition.
    """
    vals = [np.asarray(v, dtype=float) for v in decisions.values()]
    if len(vals) <= 1:
        return 0.0
    arr = np.stack(vals)
    return float(np.max(np.abs(arr[:, None, :] - arr[None, :, :])))


@dataclass
class ValidityReport:
    """Checker verdict for one execution.

    ``violations`` maps pid -> quantitative violation (distance beyond the
    allowed set), for decisions that failed validity.
    """

    agreement_ok: bool
    validity_ok: bool
    termination_ok: bool
    agreement_diameter: float
    violations: dict[int, float] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """All three conditions hold."""
        return self.agreement_ok and self.validity_ok and self.termination_ok


@dataclass(frozen=True)
class ProblemSpec:
    """Base problem: ``d``-dimensional inputs, up to ``f`` Byzantine."""

    d: int
    f: int

    def __post_init__(self) -> None:
        if self.d < 1:
            raise ValueError(f"dimension must be >= 1, got {self.d}")
        if self.f < 0:
            raise ValueError(f"f must be >= 0, got {self.f}")

    # -- per-problem hooks ---------------------------------------------------
    def _agreement_ok(self, decisions: Mapping[int, np.ndarray]) -> tuple[bool, float]:
        diam = agreement_diameter(decisions)
        return diam <= 1e-9, diam

    def _decision_violation(
        self, decision: np.ndarray, honest_inputs: np.ndarray
    ) -> float:
        """Distance by which a decision exceeds the allowed validity set."""
        raise NotImplementedError

    # -- entry point -----------------------------------------------------------
    def check(
        self,
        honest_inputs: np.ndarray,
        decisions: Mapping[int, np.ndarray],
        *,
        terminated: bool = True,
        tol: float = 1e-7,
    ) -> ValidityReport:
        """Validate an execution outcome.

        Parameters
        ----------
        honest_inputs:
            ``(m, d)`` inputs of the non-faulty processes (the multiset
            ``N``).
        decisions:
            pid -> decision vector, for the non-faulty processes.
        terminated:
            Whether every non-faulty process terminated (from the run
            result).
        tol:
            Numerical slack for membership tests.
        """
        honest_inputs = np.atleast_2d(np.asarray(honest_inputs, dtype=float))
        if honest_inputs.shape[1] != self.d:
            raise ValueError(
                f"inputs have dimension {honest_inputs.shape[1]}, spec says {self.d}"
            )
        decs = {pid: np.asarray(v, dtype=float).ravel() for pid, v in decisions.items()}
        for pid, v in decs.items():
            if v.size != self.d:
                raise ValueError(f"decision of {pid} has dimension {v.size}")
        agreement_ok, diam = self._agreement_ok(decs)
        violations = {}
        for pid, v in decs.items():
            viol = self._decision_violation(v, honest_inputs)
            if viol > tol:
                violations[pid] = viol
        return ValidityReport(
            agreement_ok=agreement_ok,
            validity_ok=not violations,
            termination_ok=bool(terminated) and len(decs) > 0,
            agreement_diameter=diam,
            violations=violations,
        )


@dataclass(frozen=True)
class ExactBVC(ProblemSpec):
    """Exact Byzantine vector consensus (§4): agreement + hull validity."""

    def _decision_violation(
        self, decision: np.ndarray, honest_inputs: np.ndarray
    ) -> float:
        return distance_to_hull(honest_inputs, decision, math.inf).distance


@dataclass(frozen=True)
class ApproximateBVC(ProblemSpec):
    """Approximate BVC (§4): ε-agreement + hull validity."""

    epsilon: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")

    def _agreement_ok(
        self, decisions: Mapping[int, np.ndarray]
    ) -> tuple[bool, float]:
        diam = agreement_diameter(decisions)
        return diam <= self.epsilon + 1e-12, diam

    def _decision_violation(
        self, decision: np.ndarray, honest_inputs: np.ndarray
    ) -> float:
        return distance_to_hull(honest_inputs, decision, math.inf).distance


@dataclass(frozen=True)
class KRelaxedExactBVC(ProblemSpec):
    """k-relaxed exact BVC (Definition 7): decision in ``H_k(N)``."""

    k: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 1 <= self.k <= self.d:
            raise ValueError(f"need 1 <= k <= d={self.d}, got k={self.k}")

    def _decision_violation(
        self, decision: np.ndarray, honest_inputs: np.ndarray
    ) -> float:
        return KRelaxedHull(honest_inputs, self.k).violation(decision, math.inf)


@dataclass(frozen=True)
class KRelaxedApproximateBVC(KRelaxedExactBVC):
    """k-relaxed approximate BVC (Definition 8)."""

    epsilon: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")

    def _agreement_ok(
        self, decisions: Mapping[int, np.ndarray]
    ) -> tuple[bool, float]:
        diam = agreement_diameter(decisions)
        return diam <= self.epsilon + 1e-12, diam


@dataclass(frozen=True)
class DeltaPExactBVC(ProblemSpec):
    """(δ,p)-relaxed exact BVC (Definition 10): decision within L_p
    distance δ of ``H(N)``.

    ``delta`` may be a constant, or — for the input-dependent setting of
    §9 — computed by the caller from the honest inputs before checking.
    """

    delta: float = 0.0
    p: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delta < 0:
            raise ValueError("delta must be >= 0")
        validate_p(self.p)

    def _decision_violation(
        self, decision: np.ndarray, honest_inputs: np.ndarray
    ) -> float:
        return DeltaPHull(honest_inputs, self.delta, self.p).violation(decision)


@dataclass(frozen=True)
class DeltaPApproximateBVC(DeltaPExactBVC):
    """(δ,p)-relaxed approximate BVC (Definition 11)."""

    epsilon: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epsilon <= 0:
            raise ValueError("epsilon must be > 0")

    def _agreement_ok(
        self, decisions: Mapping[int, np.ndarray]
    ) -> tuple[bool, float]:
        diam = agreement_diameter(decisions)
        return diam <= self.epsilon + 1e-12, diam
