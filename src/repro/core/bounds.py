"""Every bound in the paper, as code.

This module is the quantitative heart of the reproduction: Theorems 1–6
(tight process-count bounds), the Table 1 upper bounds on the achievable
input-dependent δ (Theorems 9, 12, 14, 15), and Conjectures 1–4 — each as
a function the tests and benchmarks evaluate against measured behaviour.

Process-count bounds (necessary **and** sufficient):

===========================  ============================  ====================
Problem                      Synchronous (exact)           Asynchronous (approx)
===========================  ============================  ====================
BVC (§4)                     ``max(3f+1, (d+1)f+1)``       ``(d+2)f+1``
k-relaxed, k = 1             ``3f+1``                      ``3f+1``
k-relaxed, 2 <= k <= d-1     ``(d+1)f+1``  (Thm 3)         ``(d+2)f+1`` (Thm 4)
k-relaxed, k = d             ``max(3f+1, (d+1)f+1)``       ``(d+2)f+1``
(δ,p), const 0 < δ < ∞       ``max(3f+1, (d+1)f+1)``(Thm5) ``(d+2)f+1`` (Thm 6)
(δ,p), δ = ∞                 trivial (n >= 2)              trivial (n >= 2)
(δ,p), input-dependent δ     ``3f+1`` (Lemma 10)           ``3f+1``
===========================  ============================  ====================

Input-dependent δ upper bounds (§9.2.3, Table 1), with ``e`` ranging over
edges between non-faulty inputs:

* f = 1, n = d+1 (Thm 9):  ``δ* < min(min_e ||e||_2 / 2, max_e ||e||_2 / (n-2))``
* f >= 2, n = (d+1)f (Thm 12):  ``δ* < max_e ||e||_2 / (d-1)``
* 3f+1 <= n < (d+1)f (Conjecture 1):  ``δ* < max_e ||e||_2 / (⌊n/f⌋ - 2)``
* L_p transfer (Thm 14):  ``δ*_p < d^(1/2 - 1/p) κ(n,f,d,2) max_e ||e||_p``
* asynchronous (Thm 15):  replace ``κ(n, ...)`` by ``κ(n - f, ...)``.
"""

from __future__ import annotations

import math
from typing import Any, Union

import numpy as np

from ..geometry.norms import max_edge_length, min_edge_length, validate_p

__all__ = [
    "tverberg_min_n",
    "trim_min_size",
    "rbc_min_n",
    "bracha_echo_quorum",
    "bracha_ready_quorum",
    "averaging_quorum",
    "exact_bvc_min_n",
    "approx_bvc_min_n",
    "k_relaxed_exact_min_n",
    "k_relaxed_approx_min_n",
    "delta_p_exact_min_n",
    "delta_p_approx_min_n",
    "input_dependent_min_n",
    "is_solvable",
    "kappa",
    "theorem9_bound",
    "theorem12_bound",
    "conjecture1_bound",
    "conjecture2_bound",
    "theorem14_bound",
    "conjecture3_bound",
    "theorem15_bound",
    "conjecture4_bound",
    "holder_transfer_factor",
]

PNorm = Union[float, int]


def _check_df(d: int, f: int) -> None:
    if d < 1:
        raise ValueError(f"dimension d must be >= 1, got {d}")
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")


# ---------------------------------------------------------------------------
# building-block predicates shared across core modules
# ---------------------------------------------------------------------------
#
# These are the *only* places the resilience arithmetic is written out.
# Algorithm modules must gate (and phrase error messages) through them —
# enforced statically by the RES001 lint rule (`python -m repro lint`).

def tverberg_min_n(d: int, f: int) -> int:
    """``(d+1)f + 1`` — smallest multiset size with ``Γ(S)`` guaranteed
    nonempty by Tverberg's theorem (§8), i.e. the liveness floor of the
    exact-BVC/convex-consensus decision step."""
    _check_df(d, f)
    return (d + 1) * f + 1


def trim_min_size(f: int) -> int:
    """``2f + 1`` — smallest multiset that survives trimming ``f`` values
    from each end (the scalar-consensus decision rule)."""
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    return 2 * f + 1


def rbc_min_n(f: int) -> int:
    """``3f + 1`` — resilience floor of Byzantine reliable broadcast
    (Bracha) and of the EIG/OM protocol; also the scalar floor every
    synchronous bound in the paper max'es against."""
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    return 3 * f + 1


def bracha_echo_quorum(n: int, f: int) -> int:
    """``⌈(n + f + 1) / 2⌉`` — ECHO quorum of Bracha reliable broadcast:
    any two such quorums intersect in a correct process, so two correct
    processes can never move to READY for different values."""
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    return math.ceil((n + f + 1) / 2)


def bracha_ready_quorum(f: int) -> int:
    """``2f + 1`` — READY quorum of Bracha reliable broadcast: at least
    ``f + 1`` correct READYs, enough to bootstrap every other correct
    process past the ``f + 1`` amplification threshold."""
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    return 2 * f + 1


def averaging_quorum(n: int, f: int) -> int:
    """``n - f`` — deliveries a correct process can await without losing
    liveness (the verified-averaging round quorum): up to ``f`` peers
    may never deliver."""
    if f < 0 or n < f:
        raise ValueError(f"need n >= f >= 0, got n={n}, f={f}")
    return n - f


# ---------------------------------------------------------------------------
# process-count bounds (Theorems 1-6)
# ---------------------------------------------------------------------------

def exact_bvc_min_n(d: int, f: int) -> int:
    """Theorem 1: tight n for exact BVC in a synchronous system."""
    _check_df(d, f)
    if f == 0:
        return 2
    return max(3 * f + 1, tverberg_min_n(d, f))


def approx_bvc_min_n(d: int, f: int) -> int:
    """Theorem 2: tight n for approximate BVC in an asynchronous system."""
    _check_df(d, f)
    if f == 0:
        return 2
    return max(3 * f + 1, (d + 2) * f + 1)


def k_relaxed_exact_min_n(d: int, f: int, k: int) -> int:
    """Theorem 3 + §5.3: tight n for k-relaxed exact BVC (synchronous)."""
    _check_df(d, f)
    if not 1 <= k <= d:
        raise ValueError(f"need 1 <= k <= d={d}, got k={k}")
    if f == 0:
        return 2
    if k == 1:
        return 3 * f + 1
    # 2 <= k <= d: relaxation does not help (Theorem 3); k = d is the
    # original problem (Theorem 1).
    return max(3 * f + 1, tverberg_min_n(d, f))


def k_relaxed_approx_min_n(d: int, f: int, k: int) -> int:
    """Theorem 4 + §5.3: tight n for k-relaxed approximate BVC (async)."""
    _check_df(d, f)
    if not 1 <= k <= d:
        raise ValueError(f"need 1 <= k <= d={d}, got k={k}")
    if f == 0:
        return 2
    if k == 1:
        return 3 * f + 1
    return max(3 * f + 1, (d + 2) * f + 1)


def delta_p_exact_min_n(d: int, f: int, delta: float, p: PNorm = 2) -> int:
    """Theorem 5 + §5.3: tight n for (δ,p)-relaxed exact BVC, constant δ.

    ``δ = 0`` is the original problem; ``0 < δ < ∞`` does not help
    (Theorem 5); ``δ = ∞`` makes validity vacuous, so any ``n >= 2``
    suffices (decide a constant).
    """
    _check_df(d, f)
    validate_p(p)
    if delta < 0:
        raise ValueError("delta must be >= 0")
    if f == 0 or math.isinf(delta):
        return 2
    return max(3 * f + 1, tverberg_min_n(d, f))


def delta_p_approx_min_n(d: int, f: int, delta: float, p: PNorm = 2) -> int:
    """Theorem 6 + §5.3: tight n for (δ,p)-relaxed approximate BVC."""
    _check_df(d, f)
    validate_p(p)
    if delta < 0:
        raise ValueError("delta must be >= 0")
    if f == 0 or math.isinf(delta):
        return 2
    return max(3 * f + 1, (d + 2) * f + 1)


def input_dependent_min_n(f: int) -> int:
    """Lemma 10: input-dependent (δ,p)-consensus is impossible with
    ``n <= 3f`` — so ``3f + 1`` is the floor (and §9 shows it can be
    enough, with δ growing as n shrinks toward it)."""
    if f < 0:
        raise ValueError(f"f must be >= 0, got {f}")
    if f == 0:
        return 2
    return 3 * f + 1


def is_solvable(problem: str, n: int, d: int, f: int, **kwargs: Any) -> bool:
    """Uniform feasibility predicate.

    ``problem`` is one of ``"exact"``, ``"approx"``, ``"k-exact"``,
    ``"k-approx"``, ``"delta-exact"``, ``"delta-approx"``,
    ``"input-dependent"``; extra parameters (``k``, ``delta``, ``p``) via
    kwargs.
    """
    table = {
        "exact": lambda: exact_bvc_min_n(d, f),
        "approx": lambda: approx_bvc_min_n(d, f),
        "k-exact": lambda: k_relaxed_exact_min_n(d, f, kwargs["k"]),
        "k-approx": lambda: k_relaxed_approx_min_n(d, f, kwargs["k"]),
        "delta-exact": lambda: delta_p_exact_min_n(
            d, f, kwargs["delta"], kwargs.get("p", 2)
        ),
        "delta-approx": lambda: delta_p_approx_min_n(
            d, f, kwargs["delta"], kwargs.get("p", 2)
        ),
        "input-dependent": lambda: input_dependent_min_n(f),
    }
    if problem not in table:
        raise ValueError(f"unknown problem {problem!r}")
    return n >= table[problem]()


# ---------------------------------------------------------------------------
# Table 1: input-dependent δ upper bounds
# ---------------------------------------------------------------------------

def kappa(n: int, f: int, d: int, p: PNorm = 2) -> float:
    """The coefficient ``κ(n, f, d, p)`` multiplying ``max_e ||e||_p``.

    Synchronous Table 1 values (with the Conjecture 1/2 extension for
    ``3f+1 <= n < (d+1)f``), transferred to ``p >= 2`` via Theorem 14's
    Hölder factor.  Defined for ``3f + 1 <= n <= (d+1)f`` (outside that
    range δ = 0 is achievable or the problem is unsolvable).
    """
    _check_df(d, f)
    p = validate_p(p)
    if f < 1:
        raise ValueError("kappa is defined for f >= 1")
    if n < 3 * f + 1:
        raise ValueError(f"unsolvable below 3f+1 (Lemma 10): n={n}, f={f}")
    if n > (d + 1) * f:
        return 0.0  # Γ(S) nonempty by Tverberg: δ* = 0
    if n == (d + 1) * f:
        base = 1.0 / (n - 2) if f == 1 else 1.0 / (d - 1)
    else:
        base = 1.0 / (math.floor(n / f) - 2)  # Conjecture 1
    return holder_transfer_factor(d, p) * base


def holder_transfer_factor(d: int, p: PNorm) -> float:
    """``d^(1/2 - 1/p)`` for ``p >= 2`` (Theorem 14); 1 for ``p = 2``."""
    p = validate_p(p)
    if p < 2:
        raise ValueError("Theorem 14 transfers bounds for p >= 2 only")
    inv_p = 0.0 if math.isinf(p) else 1.0 / p
    return float(d) ** (0.5 - inv_p)


def theorem9_bound(honest_inputs: np.ndarray, n: int) -> float:
    """Theorem 9 (f = 1, 4 <= n <= d+1):
    ``δ* < min(min-edge/2, max-edge/(n-2))`` under L2."""
    if n < 4:
        raise ValueError(f"Theorem 9 needs n >= 4, got {n}")
    min_e = min_edge_length(honest_inputs, 2)
    max_e = max_edge_length(honest_inputs, 2)
    return min(min_e / 2.0, max_e / (n - 2))


def theorem12_bound(honest_inputs: np.ndarray, d: int) -> float:
    """Theorem 12 (f >= 2, n = (d+1)f): ``δ* < max-edge/(d-1)`` under L2."""
    if d < 2:
        raise ValueError(f"Theorem 12 needs d >= 2 for a finite bound, got {d}")
    return max_edge_length(honest_inputs, 2) / (d - 1)


def conjecture1_bound(honest_inputs: np.ndarray, n: int, f: int) -> float:
    """Conjecture 1 (f >= 2, 3f+1 <= n < (d+1)f):
    ``δ* < max-edge/(⌊n/f⌋ - 2)`` under L2."""
    denom = math.floor(n / f) - 2
    if denom <= 0:
        raise ValueError(f"Conjecture 1 needs ⌊n/f⌋ > 2, got n={n}, f={f}")
    return max_edge_length(honest_inputs, 2) / denom


def conjecture2_bound(honest_inputs: np.ndarray, n: int, f: int) -> float:
    """Conjecture 2 (uniform, f >= 1, 3f+1 <= n <= (d+1)f): same formula
    as Conjecture 1 but claimed for all f."""
    return conjecture1_bound(honest_inputs, n, f)


def theorem14_bound(
    honest_inputs: np.ndarray, n: int, f: int, d: int, p: PNorm, kappa2: float
) -> float:
    """Theorem 14: from a κ(n,f,d,2) L2 bound to an L_p bound, p >= 2:
    ``δ*_p < d^(1/2-1/p) κ2 max-edge_p``."""
    return holder_transfer_factor(d, p) * kappa2 * max_edge_length(honest_inputs, p)


def conjecture3_bound(
    honest_inputs: np.ndarray, n: int, f: int, d: int, p: PNorm
) -> float:
    """Conjecture 3: ``δ*_p < d^(1/2-1/p)/(⌊n/f⌋-2) max-edge_p``."""
    denom = math.floor(n / f) - 2
    if denom <= 0:
        raise ValueError(f"Conjecture 3 needs ⌊n/f⌋ > 2, got n={n}, f={f}")
    return (
        holder_transfer_factor(d, p)
        * max_edge_length(honest_inputs, p)
        / denom
    )


def theorem15_bound(
    honest_inputs: np.ndarray, n: int, f: int, d: int, p: PNorm = 2
) -> float:
    """Theorem 15 (asynchronous): the synchronous κ at ``n - f`` processes:
    ``δ*_p < κ(n-f, f, d, p) max-edge_p``."""
    k = kappa(n - f, f, d, p)
    return k * max_edge_length(honest_inputs, p)


def conjecture4_bound(
    honest_inputs: np.ndarray, n: int, f: int, d: int, p: PNorm = 2
) -> float:
    """Conjecture 4 (async, 3f+1 <= n <= (d+2)f):
    ``δ*_p < d^(1/2-1/p)/(⌊n/f⌋-3) max-edge_p``."""
    denom = math.floor(n / f) - 3
    if denom <= 0:
        raise ValueError(f"Conjecture 4 needs ⌊n/f⌋ > 3, got n={n}, f={f}")
    return (
        holder_transfer_factor(d, p)
        * max_edge_length(honest_inputs, p)
        / denom
    )
