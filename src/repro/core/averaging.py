"""Relaxed Verified Averaging — asynchronous (δ,p)-relaxed approximate BVC
(paper §10), plus the δ = 0 baseline (Verified Averaging / safe-area
averaging in the Mendes–Herlihy regime ``n >= (d+2)f + 1``).

Structure (paper Definition 12, on top of Verified Averaging [15]):

* **Round 0**: every process reliably broadcasts its input (Bracha RBC —
  the paper's reference [4]; hence the ``n >= 3f + 1`` floor).
* **Round 1** (the paper's ``H_{(δ,p)}(V, 0)`` step): upon verifying
  ``n - f`` round-0 values ``X``, a process deterministically picks a
  point of ``∩_{C ⊆ X, |C| = |X| - f} H_{(δ,p)}(C)`` — here, the smallest
  feasible δ via the certified :func:`~repro.geometry.minimax.delta_star`
  solver (or δ = 0 via ``Γ(X)`` in the baseline mode).
* **Rounds t >= 2** (the paper's ``t > 0`` step): average of ``n - f``
  verified round ``t-1`` values.

**Verification.**  A round ``t >= 1`` claim does not carry a value at all:
it carries the *reference list* — the ``n - f`` sender ids whose round
``t-1`` values it aggregates.  Every correct process recomputes the value
from the references, so a Byzantine process's only freedom is its choice
of references (exactly the freedom the algorithm grants everyone); it can
never inject an unjustified vector into the averaging.  This is the
standard simulation of Tseng–Vaidya's verified-averaging machinery: it
preserves the two properties Theorem 15 argues about —

* *(δ,p)-validity*: a round-1 point is within δ of the hull of any
  ``|X| - f`` of its references' inputs; since at most ``f`` references
  are faulty, it is within δ of the hull of honest inputs.  Later rounds
  only take convex combinations.
* *ε-agreement*: any two verified round-``t`` values average ``n - f``
  of the *same* at-most-``n`` verified round ``t-1`` values (RBC
  agreement), hence share at least ``n - 2f`` terms, giving per-round
  coordinate-range contraction by ``ρ = f / (n - f) < 1/2``
  (:func:`contraction_factor`, :func:`rounds_for_epsilon`).

RBC totality guarantees liveness: a correct process's references were
delivered at that process, so they are eventually delivered — and
therefore verifiable — everywhere.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Union

import numpy as np

from .bounds import averaging_quorum
from ..geometry.intersections import gamma_delta_p_point, gamma_point
from ..geometry.minimax import delta_star
from ..geometry.tolerance import near_zero
from ..obs.causal import note_decision, note_iteration
from ..obs.perf import perf_phase
from ..obs.tracer import trace_event
from ..system.broadcast.interface import make_broadcast
from ..system.process import AsyncProcess, Context

__all__ = [
    "VerifiedAveragingProcess",
    "contraction_factor",
    "rounds_for_epsilon",
    "rb_tag",
]

PNorm = Union[float, int]


def contraction_factor(n: int, f: int) -> float:
    """Per-round coordinate-range contraction ``ρ = f / (n - f)``.

    With ``n >= 3f + 1`` this is at most ``f / (2f + 1) < 1/2``.  ``f = 0``
    gives ρ = 0: one averaging round suffices.
    """
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n, got n={n}, f={f}")
    return f / (n - f)


def rounds_for_epsilon(initial_range: float, n: int, f: int, epsilon: float) -> int:
    """Total rounds ``T`` so round-T values are ε-agreed.

    ``initial_range`` must upper-bound the coordinate range of the
    *round-1* values (e.g. coordinate range of all inputs plus ``2 δ``).
    Returns at least 2 (one selection round + one averaging round).
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be > 0")
    if initial_range <= epsilon:
        return 2
    rho = contraction_factor(n, f)
    if near_zero(rho):
        return 2
    needed = math.ceil(math.log(initial_range / epsilon) / math.log(1.0 / rho))
    return 1 + max(1, needed)


#: Cross-process memo of round-1 selections (see _select_round1).
_SELECT_CACHE: dict = {}
_SELECT_CACHE_MAX = 4096


def rb_tag(sender: int, round: int) -> str:
    """Network tag of the reliable-broadcast instance ``(sender, round)``."""
    return f"rva:{sender}:{round}"


class VerifiedAveragingProcess(AsyncProcess):
    """One process of the Relaxed Verified Averaging algorithm.

    Parameters
    ----------
    n, f, pid:
        System parameters and this process's id.
    input_value:
        The ``d``-dimensional input.
    num_rounds:
        Total rounds ``T >= 1`` (selection round + ``T - 1`` averaging
        rounds); compute from ε via :func:`rounds_for_epsilon`.
    mode:
        ``"optimal"`` — round-1 selection with the smallest feasible δ
        (the paper's §10 algorithm); ``"zero"`` — δ = 0, i.e. classic
        verified averaging, needing ``n >= (d+2)f + 1``; ``"fixed"`` — a
        caller-supplied constant ``delta``.
    p:
        Norm of the (δ,p) relaxation.
    """

    def __init__(
        self,
        n: int,
        f: int,
        pid: int,
        input_value: np.ndarray,
        *,
        num_rounds: int,
        mode: str = "optimal",
        delta: float = 0.0,
        p: PNorm = 2,
    ):
        if num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        if mode not in ("optimal", "zero", "fixed"):
            raise ValueError(f"unknown mode {mode!r}")
        self.n, self.f, self.pid = n, f, pid
        self.input_value = np.asarray(input_value, dtype=float).ravel()
        self.d = self.input_value.size
        self.num_rounds = int(num_rounds)
        self.mode = mode
        self.delta = float(delta)
        self.p = p
        self.quorum = averaging_quorum(n, f)

        #: (sender, round) -> Bracha RBC machine (via make_broadcast)
        self._rb: dict[tuple[int, int], Any] = {}
        self._delivered: dict[tuple[int, int], Any] = {}
        #: (sender, round) -> verified value vector
        self.verified: dict[tuple[int, int], np.ndarray] = {}
        #: claims delivered but not yet verifiable (waiting on references)
        self._pending: dict[tuple[int, int], tuple[int, ...]] = {}
        self._invalid: set[tuple[int, int]] = set()
        self.current_round = 0  # highest round we have broadcast
        self.my_values: dict[int, np.ndarray] = {0: self.input_value.copy()}
        self.delta_used: Optional[float] = None
        #: δ of the most recent round-1 selection (cache bookkeeping).
        self._claim_delta: Optional[float] = None

    # --------------------------------------------------------------- helpers
    def _machine(self, sender: int, round: int) -> Any:
        key = (sender, round)
        if key not in self._rb:
            self._rb[key] = make_broadcast(
                "bracha", self.n, self.f, sender, self.pid
            )
        return self._rb[key]

    def _rb_send(
        self,
        ctx: Context,
        sender: int,
        round: int,
        msgs: list[tuple[int, tuple[str, Any]]],
    ) -> None:
        tag = rb_tag(sender, round)
        for dst, payload in msgs:
            ctx.send(dst, tag, payload)

    # ------------------------------------------------------------ lifecycle
    def on_start(self, ctx: Context) -> None:
        value = tuple(float(x) for x in self.input_value)
        self._rb_send(ctx, self.pid, 0, self._machine(self.pid, 0).start(("val", value)))

    def on_message(self, ctx: Context, src: int, tag: str, payload: Any) -> None:
        parts = tag.split(":")
        if len(parts) != 3 or parts[0] != "rva":
            return
        try:
            sender, round = int(parts[1]), int(parts[2])
        except ValueError:
            return
        if not (0 <= sender < self.n and 0 <= round <= self.num_rounds):
            return  # cap instance creation against Byzantine tag spam
        machine = self._machine(sender, round)
        self._rb_send(ctx, sender, round, machine.on_message(src, payload))
        key = (sender, round)
        if machine.delivered and key not in self._delivered:
            self._delivered[key] = machine.delivered_value
            self._ingest(key, machine.delivered_value)
            self._progress(ctx)

    # ---------------------------------------------------------- verification
    def _ingest(self, key: tuple[int, int], payload: Any) -> None:
        """Classify a freshly delivered claim: verify now, queue, or reject."""
        sender, round = key
        if round == 0:
            try:
                kind, value = payload
                vec = np.asarray(value, dtype=float).ravel()
            except (TypeError, ValueError):
                self._invalid.add(key)
                return
            if kind != "val" or vec.size != self.d or not np.all(np.isfinite(vec)):
                self._invalid.add(key)
                return
            self.verified[key] = vec
            return
        try:
            kind, refs = payload
            refs = tuple(int(r) for r in refs)
        except (TypeError, ValueError):
            self._invalid.add(key)
            return
        if (
            kind != "refs"
            or len(refs) != self.quorum
            or len(set(refs)) != len(refs)
            or any(not 0 <= r < self.n for r in refs)
        ):
            self._invalid.add(key)
            return
        self._pending[key] = refs

    def _round_value(self, round: int, refs: tuple[int, ...]) -> np.ndarray:
        """Deterministic value of a round ``round >= 1`` claim.

        Round 1 applies the (δ,p) selection to the referenced inputs;
        later rounds average the referenced previous-round values.
        Identical at every correct process — that is the verification.
        """
        X = np.stack([self.verified[(r, round - 1)] for r in refs])
        if round == 1:
            return self._select_round1(X)
        return X.mean(axis=0)

    def _note_delta(self, value: float) -> None:
        """Fold one verified round-1 claim's δ into :attr:`delta_used`.

        The validity guarantee quantifies over *every* round-1 value that
        enters the averaging — including verified claims from Byzantine
        senders, whose reference sets may force a larger δ than this
        process's own selection.  ``delta_used`` is therefore the running
        max over all round-1 selections this process verified, so the
        checker's ``max`` over correct processes bounds every value any
        decision averaged in.
        """
        self.delta_used = (
            value if self.delta_used is None else max(self.delta_used, value)
        )

    def _select_round1(self, X: np.ndarray) -> np.ndarray:
        # Every correct process recomputes the same deterministic selection
        # for the same reference set; memoise across process objects so the
        # simulation does the convex optimisation once per distinct claim.
        key = (self.mode, self.delta, self.p, self.f, X.shape, X.tobytes())
        cached = _SELECT_CACHE.get(key)
        if cached is not None:
            self._note_delta(cached[1])
            return cached[0].copy()
        with perf_phase("averaging.select"):
            point = self._select_round1_uncached(X)
        if len(_SELECT_CACHE) > _SELECT_CACHE_MAX:
            _SELECT_CACHE.clear()
        _SELECT_CACHE[key] = (point.copy(), self._claim_delta)
        return point

    def _select_round1_uncached(self, X: np.ndarray) -> np.ndarray:
        if self.mode == "zero":
            point = gamma_point(X, self.f)
            if point is None:
                raise RuntimeError(
                    f"Γ(X) empty with |X|={X.shape[0]}, d={self.d}, f={self.f}: "
                    "δ=0 averaging requires n >= (d+2)f+1 (Theorem 2)"
                )
            self._claim_delta = 0.0
            self._note_delta(0.0)
            return point
        if self.mode == "fixed":
            point = gamma_delta_p_point(X, self.f, self.delta, self.p)
            if point is None:
                raise RuntimeError(
                    f"Γ_(δ,p)(X) empty for fixed δ={self.delta}: the chosen "
                    "constant relaxation is below δ*(X) (cf. Theorem 6)"
                )
            self._claim_delta = self.delta
            self._note_delta(self.delta)
            return point
        result = delta_star(X, self.f, p=self.p)
        self._claim_delta = result.value
        self._note_delta(result.value)
        return result.point

    def _progress(self, ctx: Context) -> None:
        """Cascade verification, advance our round, decide when done."""
        changed = True
        while changed:
            changed = False
            for key, refs in list(self._pending.items()):
                sender, round = key
                if all((r, round - 1) in self.verified for r in refs):
                    self.verified[key] = self._round_value(round, refs)
                    del self._pending[key]
                    changed = True

            # Advance our own round when enough verified values exist.
            while self.current_round < self.num_rounds:
                t = self.current_round
                ready = sorted(
                    s for (s, r) in self.verified if r == t
                )
                if len(ready) < self.quorum:
                    break
                refs = tuple(ready[: self.quorum])
                next_round = t + 1
                self.my_values[next_round] = self._round_value(next_round, refs)
                note_iteration(self.pid, round=next_round, refs=refs)
                self._rb_send(
                    ctx,
                    self.pid,
                    next_round,
                    self._machine(self.pid, next_round).start(("refs", refs)),
                )
                self.current_round = next_round
                changed = True

        if (
            not ctx.decided
            and self.current_round == self.num_rounds
            and self.num_rounds in self.my_values
        ):
            ctx.decide(self.my_values[self.num_rounds].copy())
            note_decision(self.pid, round=self.num_rounds,
                          delta_used=self.delta_used)
            trace_event("core.averaging.decide", pid=self.pid,
                        rounds=self.num_rounds, delta_used=self.delta_used)
