"""Declarative run specification — the single vocabulary for experiments.

A :class:`RunSpec` is one frozen value describing one consensus
execution: which algorithm, the system shape ``(n, d, f)``, the inputs
(given explicitly or derived from ``seed``), the adversary, and every
knob the six historical ``run_*`` entry points grew independently.
``repro.core.runner.run(spec)`` executes it.

Why a dataclass instead of six functions: the experiment engine
(:mod:`repro.exec`), the DST explorer, the benchmarks, and the CLI all
need to *build, store, and compare* run descriptions before executing
them — a frozen value does that; a call frame does not.  The legacy
``run_*`` functions remain as thin forwarding shims.

Canonical knob vocabulary (see ``docs/api.md`` for the legacy mapping):

============  =========================================================
``p``         norm order of the relaxation (legacy: also ``norm``)
``broadcast``   broadcast primitive of the synchronous algorithms
              (legacy name: ``transport``)
``transport``   execution backend (``"sim"``, ``"live-tcp"``,
              ``"live-uds"``) — see :mod:`repro.system.transport`
``rounds``    protocol rounds an algorithm executes (legacy
              ``num_rounds``); ``None`` means the algorithm's default
``max_rounds``  synchronous scheduler safety cap, not a protocol knob
``max_steps``   asynchronous scheduler safety cap
``epsilon``   agreement target (approximate/averaging algorithms)
``delta``     relaxation radius requested of the checker/algorithm
``check_delta``  validity-checker δ override (default: achieved δ*)
============  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..system.adversary import Adversary
    from ..system.scheduler import DeliveryPolicy
    from ..system.topology import Topology

__all__ = ["ALGORITHMS", "RunSpec"]

PNorm = Union[float, int]

#: Canonical algorithm names accepted by :func:`repro.core.runner.run`.
ALGORITHMS = ("exact", "algo", "krelaxed", "scalar", "iterative", "averaging")


@dataclass(frozen=True, eq=False)
class RunSpec:
    """One consensus execution, as a frozen plain value.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`: ``"exact"`` (Vaidya–Garg exact BVC),
        ``"algo"`` (the paper's ALGO), ``"krelaxed"``, ``"scalar"``,
        ``"iterative"`` (Vaidya 2014 approximate BVC), ``"averaging"``
        (Relaxed Verified Averaging, asynchronous).
    inputs:
        Explicit ``(n, d)`` input matrix.  When omitted, inputs are
        derived deterministically from ``seed``/``input_scale`` over the
        declared ``(n, d)`` shape — the same derivation the DST
        :class:`~repro.dst.scenarios.Scenario` uses.
    n, d:
        System shape.  Redundant (and checked) when ``inputs`` is given;
        required when it is not.
    f:
        Maximum number of Byzantine processes.
    adversary:
        :class:`~repro.system.adversary.Adversary` (default: none
        faulty).
    broadcast:
        Broadcast primitive for the synchronous algorithms (``"eig"``,
        ``"dolev-strong"``, or ``"atomic"``).  This was historically
        named ``transport``; that name now selects the execution
        backend instead.
    transport:
        Execution backend, one of the registered transport names:
        ``"sim"`` (deterministic in-process simulator, the default),
        ``"live-tcp"`` / ``"live-uds"`` (real asyncio nodes over
        loopback sockets; honest runs only).
    topology:
        Communication graph for ``"iterative"`` (default: complete).
    p, k, delta, epsilon:
        Relaxation knobs: norm order, coordinate relaxation, relaxation
        radius, agreement target.
    check_delta:
        Validity-checker δ override for ``"algo"`` (default: the
        achieved δ* plus solver-tolerance headroom).
    mode:
        ``"averaging"`` selection mode: ``"optimal"`` (the paper's) or
        ``"zero"`` (classic verified-averaging baseline).
    alpha:
        ``"iterative"`` mixing weight.
    rounds:
        Protocol rounds (``"iterative"`` steps / ``"averaging"``
        rounds).  ``None``: the algorithm's own default (30 for
        iterative; the contraction-bound estimate for averaging).
    max_rounds, max_steps:
        Scheduler safety caps (synchronous rounds / async activations).
    probes:
        Online invariant probes evaluated during the run: names from
        :data:`repro.obs.probes.PROBE_NAMES` (or ``"all"``), or
        pre-built :class:`~repro.obs.probes.Probe` objects.  Reports
        surface as ``RunResult.probes``; enabling probes never changes a
        decision.
    policy:
        Async delivery policy (``"averaging"`` only).
    seed:
        Master seed: drives the scheduler, the adversary rng, and —
        when ``inputs`` is omitted — the input derivation.
    input_scale:
        Standard deviation of derived inputs.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` installed
        for the run; the run's own metrics land in it (and it is
        surfaced as ``RunResult.metrics``).
    """

    algorithm: str
    f: int = 1
    inputs: Optional[np.ndarray] = None
    n: Optional[int] = None
    d: Optional[int] = None
    adversary: Optional["Adversary"] = None
    broadcast: str = "eig"
    transport: str = "sim"
    topology: Optional["Topology"] = None
    p: PNorm = 2
    k: int = 1
    delta: float = 0.0
    epsilon: float = 1e-2
    check_delta: Optional[float] = None
    mode: str = "optimal"
    alpha: float = 0.5
    rounds: Optional[int] = None
    max_rounds: int = 64
    max_steps: int = 2_000_000
    policy: Optional["DeliveryPolicy"] = None
    probes: tuple = ()
    seed: int = 0
    input_scale: float = 3.0
    metrics: Optional["MetricsRegistry"] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choices {ALGORITHMS}"
            )
        if self.f < 0:
            raise ValueError(f"f must be >= 0, got {self.f}")
        from ..system.broadcast.interface import BROADCAST_KINDS

        if self.broadcast not in BROADCAST_KINDS + ("atomic",):
            raise ValueError(
                f"unknown broadcast {self.broadcast!r}; choices "
                f"{BROADCAST_KINDS + ('atomic',)}"
            )
        if self.transport in BROADCAST_KINDS + ("atomic",):
            raise ValueError(
                f"transport={self.transport!r} names a broadcast "
                f"primitive; the broadcast knob was renamed — write "
                f"broadcast={self.transport!r}.  transport now selects "
                f"the execution backend ('sim', 'live-tcp', 'live-uds')."
            )
        from ..system.transport.base import transport_names

        if self.transport not in transport_names():
            raise ValueError(
                f"unknown transport {self.transport!r}; choices "
                f"{transport_names()}"
            )
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.delta < 0:
            raise ValueError(f"delta must be >= 0, got {self.delta}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon}")
        if self.rounds is not None and self.rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {self.rounds}")
        if not isinstance(self.probes, tuple):
            object.__setattr__(self, "probes", tuple(self.probes))
        from ..obs.probes import PROBE_NAMES

        for probe in self.probes:
            if isinstance(probe, str):
                if probe not in PROBE_NAMES + ("all",):
                    raise ValueError(
                        f"unknown probe {probe!r}; choices "
                        f"{PROBE_NAMES + ('all',)}"
                    )
            elif not hasattr(probe, "on_boundary"):
                raise ValueError(
                    f"probes entries must be names or Probe objects, "
                    f"got {type(probe).__name__}"
                )
        if self.inputs is not None:
            arr = np.atleast_2d(np.asarray(self.inputs, dtype=float)).copy()
            arr.setflags(write=False)
            object.__setattr__(self, "inputs", arr)
            n, d = arr.shape
            if self.n is not None and self.n != n:
                raise ValueError(f"n={self.n} disagrees with inputs shape {arr.shape}")
            if self.d is not None and self.d != d:
                raise ValueError(f"d={self.d} disagrees with inputs shape {arr.shape}")
            object.__setattr__(self, "n", n)
            object.__setattr__(self, "d", d)
        else:
            if self.n is None or self.d is None:
                raise ValueError(
                    "either inputs or both n and d must be given "
                    f"(got n={self.n}, d={self.d})"
                )
        assert self.n is not None and self.d is not None
        if self.n < 1 or self.d < 1:
            raise ValueError(f"need n >= 1 and d >= 1, got n={self.n}, d={self.d}")
        if self.algorithm == "scalar" and self.d != 1:
            raise ValueError(f"scalar consensus requires d=1, got d={self.d}")

    def resolved_inputs(self) -> np.ndarray:
        """The ``(n, d)`` input matrix this spec runs on.

        Explicit ``inputs`` verbatim; otherwise the deterministic
        seed-derived matrix (``default_rng(seed).normal(scale=
        input_scale, size=(n, d))``, matching the DST scenario DSL).
        """
        if self.inputs is not None:
            return self.inputs
        rng = np.random.default_rng(self.seed)
        return rng.normal(scale=self.input_scale, size=(self.n, self.d))

    def with_inputs(self, inputs: np.ndarray) -> "RunSpec":
        """Copy of this spec pinned to an explicit input matrix."""
        return replace(self, inputs=inputs, n=None, d=None)

    def describe(self) -> dict[str, object]:
        """Plain-data summary (for logs/JSON; arrays and objects elided)."""
        out: dict[str, object] = {}
        for fld in fields(self):
            value = getattr(self, fld.name)
            if fld.name == "inputs":
                out[fld.name] = None if value is None else list(value.shape)
            elif fld.name in ("adversary", "topology", "policy", "metrics"):
                out[fld.name] = None if value is None else type(value).__name__
            elif fld.name == "probes":
                out[fld.name] = [
                    probe if isinstance(probe, str)
                    else getattr(probe, "name", type(probe).__name__)
                    for probe in value
                ]
            else:
                out[fld.name] = value
        return out
