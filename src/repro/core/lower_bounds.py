"""The impossibility constructions from the paper's proofs, executable.

Each necessity proof exhibits a concrete input matrix and shows that any
algorithm's output set is empty (exact problems) or forced into
disagreement (approximate problems).  This module builds those matrices
and computes the verdicts *numerically* — the benchmarks then confirm the
proofs' conclusions hold exactly where the theorems say they do (and stop
holding one process above the bound).

* :func:`theorem3_inputs` / :func:`theorem3_verdict` — §6.1: ``n = d+1``
  inputs making ``Ψ(Y) = ∩_T H_k(T)`` empty for ``k = 2`` (hence all
  ``k >= 2`` by Lemma 2), ``f = 1``.
* :func:`theorem5_inputs` / :func:`theorem5_verdict` — §7.1: scaled
  standard basis + origin making ``∩_T H_{(δ,∞)}(T)`` empty whenever
  ``x > 2dδ``.
* :func:`theorem4_inputs` / :func:`theorem4_verdict` — Appendix B: the
  asynchronous construction forcing any two processes' admissible output
  sets ``Ψ_1, Ψ_2`` at L_inf distance >= 2ε apart (ε-agreement violated).
* :func:`theorem6_inputs` / :func:`theorem6_verdict` — Appendix C: same
  for constant-δ approximate consensus, separation > ε when
  ``x > 2dδ + ε``.

The per-process admissible output sets of the asynchronous proofs,

.. math::

    Ψ_i(S) = \\bigcap_{j \\ne i,\\ 1 \\le j \\le d+1} H_\\bullet(S^j),

(where ``S^j`` drops input ``j`` and the always-droppable slow process
``d+2``) are encoded as joint LPs; the minimum separation
``min ||v_1 - v_2||_inf`` over ``v_i ∈ Ψ_i`` is itself one LP
(:meth:`repro.geometry.intersections.HullSystem.minimize_pair_linf`).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..geometry.intersections import HullSystem, gamma_delta_p
from ..geometry.projection import enumerate_coordinate_subsets, project_multiset

__all__ = [
    "theorem3_inputs",
    "theorem3_verdict",
    "theorem4_inputs",
    "theorem4_verdict",
    "theorem5_inputs",
    "theorem5_verdict",
    "theorem6_inputs",
    "theorem6_verdict",
    "psi_i_separation",
]


# ---------------------------------------------------------------------------
# input matrices (inputs as rows, one per process)
# ---------------------------------------------------------------------------

def theorem3_inputs(d: int, gamma: float = 1.0, eps: float = 0.5) -> np.ndarray:
    """The ``d x (d+1)`` matrix S of Theorem 3 (inputs as rows).

    Column ``i`` (0-based): zeros above the diagonal, ``γ`` on it, ``ε``
    below; column ``d``: all ``-γ``.  Requires ``0 < ε <= γ`` and
    ``d >= 3`` (the theorem's regime).
    """
    if d < 3:
        raise ValueError(f"Theorem 3 needs d >= 3, got {d}")
    if not 0 < eps <= gamma:
        raise ValueError(f"need 0 < ε <= γ, got ε={eps}, γ={gamma}")
    S = np.zeros((d, d + 1))
    for i in range(d):
        S[i, i] = gamma
        S[i + 1 :, i] = eps
    S[:, d] = -gamma
    return S.T


def theorem4_inputs(d: int, gamma: float = 1.0, eps: float = 0.2) -> np.ndarray:
    """The ``d x (d+2)`` matrix of Theorem 4 / Appendix B (inputs as rows).

    Like Theorem 3's matrix with sub-diagonal entries ``2ε`` (requiring
    ``0 < 2ε < γ``), plus an all-zero column for process ``d+2``.
    """
    if d < 3:
        raise ValueError(f"Theorem 4 needs d >= 3, got {d}")
    if not 0 < 2 * eps < gamma:
        raise ValueError(f"need 0 < 2ε < γ, got ε={eps}, γ={gamma}")
    S = np.zeros((d, d + 2))
    for i in range(d):
        S[i, i] = gamma
        S[i + 1 :, i] = 2 * eps
    S[:, d] = -gamma
    # column d+1 stays all zero
    return S.T


def theorem5_inputs(d: int, x: float) -> np.ndarray:
    """The ``d x (d+1)`` matrix of Theorem 5: ``x``-scaled basis + origin."""
    if d < 2:
        raise ValueError(f"Theorem 5 needs d >= 2, got {d}")
    if x <= 0:
        raise ValueError(f"need x > 0, got {x}")
    S = np.zeros((d + 1, d))
    S[:d] = np.eye(d) * x
    return S


def theorem6_inputs(d: int, x: float) -> np.ndarray:
    """The ``d x (d+2)`` matrix of Theorem 6 / Appendix C."""
    if d < 2:
        raise ValueError(f"Theorem 6 needs d >= 2, got {d}")
    if x <= 0:
        raise ValueError(f"need x > 0, got {x}")
    S = np.zeros((d + 2, d))
    S[:d] = np.eye(d) * x
    return S


# ---------------------------------------------------------------------------
# verdicts
# ---------------------------------------------------------------------------

def theorem3_verdict(d: int, k: int = 2, gamma: float = 1.0, eps: float = 0.5) -> bool:
    """True iff ``Ψ(Y) = ∩_{|T|=d} H_k(T)`` is empty for the Thm-3 inputs.

    The theorem asserts emptiness for ``2 <= k <= d-1`` with ``n = d+1``
    and ``f = 1`` — i.e. ``n = (d+1)f`` processes do not suffice.
    """
    from ..geometry.intersections import psi_k_point

    Y = theorem3_inputs(d, gamma, eps)
    return psi_k_point(Y, f=1, k=k) is None


def theorem5_verdict(d: int, delta: float, x: Optional[float] = None) -> bool:
    """True iff ``∩_T H_{(δ,∞)}(T)`` is empty for the Thm-5 inputs.

    The proof requires ``x > 2dδ``; by default ``x = 2dδ · 1.5``.  With
    ``x <= 2dδ`` the intersection is *nonempty* — the verdict function
    lets benchmarks exhibit both sides of the threshold.
    """
    if x is None:
        x = 3.0 * d * delta if delta > 0 else 1.0
    S = theorem5_inputs(d, x)
    return not gamma_delta_p(S, f=1, delta=delta, p=math.inf)


def _psi_i_system(
    inputs: np.ndarray,
    i: int,
    system: HullSystem,
    offset: int,
    *,
    k: Optional[int] = None,
    delta: float = 0.0,
) -> None:
    """Add the Ψ_i constraints for output variables at ``offset..offset+d``.

    ``inputs`` is the ``(d+2, d)`` matrix; Ψ_i intersects over ``S^j``
    for ``j != i`` in the first ``d+1`` processes, each ``S^j`` dropping
    inputs ``j`` and ``d+2``.  ``k`` selects the k-relaxed hulls (Appendix
    B); ``delta`` selects the (δ,∞)-relaxed hulls (Appendix C).
    """
    n, d = inputs.shape
    assert n == d + 2
    coords = list(range(offset, offset + d))
    for j in range(d + 1):
        if j == i:
            continue
        Sj = np.delete(inputs[: d + 1], j, axis=0)
        if k is not None:
            for D in enumerate_coordinate_subsets(d, k):
                system.add_hull_constraint(
                    project_multiset(Sj, D), coords=[coords[c] for c in D]
                )
        else:
            system.add_hull_constraint(Sj, coords=coords, delta=delta, p=math.inf)


def psi_i_separation(
    inputs: np.ndarray, *, k: Optional[int] = None, delta: float = 0.0
) -> Optional[float]:
    """Minimum ``||v1 - v2||_inf`` with ``v1 ∈ Ψ_1`` and ``v2 ∈ Ψ_2``.

    ``Ψ_1``/``Ψ_2`` are the admissible output sets of processes 1 and 2
    in the asynchronous necessity proofs.  None when either set is empty
    (an even stronger impossibility).
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    n, d = inputs.shape
    if n != d + 2:
        raise ValueError(f"expected d+2={d + 2} inputs, got {n}")
    system = HullSystem(2 * d)
    _psi_i_system(inputs, 0, system, 0, k=k, delta=delta)
    _psi_i_system(inputs, 1, system, d, k=k, delta=delta)
    result = system.minimize_pair_linf(d)
    if result is None:
        return None
    return result[0]


def theorem4_verdict(
    d: int, k: int = 2, gamma: float = 1.0, eps: float = 0.2
) -> tuple[Optional[float], float]:
    """(forced separation, required 2ε) for the Appendix-B construction.

    The proof shows any algorithm's outputs at processes 1 and 2 satisfy
    ``||v1 - v2||_inf >= 2ε`` — so ε-agreement is impossible with
    ``n = d+2 = (d+2)f`` processes.  Returns the numerically-computed
    minimum separation (None if a Ψ set is empty) and the threshold.
    """
    inputs = theorem4_inputs(d, gamma, eps)
    sep = psi_i_separation(inputs, k=k)
    return sep, 2 * eps


def theorem6_verdict(
    d: int, delta: float, eps: float, x: Optional[float] = None
) -> tuple[Optional[float], float]:
    """(forced separation, required ε) for the Appendix-C construction.

    With ``x > 2dδ + ε`` the proof forces ``||v1 - v2||_inf > ε``.
    """
    if x is None:
        x = 2 * d * delta + 2 * eps
    inputs = theorem6_inputs(d, x)
    sep = psi_i_separation(inputs, delta=delta)
    return sep, eps
