"""k-relaxed Byzantine vector consensus (paper §5.1, §5.3, §6).

The paper's findings, realised as algorithms:

* ``k = 1``: solvable with only ``n >= 3f + 1`` processes by running
  scalar Byzantine consensus per coordinate (§5.3) — the output's i-th
  coordinate is in the projected range of the honest i-th coordinates,
  which is exactly 1-relaxed validity.
* ``2 <= k <= d``: the relaxation does **not** reduce the bound (Theorem
  3): ``n >= (d+1)f + 1`` is needed — at which point plain exact BVC
  already works, and its output is in ``H(N) ⊆ H_k(N)`` (Lemma 1's
  containment order).  So the sufficiency side *is* the exact algorithm;
  the necessity side is the :mod:`repro.core.lower_bounds` constructions.

:func:`k_relaxed_decision` dispatches accordingly; the process class wires
it into the broadcast-all template.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..system.crypto import SignatureScheme
from ..system.process import Context
from .broadcast_all import BroadcastAllProcess
from .exact_bvc import exact_bvc_decision
from .scalar import scalar_decision_vector

__all__ = ["KRelaxedProcess", "k_relaxed_decision"]


def k_relaxed_decision(S: np.ndarray, f: int, k: int) -> np.ndarray:
    """Decision rule for k-relaxed exact BVC on the agreed multiset.

    ``k = 1`` uses coordinate-wise scalar consensus (valid for ``H_1``);
    ``k >= 2`` decides a point of ``Γ(S)`` (valid for ``H ⊆ H_k``), which
    requires ``n >= (d+1)f + 1`` — matching Theorem 3's tight bound.
    """
    S = np.atleast_2d(np.asarray(S, dtype=float))
    d = S.shape[1]
    if not 1 <= k <= d:
        raise ValueError(f"need 1 <= k <= d={d}, got k={k}")
    if k == 1:
        return scalar_decision_vector(S, f)
    return exact_bvc_decision(S, f)


class KRelaxedProcess(BroadcastAllProcess):
    """Full synchronous k-relaxed exact BVC protocol process."""

    def __init__(
        self,
        n: int,
        f: int,
        pid: int,
        input_value: np.ndarray,
        *,
        k: int,
        broadcast: str = "eig",
        scheme: Optional[SignatureScheme] = None,
    ):
        super().__init__(n, f, pid, input_value, broadcast=broadcast, scheme=scheme)
        if not 1 <= k <= self.d:
            raise ValueError(f"need 1 <= k <= d={self.d}, got k={k}")
        self.k = k

    def decide_from_multiset(self, ctx: Context, S: np.ndarray) -> None:
        ctx.decide(k_relaxed_decision(S, self.f, self.k))
