"""Iterative Byzantine vector consensus in incomplete graphs.

The paper's related work (§2) cites Vaidya (ICDCN 2014): "a necessary
condition and a sufficient condition for iterative Byzantine vector
consensus were derived ... however, there is a gap between these
necessary and sufficient conditions."  This module implements the
iterative *algorithm* family those conditions analyse — the natural
companion system to the paper's full-information algorithms, and the one
that makes sense on sparse topologies:

* every round, each process sends its current **state vector** to its
  graph neighbours only (no relaying, no exponential information
  gathering);
* on receipt, it forms the multiset ``M`` of its own value plus its
  neighbours' values and moves to a point of

      ``Γ(M) = ∩_{T ⊆ M, |T| = |M| - f} H(T)``

  mixed with its own value: ``v ← (1 - α)·v + α·γ(M)``.  Any point of
  ``Γ(M)`` is in the convex hull of the *honest* values in ``M``
  whichever ``f`` neighbours are faulty, so validity is preserved by
  induction, and the self-mixing (``α < 1``) yields the contraction that
  drives ε-agreement on connected graphs.

Liveness of the update needs ``|M| ≥ (d+1)f + 1`` (Tverberg), i.e. the
*local* degree condition ``deg + 1 ≥ (d+1)f + 1`` — the sufficient side
of the story; :meth:`repro.system.topology.Topology.supports_iterative_bvc`
checks it.  When ``Γ(M)`` is empty (degree too low), the process holds
its value for that round — safety is never traded for progress.

This is a *reproduction of the cited companion system*, not of a claim in
the present paper; EXPERIMENTS.md marks it as an extension.
"""

from __future__ import annotations


import numpy as np

from ..geometry.intersections import gamma_point
from ..obs.perf import perf_phase
from ..system.process import Context, Inbox, SyncProcess
from ..system.topology import Topology

__all__ = ["IterativeBVCProcess", "iterative_update"]


def iterative_update(
    own: np.ndarray,
    neighbour_values: list[np.ndarray],
    f: int,
    *,
    alpha: float = 0.5,
) -> np.ndarray:
    """One iterative-consensus step from a neighbourhood multiset.

    Returns ``(1-α)·own + α·γ(M)`` where ``M = {own} ∪ neighbour_values``
    and ``γ`` is the deterministic point of ``Γ(M)``; returns ``own``
    unchanged when ``Γ(M)`` is empty (insufficient degree) — a safe
    stall, never an unsafe move.
    """
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    with perf_phase("iterative.update"):
        M = np.vstack([own[None, :]] + [v[None, :] for v in neighbour_values])
        point = gamma_point(M, f)
        if point is None:
            return own.copy()
        return (1.0 - alpha) * own + alpha * point


class IterativeBVCProcess(SyncProcess):
    """One process of iterative approximate BVC on a topology.

    Parameters
    ----------
    n, f, pid:
        System parameters.
    input_value:
        Initial state (the input vector).
    topology:
        The communication graph (only neighbours are addressed).
    num_rounds:
        Iterations before deciding the current state.
    alpha:
        Mixing weight toward the Γ-point (1.0 = jump fully).
    """

    def __init__(
        self,
        n: int,
        f: int,
        pid: int,
        input_value: np.ndarray,
        *,
        topology: Topology,
        num_rounds: int,
        alpha: float = 0.5,
    ):
        if num_rounds < 1:
            raise ValueError("num_rounds must be >= 1")
        self.n, self.f, self.pid = n, f, pid
        self.topology = topology
        self.num_rounds = int(num_rounds)
        self.alpha = float(alpha)
        self.value = np.asarray(input_value, dtype=float).ravel().copy()
        self.history: list[np.ndarray] = [self.value.copy()]
        self.stalled_rounds = 0

    def _send_state(self, ctx: Context, round: int) -> None:
        payload = tuple(float(x) for x in self.value)
        for nbr in self.topology.neighbors(self.pid):
            ctx.send(nbr, "iter", payload, round=round)

    def on_round(self, ctx: Context, round: int, inbox: Inbox) -> None:
        if round == 0:
            self._send_state(ctx, round)
            return
        received: list[np.ndarray] = []
        for src, entries in inbox.items():
            if src == self.pid:
                continue
            for tag, payload in entries:
                if tag != "iter":
                    continue
                try:
                    vec = np.asarray(payload, dtype=float).ravel()
                except (TypeError, ValueError):
                    continue
                if vec.size == self.value.size and np.all(np.isfinite(vec)):
                    received.append(vec)
                break  # one state per neighbour per round
        new_value = iterative_update(
            self.value, received, self.f, alpha=self.alpha
        )
        if np.array_equal(new_value, self.value) and received:
            self.stalled_rounds += 1
        self.value = new_value
        self.history.append(self.value.copy())
        if round >= self.num_rounds:
            ctx.decide(self.value.copy())
            return
        self._send_state(ctx, round)
