"""Exact Byzantine vector consensus — the Vaidya–Garg baseline ([19]).

The algorithm ALGO modifies (§9): Step 1, all-to-all Byzantine broadcast
of the inputs; Step 2, decide a deterministic point of

.. math::

    Γ(S) = \\bigcap_{T ⊆ S, |T| = n - f} H(T),

which Tverberg's theorem guarantees nonempty when ``n >= (d+1)f + 1``
(§8).  Agreement holds because all correct processes hold the identical
broadcast multiset and apply the same deterministic selection; validity
holds because ``Γ(S) ⊆ H(T*)`` for the subset ``T*`` of actually-honest
inputs.

This is the δ = 0 baseline every (δ,p) benchmark compares against, and
the engine for k-relaxed consensus with ``2 <= k <= d``.
"""

from __future__ import annotations

import numpy as np

from ..geometry.intersections import gamma_point
from ..obs.causal import note_decision
from ..obs.tracer import trace_event
from ..system.process import Context
from .bounds import tverberg_min_n
from .broadcast_all import BroadcastAllProcess

__all__ = ["ExactBVCProcess", "exact_bvc_decision"]


def exact_bvc_decision(S: np.ndarray, f: int) -> np.ndarray:
    """Deterministic point of ``Γ(S)`` (Step 2 of exact BVC).

    Raises
    ------
    ValueError
        When ``Γ(S)`` is empty — i.e. the caller ran the algorithm below
        the ``(d+1)f + 1`` bound (Theorem 1's necessity side in action).
    """
    point = gamma_point(np.atleast_2d(np.asarray(S, dtype=float)), f)
    if point is None:
        n, d = np.atleast_2d(S).shape
        raise ValueError(
            f"Γ(S) is empty for n={n}, d={d}, f={f}; exact BVC requires "
            f"n >= (d+1)f+1 = {tverberg_min_n(d, f)} (Theorem 1)"
        )
    return point


class ExactBVCProcess(BroadcastAllProcess):
    """Full synchronous exact-BVC protocol process."""

    def decide_from_multiset(self, ctx: Context, S: np.ndarray) -> None:
        ctx.decide(exact_bvc_decision(S, self.f))
        note_decision(self.pid, multiset_size=int(S.shape[0]))
        trace_event("core.exact_bvc.decide", pid=self.pid)
