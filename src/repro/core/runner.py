"""High-level entry points: build a system, run it, check it.

These are the functions the examples and benchmarks call.  Each takes the
full ``(n, d)`` input matrix (one row per process — including the rows the
Byzantine processes would *like* to use, which an honest-strategy
adversary will actually broadcast), an :class:`~repro.system.adversary
.Adversary`, and knobs; each returns a :class:`ConsensusOutcome` bundling
decisions, the checker's verdict against the appropriate problem spec, and
run statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Union

import numpy as np

from ..system.adversary import Adversary
from ..system.crypto import SignatureScheme
from ..system.process import SyncProcess
from ..system.scheduler import (
    AsyncScheduler,
    DeliveryPolicy,
    RunResult,
    SynchronousScheduler,
)
from .algo_sync import AlgoProcess
from .averaging import VerifiedAveragingProcess, rounds_for_epsilon
from .exact_bvc import ExactBVCProcess
from .krelaxed import KRelaxedProcess
from .problems import (
    ApproximateBVC,
    DeltaPApproximateBVC,
    DeltaPExactBVC,
    ExactBVC,
    KRelaxedExactBVC,
    ProblemSpec,
    ValidityReport,
)
from .scalar import ScalarConsensusProcess

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..system.topology import Topology

__all__ = ["ConsensusOutcome", "run_exact_bvc", "run_algo", "run_k_relaxed",
           "run_scalar", "run_averaging", "run_iterative"]

PNorm = Union[float, int]

#: builder invoked per pid: (n, f, pid, input, transport, scheme) -> process
ProcessFactory = Callable[
    [int, int, int, np.ndarray, str, Optional[SignatureScheme]], SyncProcess
]


@dataclass
class ConsensusOutcome:
    """Everything a caller needs from one consensus execution."""

    decisions: dict[int, np.ndarray]
    report: ValidityReport
    result: RunResult
    honest_inputs: np.ndarray
    delta_used: Optional[float] = None

    @property
    def ok(self) -> bool:
        """Agreement + validity + termination all hold."""
        return self.report.ok

    @property
    def metrics(self) -> "MetricsRegistry":
        """The run's :class:`~repro.obs.metrics.MetricsRegistry`
        (shortcut for ``result.metrics``)."""
        return self.result.metrics


def _prep(
    inputs: np.ndarray, adversary: Optional[Adversary]
) -> tuple[np.ndarray, Adversary, np.ndarray]:
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    adversary = adversary or Adversary.none()
    n = inputs.shape[0]
    honest = np.array(
        [inputs[p] for p in range(n) if not adversary.is_faulty(p)]
    )
    return inputs, adversary, honest


def _run_sync(
    make_process: ProcessFactory,
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary],
    spec: ProblemSpec,
    *,
    transport: str = "eig",
    seed: int = 0,
    max_rounds: int = 64,
) -> ConsensusOutcome:
    inputs, adversary, honest = _prep(inputs, adversary)
    n = inputs.shape[0]
    rng = np.random.default_rng(seed)
    scheme = SignatureScheme(n, rng) if transport == "dolev-strong" else None
    procs: list[SyncProcess] = [
        make_process(n, f, pid, inputs[pid], transport, scheme) for pid in range(n)
    ]
    sched = SynchronousScheduler(
        procs,
        f,
        adversary,
        rng=rng,
        max_rounds=max_rounds,
        sign=scheme.signer_for(set(adversary.faulty)) if scheme else None,
    )
    result = sched.run()
    decisions = {
        pid: np.asarray(v, dtype=float)
        for pid, v in result.correct_decisions.items()
    }
    report = spec.check(honest, decisions, terminated=result.completed)
    delta = None
    for pid, proc in sched.processes.items():
        if pid not in adversary.faulty and getattr(proc, "delta_used", None) is not None:
            delta = proc.delta_used
            break
    return ConsensusOutcome(decisions, report, result, honest, delta)


def run_exact_bvc(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    transport: str = "eig",
    seed: int = 0,
) -> ConsensusOutcome:
    """Synchronous exact BVC (Vaidya–Garg baseline; needs
    ``n >= max(3f+1, (d+1)f+1)``)."""
    d = np.atleast_2d(inputs).shape[1]

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        transport_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return ExactBVCProcess(n, f_, pid, v, transport=transport_, scheme=scheme)

    return _run_sync(make, inputs, f, adversary, ExactBVC(d, f),
                     transport=transport, seed=seed)


def run_algo(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    p: PNorm = 2,
    transport: str = "eig",
    seed: int = 0,
    check_delta: Optional[float] = None,
) -> ConsensusOutcome:
    """The paper's ALGO: synchronous (δ,p)-relaxed exact BVC with the
    smallest input-dependent δ (needs only ``n >= 3f+1``).

    ``check_delta`` sets the δ used by the validity checker; by default
    the checker uses the δ* the processes actually achieved, so the
    report verifies the algorithm's own claim.
    """
    inputs2, adversary2, honest = _prep(inputs, adversary)
    d = inputs2.shape[1]

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        transport_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return AlgoProcess(
            n, f_, pid, v, p=p, transport=transport_, scheme=scheme
        )

    # Run with a placeholder spec, then re-check against the achieved δ*.
    outcome = _run_sync(
        make, inputs2, f, adversary2, DeltaPExactBVC(d, f, delta=0.0, p=p),
        transport=transport, seed=seed,
    )
    if check_delta is not None:
        delta = check_delta
    else:
        # δ* is a strict minimum: the decision sits exactly at distance δ*
        # from some subset hull, so the checker needs solver-tolerance
        # headroom or re-measured distances tip it over by ~1e-7.
        achieved = outcome.delta_used or 0.0
        delta = achieved * (1.0 + 1e-6) + 1e-9
    spec = DeltaPExactBVC(d, f, delta=delta, p=p)
    outcome.report = spec.check(
        honest, outcome.decisions, terminated=outcome.result.completed
    )
    return outcome


def run_k_relaxed(
    inputs: np.ndarray,
    f: int,
    k: int,
    adversary: Optional[Adversary] = None,
    *,
    transport: str = "eig",
    seed: int = 0,
) -> ConsensusOutcome:
    """Synchronous k-relaxed exact BVC (k = 1: ``n >= 3f+1``;
    k >= 2: ``n >= (d+1)f+1``, Theorem 3)."""
    d = np.atleast_2d(inputs).shape[1]

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        transport_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return KRelaxedProcess(
            n, f_, pid, v, k=k, transport=transport_, scheme=scheme
        )

    return _run_sync(make, inputs, f, adversary, KRelaxedExactBVC(d, f, k=k),
                     transport=transport, seed=seed)


def run_scalar(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    transport: str = "eig",
    seed: int = 0,
) -> ConsensusOutcome:
    """Synchronous exact scalar consensus (d = 1; ``n >= 3f+1``)."""

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        transport_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return ScalarConsensusProcess(
            n, f_, pid, v, transport=transport_, scheme=scheme
        )

    return _run_sync(make, inputs, f, adversary, ExactBVC(1, f),
                     transport=transport, seed=seed)


def run_iterative(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    topology: Optional["Topology"] = None,
    num_rounds: int = 30,
    alpha: float = 0.5,
    epsilon: float = 1e-2,
    seed: int = 0,
) -> ConsensusOutcome:
    """Iterative approximate BVC on a (possibly incomplete) topology.

    The companion system from the paper's related work (Vaidya 2014);
    see :mod:`repro.core.iterative`.  ``topology`` defaults to the
    complete graph.  The outcome is checked as approximate BVC:
    ε-agreement plus validity in the hull of the honest *inputs*.
    """
    from ..system.topology import Topology, complete_topology
    from .iterative import IterativeBVCProcess

    inputs2, adversary2, honest = _prep(inputs, adversary)
    n, d = inputs2.shape
    topo: Topology = topology if topology is not None else complete_topology(n)
    procs = [
        IterativeBVCProcess(
            n, f, pid, inputs2[pid],
            topology=topo, num_rounds=num_rounds, alpha=alpha,
        )
        for pid in range(n)
    ]
    sched = SynchronousScheduler(
        procs, f, adversary2,
        rng=np.random.default_rng(seed),
        max_rounds=num_rounds + 2,
        topology=topo,
    )
    result = sched.run()
    decisions = {
        pid: np.asarray(v, dtype=float)
        for pid, v in result.correct_decisions.items()
    }
    spec = ApproximateBVC(d, f, epsilon=epsilon)
    # num_rounds LP steps each carry ~1e-8 feasibility slack; give the
    # membership check matching headroom.
    report = spec.check(
        honest, decisions, terminated=result.completed,
        tol=max(1e-7, 2e-8 * num_rounds),
    )
    return ConsensusOutcome(decisions, report, result, honest)


def run_averaging(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    epsilon: float = 1e-2,
    num_rounds: Optional[int] = None,
    mode: str = "optimal",
    delta: float = 0.0,
    p: PNorm = 2,
    policy: Optional[DeliveryPolicy] = None,
    seed: int = 0,
    max_steps: int = 2_000_000,
) -> ConsensusOutcome:
    """Asynchronous Relaxed Verified Averaging (§10).

    ``mode="optimal"`` is the paper's algorithm (smallest feasible δ at
    round 1; works from ``n >= 3f+1``); ``mode="zero"`` is the classic
    verified-averaging baseline needing ``n >= (d+2)f+1``.  ``num_rounds``
    defaults to the contraction-bound estimate for ``epsilon`` computed
    from the *global* input spread (a simulation convenience — the full
    dynamic termination rule lives in the paper's reference [15]).
    """
    inputs2, adversary2, honest = _prep(inputs, adversary)
    n, d = inputs2.shape
    if num_rounds is None:
        spread = float(np.max(inputs2.max(axis=0) - inputs2.min(axis=0)))
        # round-1 values can exceed the input hull by up to δ per side;
        # bound δ crudely by the spread itself.
        num_rounds = rounds_for_epsilon(3.0 * max(spread, epsilon), n, f, epsilon)
    procs = [
        VerifiedAveragingProcess(
            n, f, pid, inputs2[pid],
            num_rounds=num_rounds, mode=mode, delta=delta, p=p,
        )
        for pid in range(n)
    ]
    sched = AsyncScheduler(
        procs, f, adversary2,
        policy=policy, rng=np.random.default_rng(seed), max_steps=max_steps,
    )
    result = sched.run()
    decisions = {
        pid: np.asarray(v, dtype=float)
        for pid, v in result.correct_decisions.items()
    }
    deltas = [
        proc.delta_used
        for pid, proc in sched.processes.items()
        if pid not in adversary2.faulty
        and getattr(proc, "delta_used", None) is not None
    ]
    delta_used = max(deltas) if deltas else None
    # Like run_algo: the selected points sit exactly at distance δ from
    # some subset hull, so the membership check needs solver-tolerance
    # headroom beyond the achieved δ.
    check_delta = (
        delta_used * (1.0 + 1e-6) + 1e-9 if delta_used is not None else delta
    )
    spec = DeltaPApproximateBVC(d, f, delta=check_delta, p=p, epsilon=epsilon)
    report = spec.check(honest, decisions, terminated=result.completed)
    return ConsensusOutcome(decisions, report, result, honest, delta_used)
