"""High-level entry point: build a system, run it, check it.

One declarative entry point runs everything: describe the execution as a
:class:`~repro.core.runspec.RunSpec` and call :func:`run`::

    from repro.core import RunSpec, run
    out = run(RunSpec(algorithm="algo", inputs=inputs, f=1,
                      adversary=Adversary(faulty=[3])))

``run`` dispatches on ``spec.algorithm``, executes the full protocol
stack, checks the outcome against the appropriate problem spec, and
returns a :class:`ConsensusOutcome` bundling decisions, the checker's
verdict, and run statistics.

The historical per-algorithm entry points (``run_exact_bvc``,
``run_algo``, ``run_k_relaxed``, ``run_scalar``, ``run_iterative``,
``run_averaging``) are kept as thin forwarding shims so existing call
sites keep working; new code should construct a ``RunSpec``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

import numpy as np

from ..obs.metrics import use_registry
from ..obs.perf import perf_phase
from ..obs.probes import Probe, ProbeReport, build_probes
from ..system.adversary import Adversary
from ..system.crypto import SignatureScheme
from ..system.process import SyncProcess
from ..system.scheduler import DeliveryPolicy, RunResult
from ..system.transport.base import get_transport
from .algo_sync import AlgoProcess
from .averaging import VerifiedAveragingProcess, rounds_for_epsilon
from .exact_bvc import ExactBVCProcess
from .krelaxed import KRelaxedProcess
from .problems import (
    ApproximateBVC,
    DeltaPApproximateBVC,
    DeltaPExactBVC,
    ExactBVC,
    KRelaxedExactBVC,
    ProblemSpec,
    ValidityReport,
)
from .runspec import ALGORITHMS, RunSpec
from .scalar import ScalarConsensusProcess

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..system.topology import Topology

__all__ = ["ConsensusOutcome", "RunSpec", "run", "run_exact_bvc", "run_algo",
           "run_k_relaxed", "run_scalar", "run_averaging", "run_iterative"]

PNorm = Union[float, int]

#: builder invoked per pid: (n, f, pid, input, broadcast, scheme) -> process
ProcessFactory = Callable[
    [int, int, int, np.ndarray, str, Optional[SignatureScheme]], SyncProcess
]


@dataclass
class ConsensusOutcome:
    """Everything a caller needs from one consensus execution."""

    decisions: dict[int, np.ndarray]
    report: ValidityReport
    result: RunResult
    honest_inputs: np.ndarray
    delta_used: Optional[float] = None

    @property
    def ok(self) -> bool:
        """Agreement + validity + termination all hold."""
        return self.report.ok

    @property
    def metrics(self) -> "MetricsRegistry":
        """The run's :class:`~repro.obs.metrics.MetricsRegistry`
        (shortcut for ``result.metrics``)."""
        return self.result.metrics

    @property
    def probe_reports(self) -> tuple[ProbeReport, ...]:
        """Per-probe reports (shortcut for ``result.probes``)."""
        return self.result.probes

    @property
    def probe_violations(self) -> int:
        """Total online invariant violations across all probes."""
        return self.result.probe_violations


def _spec_probes(spec: RunSpec) -> list[Probe]:
    """Materialise ``spec.probes`` (names and/or objects) for one run."""
    if not spec.probes:
        return []
    names = [p for p in spec.probes if isinstance(p, str)]
    built = build_probes(
        names, algorithm=spec.algorithm, p=spec.p, k=spec.k,
        epsilon=spec.epsilon,
    )
    objects = [p for p in spec.probes if not isinstance(p, str)]
    return objects + built


def _prep(
    inputs: np.ndarray, adversary: Optional[Adversary]
) -> tuple[np.ndarray, Adversary, np.ndarray]:
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    adversary = adversary or Adversary.none()
    n = inputs.shape[0]
    honest = np.array(
        [inputs[p] for p in range(n) if not adversary.is_faulty(p)]
    )
    return inputs, adversary, honest


def _run_sync(
    make_process: ProcessFactory,
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary],
    spec: ProblemSpec,
    *,
    broadcast: str = "eig",
    transport: str = "sim",
    seed: int = 0,
    max_rounds: int = 64,
    probes: Sequence[Probe] = (),
) -> ConsensusOutcome:
    inputs, adversary, honest = _prep(inputs, adversary)
    n = inputs.shape[0]
    rng = np.random.default_rng(seed)
    scheme = SignatureScheme(n, rng) if broadcast == "dolev-strong" else None
    procs: list[SyncProcess] = [
        make_process(n, f, pid, inputs[pid], broadcast, scheme) for pid in range(n)
    ]
    backend = get_transport(transport)
    result = backend.run_sync(
        procs,
        f,
        adversary=adversary,
        rng=rng,
        max_rounds=max_rounds,
        sign=scheme.signer_for(set(adversary.faulty)) if scheme else None,
        probes=probes,
        seed=seed,
    )
    decisions = {
        pid: np.asarray(v, dtype=float)
        for pid, v in result.correct_decisions.items()
    }
    report = spec.check(honest, decisions, terminated=result.completed)
    delta = None
    for pid, proc in enumerate(procs):
        if pid not in adversary.faulty and getattr(proc, "delta_used", None) is not None:
            delta = proc.delta_used
            break
    return ConsensusOutcome(decisions, report, result, honest, delta)


# ---------------------------------------------------------------------------
# per-algorithm handlers (dispatched by `run`)
# ---------------------------------------------------------------------------


def _handle_exact(spec: RunSpec) -> ConsensusOutcome:
    inputs = spec.resolved_inputs()
    d = inputs.shape[1]

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        broadcast_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return ExactBVCProcess(n, f_, pid, v, broadcast=broadcast_, scheme=scheme)

    return _run_sync(make, inputs, spec.f, spec.adversary, ExactBVC(d, spec.f),
                     broadcast=spec.broadcast, transport=spec.transport,
                     seed=spec.seed, max_rounds=spec.max_rounds,
                     probes=_spec_probes(spec))


def _handle_algo(spec: RunSpec) -> ConsensusOutcome:
    inputs, adversary, honest = _prep(spec.resolved_inputs(), spec.adversary)
    d = inputs.shape[1]
    p = spec.p

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        broadcast_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return AlgoProcess(
            n, f_, pid, v, p=p, broadcast=broadcast_, scheme=scheme
        )

    # Run with a placeholder spec, then re-check against the achieved δ*.
    outcome = _run_sync(
        make, inputs, spec.f, adversary,
        DeltaPExactBVC(d, spec.f, delta=0.0, p=p),
        broadcast=spec.broadcast, transport=spec.transport,
        seed=spec.seed, max_rounds=spec.max_rounds,
        probes=_spec_probes(spec),
    )
    if spec.check_delta is not None:
        delta = spec.check_delta
    else:
        # δ* is a strict minimum: the decision sits exactly at distance δ*
        # from some subset hull, so the checker needs solver-tolerance
        # headroom or re-measured distances tip it over by ~1e-7.
        achieved = outcome.delta_used or 0.0
        delta = achieved * (1.0 + 1e-6) + 1e-9
    check_spec = DeltaPExactBVC(d, spec.f, delta=delta, p=p)
    outcome.report = check_spec.check(
        honest, outcome.decisions, terminated=outcome.result.completed
    )
    return outcome


def _handle_krelaxed(spec: RunSpec) -> ConsensusOutcome:
    inputs = spec.resolved_inputs()
    d = inputs.shape[1]
    k = spec.k

    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        broadcast_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return KRelaxedProcess(
            n, f_, pid, v, k=k, broadcast=broadcast_, scheme=scheme
        )

    return _run_sync(make, inputs, spec.f, spec.adversary,
                     KRelaxedExactBVC(d, spec.f, k=k),
                     broadcast=spec.broadcast, transport=spec.transport,
                     seed=spec.seed, max_rounds=spec.max_rounds,
                     probes=_spec_probes(spec))


def _handle_scalar(spec: RunSpec) -> ConsensusOutcome:
    def make(
        n: int, f_: int, pid: int, v: np.ndarray,
        broadcast_: str, scheme: Optional[SignatureScheme],
    ) -> SyncProcess:
        return ScalarConsensusProcess(
            n, f_, pid, v, broadcast=broadcast_, scheme=scheme
        )

    return _run_sync(make, spec.resolved_inputs(), spec.f, spec.adversary,
                     ExactBVC(1, spec.f), broadcast=spec.broadcast,
                     transport=spec.transport, seed=spec.seed,
                     max_rounds=spec.max_rounds, probes=_spec_probes(spec))


def _handle_iterative(spec: RunSpec) -> ConsensusOutcome:
    from ..system.topology import Topology, complete_topology
    from .iterative import IterativeBVCProcess

    inputs, adversary, honest = _prep(spec.resolved_inputs(), spec.adversary)
    n, d = inputs.shape
    rounds = spec.rounds if spec.rounds is not None else 30
    topo: Topology = (
        spec.topology if spec.topology is not None else complete_topology(n)
    )
    procs = [
        IterativeBVCProcess(
            n, spec.f, pid, inputs[pid],
            topology=topo, num_rounds=rounds, alpha=spec.alpha,
        )
        for pid in range(n)
    ]
    backend = get_transport(spec.transport)
    result = backend.run_sync(
        procs, spec.f, adversary=adversary,
        rng=np.random.default_rng(spec.seed),
        max_rounds=rounds + 2,
        topology=topo,
        probes=_spec_probes(spec),
        seed=spec.seed,
    )
    decisions = {
        pid: np.asarray(v, dtype=float)
        for pid, v in result.correct_decisions.items()
    }
    check_spec = ApproximateBVC(d, spec.f, epsilon=spec.epsilon)
    # `rounds` LP steps each carry ~1e-8 feasibility slack; give the
    # membership check matching headroom.
    report = check_spec.check(
        honest, decisions, terminated=result.completed,
        tol=max(1e-7, 2e-8 * rounds),
    )
    return ConsensusOutcome(decisions, report, result, honest)


def _handle_averaging(spec: RunSpec) -> ConsensusOutcome:
    inputs, adversary, honest = _prep(spec.resolved_inputs(), spec.adversary)
    n, d = inputs.shape
    rounds = spec.rounds
    if rounds is None:
        spread = float(np.max(inputs.max(axis=0) - inputs.min(axis=0)))
        # round-1 values can exceed the input hull by up to δ per side;
        # bound δ crudely by the spread itself.
        rounds = rounds_for_epsilon(
            3.0 * max(spread, spec.epsilon), n, spec.f, spec.epsilon
        )
    procs = [
        VerifiedAveragingProcess(
            n, spec.f, pid, inputs[pid],
            num_rounds=rounds, mode=spec.mode, delta=spec.delta, p=spec.p,
        )
        for pid in range(n)
    ]
    backend = get_transport(spec.transport)
    result = backend.run_async(
        procs, spec.f, adversary=adversary,
        policy=spec.policy, rng=np.random.default_rng(spec.seed),
        max_steps=spec.max_steps,
        probes=_spec_probes(spec),
        seed=spec.seed,
    )
    decisions = {
        pid: np.asarray(v, dtype=float)
        for pid, v in result.correct_decisions.items()
    }
    deltas = [
        proc.delta_used
        for pid, proc in enumerate(procs)
        if pid not in adversary.faulty
        and getattr(proc, "delta_used", None) is not None
    ]
    delta_used = max(deltas) if deltas else None
    # Like "algo": the selected points sit exactly at distance δ from
    # some subset hull, so the membership check needs solver-tolerance
    # headroom beyond the achieved δ.
    check_delta = (
        delta_used * (1.0 + 1e-6) + 1e-9 if delta_used is not None else spec.delta
    )
    check_spec = DeltaPApproximateBVC(
        d, spec.f, delta=check_delta, p=spec.p, epsilon=spec.epsilon
    )
    report = check_spec.check(honest, decisions, terminated=result.completed)
    return ConsensusOutcome(decisions, report, result, honest, delta_used)


_HANDLERS: dict[str, Callable[[RunSpec], ConsensusOutcome]] = {
    "exact": _handle_exact,
    "algo": _handle_algo,
    "krelaxed": _handle_krelaxed,
    "scalar": _handle_scalar,
    "iterative": _handle_iterative,
    "averaging": _handle_averaging,
}

assert set(_HANDLERS) == set(ALGORITHMS)


def run(spec: RunSpec) -> ConsensusOutcome:
    """Execute one :class:`~repro.core.runspec.RunSpec` end to end.

    Dispatches on ``spec.algorithm``, builds the processes and scheduler,
    runs to completion, and checks the decisions against the matching
    problem spec.  When ``spec.metrics`` is given it is installed as the
    ambient :class:`~repro.obs.metrics.MetricsRegistry` for the run.
    """
    handler = _HANDLERS[spec.algorithm]
    if spec.metrics is not None:
        with use_registry(spec.metrics):
            with perf_phase("core.run"):
                return handler(spec)
    with perf_phase("core.run"):
        return handler(spec)


# ---------------------------------------------------------------------------
# legacy entry points — thin forwarding shims over `run(RunSpec(...))`
# ---------------------------------------------------------------------------


def run_exact_bvc(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    transport: str = "eig",
    seed: int = 0,
) -> ConsensusOutcome:
    """Synchronous exact BVC (Vaidya–Garg baseline; needs
    ``n >= max(3f+1, (d+1)f+1)``).

    .. deprecated:: Forwarding shim — prefer
       ``run(RunSpec(algorithm="exact", ...))``.
    """
    return run(RunSpec(algorithm="exact", inputs=inputs, f=f,
                       adversary=adversary, broadcast=transport, seed=seed))


def run_algo(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    p: PNorm = 2,
    transport: str = "eig",
    seed: int = 0,
    check_delta: Optional[float] = None,
) -> ConsensusOutcome:
    """The paper's ALGO: synchronous (δ,p)-relaxed exact BVC with the
    smallest input-dependent δ (needs only ``n >= 3f+1``).

    ``check_delta`` sets the δ used by the validity checker; by default
    the checker uses the δ* the processes actually achieved, so the
    report verifies the algorithm's own claim.

    .. deprecated:: Forwarding shim — prefer
       ``run(RunSpec(algorithm="algo", ...))``.
    """
    return run(RunSpec(algorithm="algo", inputs=inputs, f=f,
                       adversary=adversary, p=p, broadcast=transport,
                       seed=seed, check_delta=check_delta))


def run_k_relaxed(
    inputs: np.ndarray,
    f: int,
    k: int,
    adversary: Optional[Adversary] = None,
    *,
    transport: str = "eig",
    seed: int = 0,
) -> ConsensusOutcome:
    """Synchronous k-relaxed exact BVC (k = 1: ``n >= 3f+1``;
    k >= 2: ``n >= (d+1)f+1``, Theorem 3).

    .. deprecated:: Forwarding shim — prefer
       ``run(RunSpec(algorithm="krelaxed", k=k, ...))``.
    """
    return run(RunSpec(algorithm="krelaxed", inputs=inputs, f=f, k=k,
                       adversary=adversary, broadcast=transport, seed=seed))


def run_scalar(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    transport: str = "eig",
    seed: int = 0,
) -> ConsensusOutcome:
    """Synchronous exact scalar consensus (d = 1; ``n >= 3f+1``).

    .. deprecated:: Forwarding shim — prefer
       ``run(RunSpec(algorithm="scalar", ...))``.
    """
    return run(RunSpec(algorithm="scalar", inputs=inputs, f=f,
                       adversary=adversary, broadcast=transport, seed=seed))


def run_iterative(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    topology: Optional["Topology"] = None,
    num_rounds: int = 30,
    alpha: float = 0.5,
    epsilon: float = 1e-2,
    seed: int = 0,
) -> ConsensusOutcome:
    """Iterative approximate BVC on a (possibly incomplete) topology.

    The companion system from the paper's related work (Vaidya 2014);
    see :mod:`repro.core.iterative`.  ``topology`` defaults to the
    complete graph.  The outcome is checked as approximate BVC:
    ε-agreement plus validity in the hull of the honest *inputs*.

    .. deprecated:: Forwarding shim — prefer
       ``run(RunSpec(algorithm="iterative", rounds=..., ...))``
       (``num_rounds`` is spelled ``rounds`` there).
    """
    return run(RunSpec(algorithm="iterative", inputs=inputs, f=f,
                       adversary=adversary, topology=topology,
                       rounds=num_rounds, alpha=alpha, epsilon=epsilon,
                       seed=seed))


def run_averaging(
    inputs: np.ndarray,
    f: int,
    adversary: Optional[Adversary] = None,
    *,
    epsilon: float = 1e-2,
    num_rounds: Optional[int] = None,
    mode: str = "optimal",
    delta: float = 0.0,
    p: PNorm = 2,
    policy: Optional[DeliveryPolicy] = None,
    seed: int = 0,
    max_steps: int = 2_000_000,
) -> ConsensusOutcome:
    """Asynchronous Relaxed Verified Averaging (§10).

    ``mode="optimal"`` is the paper's algorithm (smallest feasible δ at
    round 1; works from ``n >= 3f+1``); ``mode="zero"`` is the classic
    verified-averaging baseline needing ``n >= (d+2)f+1``.  ``num_rounds``
    defaults to the contraction-bound estimate for ``epsilon`` computed
    from the *global* input spread (a simulation convenience — the full
    dynamic termination rule lives in the paper's reference [15]).

    .. deprecated:: Forwarding shim — prefer
       ``run(RunSpec(algorithm="averaging", rounds=..., ...))``
       (``num_rounds`` is spelled ``rounds`` there).
    """
    return run(RunSpec(algorithm="averaging", inputs=inputs, f=f,
                       adversary=adversary, epsilon=epsilon,
                       rounds=num_rounds, mode=mode, delta=delta, p=p,
                       policy=policy, seed=seed, max_steps=max_steps))
