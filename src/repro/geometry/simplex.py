"""Simplex geometry: the inscribed-sphere machinery of Lemmas 11–15.

For affinely independent points ``a_1, ..., a_{d+1}`` in ``R^d`` the paper
(following Toda, "Radii of the inscribed and escribed spheres of a simplex")
defines ``A = [a_1 - a_{d+1}, ..., a_d - a_{d+1}]``, ``B = (A^{-1})^T`` with
columns ``b_1, ..., b_d`` and ``b_{d+1} = -sum_i b_i``.  Then:

* Lemma 11: ``<a_i - a_j, b_k> = δ_ik - δ_jk``;
* Lemma 12: the inradius is ``r = 1 / sum_i ||b_i||``;
* Lemma 13: for ``f = 1`` and ``S`` a simplex, ``δ*(S) = r`` — the exact
  closed form we use to validate the numerical min-max solver;
* Lemma 14: ``r < min_k r_k`` where ``r_k`` is the inradius of facet
  ``π_k`` inside its own (d-1)-dimensional subspace;
* Lemma 15: ``r < max_edge / d``.

Barycentric fact used for the incenter: a point with barycentric
coordinates ``t`` has distance ``t_i / ||b_i||`` to facet ``π_i``; the
incenter therefore has ``t_i ∝ ||b_i||``.
"""

from __future__ import annotations

import numpy as np

from .hull import affine_basis

__all__ = [
    "is_affinely_independent",
    "simplex_b_vectors",
    "inradius",
    "incenter",
    "incenter_and_inradius",
    "facet_points",
    "facet_inradius",
    "vertex_facet_distances",
]

_RANK_TOL = 1e-9


def _as_simplex(points: np.ndarray) -> np.ndarray:
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    m, d = pts.shape
    if m != d + 1:
        raise ValueError(f"a simplex in R^{d} needs exactly {d + 1} points, got {m}")
    return pts


def is_affinely_independent(points: np.ndarray, tol: float = _RANK_TOL) -> bool:
    """True when the ``m`` points span an ``(m-1)``-dimensional affine hull."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    _, basis = affine_basis(pts, tol)
    return basis.shape[0] == pts.shape[0] - 1


def simplex_b_vectors(points: np.ndarray) -> np.ndarray:
    """The vectors ``b_1, ..., b_{d+1}`` of Lemma 11, as rows of a matrix.

    ``points`` is ``(d+1, d)`` with affinely independent rows; the returned
    array is ``(d+1, d)`` with ``B[i] = b_{i+1}`` and
    ``B[d] = -sum(B[:d])``.

    Raises
    ------
    numpy.linalg.LinAlgError
        If the points are affinely dependent (``A`` is singular).
    """
    pts = _as_simplex(points)
    d = pts.shape[1]
    A = (pts[:d] - pts[d]).T  # columns a_i - a_{d+1}
    Binv = np.linalg.inv(A)  # rows of A^{-1}
    B = Binv  # B = (A^{-1})^T has columns = rows of A^{-1}; store as rows
    b_last = -B.sum(axis=0)
    return np.vstack([B, b_last])


def inradius(points: np.ndarray) -> float:
    """Inradius ``r = 1 / sum_i ||b_i||_2`` of the simplex (Lemma 12)."""
    B = simplex_b_vectors(points)
    return 1.0 / float(np.linalg.norm(B, axis=1).sum())


def incenter(points: np.ndarray) -> np.ndarray:
    """Center of the inscribed sphere (barycentric weights ``∝ ||b_i||``)."""
    pts = _as_simplex(points)
    B = simplex_b_vectors(pts)
    w = np.linalg.norm(B, axis=1)
    w = w / w.sum()
    return w @ pts


def incenter_and_inradius(points: np.ndarray) -> tuple[np.ndarray, float]:
    """Both the incenter and inradius (one ``B`` computation)."""
    pts = _as_simplex(points)
    B = simplex_b_vectors(pts)
    norms = np.linalg.norm(B, axis=1)
    total = norms.sum()
    return (norms / total) @ pts, 1.0 / float(total)


def facet_points(points: np.ndarray, k: int) -> np.ndarray:
    """Vertices of facet ``π_k`` (all vertices except index ``k``)."""
    pts = _as_simplex(points)
    if not 0 <= k < pts.shape[0]:
        raise ValueError(f"facet index {k} out of range")
    return np.delete(pts, k, axis=0)


def facet_inradius(points: np.ndarray, k: int) -> float:
    """Inradius ``r_k`` of facet ``π_k`` inside its own subspace (Lemma 14).

    The facet's ``d`` vertices are mapped isometrically to ``R^{d-1}``
    via an orthonormal affine basis, where they form a simplex whose
    inradius is computed with Lemma 12.
    """
    fpts = facet_points(points, k)
    origin, basis = affine_basis(fpts)
    if basis.shape[0] != fpts.shape[0] - 1:
        raise ValueError("facet is degenerate; the simplex is not full-dimensional")
    reduced = (fpts - origin) @ basis.T
    return inradius(reduced)


def vertex_facet_distances(points: np.ndarray) -> np.ndarray:
    """Distance from each vertex ``a_i`` to its opposite facet ``π_i``.

    Equals ``1 / ||b_i||`` by Lemma 11 (``<a_i - a_j, b_i> = 1`` for any
    ``a_j`` on the facet, and ``b_i`` is orthogonal to the facet).
    """
    B = simplex_b_vectors(points)
    return 1.0 / np.linalg.norm(B, axis=1)
