"""The paper's two relaxed convex hulls: ``H_k(S)`` and ``H_{(δ,p)}(S)``.

Definition 6 (k-relaxed hull):

.. math::

    H_k(S) = \\bigcap_{D \\in D_k} g_D^{-1}\\big(H(g_D(S))\\big)

i.e. a point is in ``H_k(S)`` iff *every* of its k-coordinate projections is
in the hull of the correspondingly projected inputs.

Definition 9 ((δ,p)-relaxed hull):

.. math::

    H_{(δ,p)}(S) = \\{ u : \\mathrm{dist}_p(u, H(S)) \\le δ \\}

Both are represented as membership/distance objects (they are generally not
polytopes we want vertex representations of).  The containment lattice of
Lemmas 1 and 6 — ``H_i ⊆ H_j`` for ``i ≥ j`` and ``H_{(δ',p)} ⊆ H_{(δ,p)}``
for ``δ' ≤ δ`` — is exercised by the property tests.
"""

from __future__ import annotations

import math
from typing import Sequence, Union

import numpy as np

from .distance import distance_to_hull
from .hull import Hull
from .norms import validate_p
from .projection import Cylinder, enumerate_coordinate_subsets, project_multiset

__all__ = ["KRelaxedHull", "DeltaPHull"]

PNorm = Union[float, int]


class KRelaxedHull:
    """``H_k(S)``: the k-relaxed convex hull of a point multiset ``S``.

    Parameters
    ----------
    S:
        ``(m, d)`` multiset of points.
    k:
        Projection size, ``1 <= k <= d``.  ``k = d`` recovers the ordinary
        convex hull; ``k = 1`` is the coordinate-wise bounding box.
    """

    def __init__(self, S: np.ndarray, k: int):
        pts = np.atleast_2d(np.asarray(S, dtype=float))
        m, d = pts.shape
        if not 1 <= k <= d:
            raise ValueError(f"need 1 <= k <= d={d}, got k={k}")
        self.S = pts
        self.k = int(k)
        self.d = d
        self._cylinders: list[Cylinder] = [
            Cylinder(d, D, project_multiset(pts, D))
            for D in enumerate_coordinate_subsets(d, k)
        ]

    @property
    def cylinders(self) -> Sequence[Cylinder]:
        """The cylinder sets whose intersection is ``H_k(S)``."""
        return tuple(self._cylinders)

    def contains(self, u: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership: every D-projection of ``u`` is in the projected hull."""
        return all(c.contains(u, tol) for c in self._cylinders)

    def violation(self, u: np.ndarray, p: PNorm = 2) -> float:
        """Largest projection-hull distance over all ``D in D_k``.

        Zero iff ``u`` is in ``H_k(S)``; a quantitative infeasibility
        certificate used by the lower-bound demonstrations.
        """
        return max(c.distance(u, p) for c in self._cylinders)

    def bounding_box(self) -> tuple[np.ndarray, np.ndarray]:
        """Coordinate-wise (lo, hi) bounds that contain ``H_k(S)``.

        For any ``k``, each single coordinate of a member point must lie in
        the projected range of that coordinate (take any ``D`` containing
        it), so the input bounding box always contains ``H_k(S)``.
        """
        return self.S.min(axis=0), self.S.max(axis=0)

    def __repr__(self) -> str:
        return f"KRelaxedHull(m={self.S.shape[0]}, d={self.d}, k={self.k})"


class DeltaPHull:
    """``H_{(δ,p)}(S)``: the δ-fattened (under L_p) convex hull of ``S``."""

    def __init__(self, S: np.ndarray, delta: float, p: PNorm = 2):
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        self.p = validate_p(p)
        self.delta = float(delta)
        self.hull = Hull(S)

    @property
    def S(self) -> np.ndarray:
        """The generating multiset."""
        return self.hull.points

    def contains(self, u: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership: ``dist_p(u, H(S)) <= delta`` (within ``tol``)."""
        return self.distance_to_core(u) <= self.delta + tol

    def distance_to_core(self, u: np.ndarray) -> float:
        """``dist_p(u, H(S))`` — distance to the *unrelaxed* hull."""
        return distance_to_hull(self.hull.points, u, self.p).distance

    def violation(self, u: np.ndarray) -> float:
        """``max(0, dist_p(u, H(S)) - delta)``; zero iff ``u`` is a member."""
        return max(0.0, self.distance_to_core(u) - self.delta)

    def witness_point(self, u: np.ndarray) -> np.ndarray:
        """Nearest point of ``H_{(δ,p)}(S)`` to ``u``.

        If ``u`` is a member it is returned unchanged; otherwise move from
        ``u`` toward its hull projection until the residual distance is
        exactly ``delta``.  (For p=2 this is the exact metric projection
        onto the fattened hull; for other p it is a feasible witness.)
        """
        u = np.asarray(u, dtype=float).ravel()
        proj = distance_to_hull(self.hull.points, u, self.p)
        if proj.distance <= self.delta:
            return u.copy()
        if math.isinf(proj.distance):  # pragma: no cover - distances are finite
            raise RuntimeError("infinite hull distance")
        t = 1.0 - self.delta / proj.distance
        return u + t * (proj.point - u)

    def __repr__(self) -> str:
        return (
            f"DeltaPHull(m={self.hull.num_points}, d={self.hull.ambient_dim}, "
            f"delta={self.delta:.6g}, p={self.p})"
        )
