"""The optimal relaxation ``δ*(S)``: a certified min-max distance solver.

Step 2 of the paper's algorithm ALGO needs, for the broadcast multiset
``S`` of ``n`` inputs with up to ``f`` faulty,

.. math::

    δ^*(S) \\;=\\; \\min_{x \\in R^d} \\; \\max_{i} \\;
        \\mathrm{dist}_p(x, H(P_i)),

where ``P_1, ..., P_{\\binom{n}{f}}`` are the size ``n - f`` subsets of
``S`` — the smallest ``δ`` for which ``Γ_{(δ,p)}(S)`` is nonempty, together
with a deterministic point attaining it.

Solvers
-------
* ``p ∈ {1, ∞}`` — the whole problem is a single exact LP
  (``min t  s.t.  dist_p(x, H(P_i)) ≤ t``) solved with HiGHS.
* ``p = 2`` and general finite ``p`` — Kelley's cutting-plane method.
  ``dist_p(x, C) = max_{\\|g\\|_q ≤ 1} ⟨g, x⟩ - h_C(g)`` (``q`` the dual
  norm, ``h_C`` the support function), so every evaluation of the distance
  yields a *global* linear under-estimator ("cut"):

      ``t ≥ ⟨g, x⟩ - max_j ⟨g, a_j⟩``  with  ``g = ∇\\|x' - y'\\|_p``,

  where ``y'`` is the projection of the current iterate ``x'``.  The master
  LP over accumulated cuts yields a certified **lower** bound; evaluating
  the true max-distance at the LP solution yields an **upper** bound.  We
  iterate until the gap closes, so the returned value carries a numerical
  optimality certificate (`gap`).

The optimum is always attained inside ``H(S)`` (projecting any ``x`` onto
``H(S)`` cannot increase the distance to any sub-hull ``H(P_i) ⊆ H(S)``,
projections onto convex sets being nonexpansive), so the master LP is run
over the bounding box of ``S`` — keeping it bounded from the first
iteration.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np
from scipy.optimize import linprog

from ..obs import metrics as _obs
from ..obs.perf import perf_phase
from ..obs.tracer import trace_span
from .cache import cached_kernel
from .distance import distance_to_hull
from .intersections import f_subsets, gamma_point
from .norms import lp_norm, validate_p
from .tolerance import norm_order_is

__all__ = ["DeltaStarResult", "delta_star", "max_subset_distance"]

PNorm = Union[float, int]


@dataclass(frozen=True)
class DeltaStarResult:
    """Outcome of the δ* optimisation.

    Attributes
    ----------
    value:
        ``δ*(S)`` (the certified min-max distance).
    point:
        A minimiser ``p0`` — the point ALGO decides.
    distances:
        Distance from ``point`` to each subset hull, aligned with
        ``subsets``.
    subsets:
        The index tuples of the size ``n-f`` subsets.
    gap:
        Certified optimality gap (upper bound − LP lower bound); 0 for the
        exact-LP norms.
    iterations:
        Cutting-plane iterations used (0 for the exact-LP norms).
    """

    value: float
    point: np.ndarray
    distances: np.ndarray
    subsets: tuple[tuple[int, ...], ...]
    gap: float
    iterations: int


def max_subset_distance(
    S: np.ndarray, x: np.ndarray, subsets: Sequence[Sequence[int]], p: PNorm = 2
) -> np.ndarray:
    """Distances from ``x`` to every ``H(S[T])`` for ``T`` in ``subsets``."""
    S = np.atleast_2d(np.asarray(S, dtype=float))
    x = np.asarray(x, dtype=float).ravel()
    return np.array(
        [distance_to_hull(S[list(T)], x, p).distance for T in subsets]
    )


def _lp_grad(r: np.ndarray, p: float) -> np.ndarray:
    """Gradient of ``||r||_p`` at ``r != 0`` (unit dual-norm vector)."""
    if norm_order_is(p, 2.0):
        return r / np.linalg.norm(r)
    if math.isinf(p):
        g = np.zeros_like(r)
        j = int(np.argmax(np.abs(r)))
        g[j] = np.sign(r[j])
        return g
    if norm_order_is(p, 1.0):
        return np.sign(r)
    nrm = float(lp_norm(r, p))
    return np.sign(r) * (np.abs(r) / nrm) ** (p - 1.0)


def _delta_star_exact_lp(
    S: np.ndarray, subsets: Sequence[tuple[int, ...]], p: float
) -> tuple[float, np.ndarray]:
    """Single exact LP for ``p ∈ {1, ∞}``.

    Variables: ``x (d)``, then per subset a weight block ``lam_i`` (and an
    L1 slack block for ``p = 1``), and finally the scalar ``t``.
    """
    n, d = S.shape
    blocks = []
    offset = d
    for T in subsets:
        m = len(T)
        lam_off = offset
        offset += m
        s_off = None
        if norm_order_is(p, 1.0):
            s_off = offset
            offset += d
        blocks.append((T, lam_off, s_off))
    t_idx = offset
    n_var = offset + 1

    A_ub_rows, b_ub = [], []
    A_eq_rows, b_eq = [], []
    for T, lam_off, s_off in blocks:
        pts = S[list(T)]
        m = len(T)
        row = np.zeros(n_var)
        row[lam_off : lam_off + m] = 1.0
        A_eq_rows.append(row)
        b_eq.append(1.0)
        for j in range(d):
            if math.isinf(p):
                # |x_j - pts[:, j] @ lam| <= t
                r1 = np.zeros(n_var)
                r1[j] = 1.0
                r1[lam_off : lam_off + m] = -pts[:, j]
                r1[t_idx] = -1.0
                A_ub_rows.append(r1)
                b_ub.append(0.0)
                r2 = np.zeros(n_var)
                r2[j] = -1.0
                r2[lam_off : lam_off + m] = pts[:, j]
                r2[t_idx] = -1.0
                A_ub_rows.append(r2)
                b_ub.append(0.0)
            else:
                # |x_j - pts[:, j] @ lam| <= s_j ; sum s <= t
                r1 = np.zeros(n_var)
                r1[j] = 1.0
                r1[lam_off : lam_off + m] = -pts[:, j]
                r1[s_off + j] = -1.0
                A_ub_rows.append(r1)
                b_ub.append(0.0)
                r2 = np.zeros(n_var)
                r2[j] = -1.0
                r2[lam_off : lam_off + m] = pts[:, j]
                r2[s_off + j] = -1.0
                A_ub_rows.append(r2)
                b_ub.append(0.0)
        if norm_order_is(p, 1.0):
            row = np.zeros(n_var)
            row[s_off : s_off + d] = 1.0
            row[t_idx] = -1.0
            A_ub_rows.append(row)
            b_ub.append(0.0)

    c = np.zeros(n_var)
    c[t_idx] = 1.0
    bounds = (
        [(None, None)] * d
        + [(0.0, None)] * (offset - d)
        + [(0.0, None)]
    )
    res = linprog(
        c,
        A_ub=np.array(A_ub_rows),
        b_ub=np.array(b_ub),
        A_eq=np.array(A_eq_rows),
        b_eq=np.array(b_eq),
        bounds=bounds,
        method="highs",
    )
    if not res.success:  # pragma: no cover - always feasible (x = any input)
        raise RuntimeError(f"delta* LP failed: {res.message}")
    return float(res.x[t_idx]), np.asarray(res.x[:d])


def _polish_slsqp(
    subset_pts: list[np.ndarray],
    p: float,
    x0: np.ndarray,
    f0: float,
    scale: float,
) -> tuple[np.ndarray, float]:
    """Local smooth solve of ``min t s.t. dist_i(x) <= t`` from ``(x0, f0)``.

    Near the optimum each hull distance is smooth (its gradient is the
    unit vector toward the projection), so SLSQP converges quadratically
    where Kelley zigzags.  Returns the better of the start and the
    polished point (evaluated with the *true* distances).
    """
    from scipy.optimize import minimize as _minimize

    d = x0.size

    def eval_all(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        dists = np.empty(len(subset_pts))
        grads = np.zeros((len(subset_pts), d))
        for i, pts in enumerate(subset_pts):
            proj = distance_to_hull(pts, x, p)
            dists[i] = proj.distance
            if proj.distance > 1e-14 * scale:
                grads[i] = _lp_grad(x - proj.point, p)
        return dists, grads

    def fun(z: np.ndarray) -> float:
        return z[d]

    def jac(z: np.ndarray) -> np.ndarray:
        g = np.zeros(d + 1)
        g[d] = 1.0
        return g

    def cons_f(z: np.ndarray) -> np.ndarray:
        dists, _ = eval_all(z[:d])
        return z[d] - dists

    def cons_j(z: np.ndarray) -> np.ndarray:
        _, grads = eval_all(z[:d])
        J = np.zeros((len(subset_pts), d + 1))
        J[:, :d] = -grads
        J[:, d] = 1.0
        return J

    z0 = np.concatenate([x0, [f0]])
    res = _minimize(
        fun,
        z0,
        jac=jac,
        constraints=[{"type": "ineq", "fun": cons_f, "jac": cons_j}],
        method="SLSQP",
        options={"maxiter": 200, "ftol": 1e-14},
    )
    x_new = np.asarray(res.x[:d])
    dists, _ = eval_all(x_new)
    f_new = float(np.max(dists)) if dists.size else 0.0
    if f_new < f0:
        return x_new, f_new
    return x0, f0


def _delta_star_cutting_plane(
    S: np.ndarray,
    subsets: Sequence[tuple[int, ...]],
    p: float,
    tol: float,
    max_iter: int,
) -> tuple[float, np.ndarray, float, int]:
    """Kelley cutting-plane + SLSQP-polish solver for finite ``p``.

    Kelley supplies a certified global *lower* bound (every cut is a
    global under-estimator); SLSQP supplies fast local convergence of the
    *upper* bound.  Alternating the two closes the gap orders of
    magnitude faster than either alone.
    """
    n, d = S.shape
    lo = S.min(axis=0)
    hi = S.max(axis=0)
    scale = float(np.max(hi - lo)) or 1.0
    subset_pts = [S[list(T)] for T in subsets]

    cuts_g: list[np.ndarray] = []
    cuts_h: list[float] = []

    def add_cuts(x: np.ndarray) -> float:
        """Evaluate F(x), appending one cut per subset with positive distance."""
        fmax = 0.0
        for pts in subset_pts:
            proj = distance_to_hull(pts, x, p)
            fmax = max(fmax, proj.distance)
            if proj.distance > 1e-14 * scale:
                g = _lp_grad(x - proj.point, p)
                h = float(np.max(pts @ g))
                cuts_g.append(g)
                cuts_h.append(h)
        return fmax

    x_best = S.mean(axis=0)
    f_best = add_cuts(x_best)
    lower = 0.0
    it = 0
    kelley_budget = min(max_iter, 25)
    total_used = 0
    for _cycle in range(4):
        for it in range(1, kelley_budget + 1):
            total_used += 1
            # Master LP: min t s.t. <g, x> - t <= h for each cut, x in box.
            m = len(cuts_g)
            c = np.zeros(d + 1)
            c[d] = 1.0
            A_ub = np.zeros((m, d + 1))
            A_ub[:, :d] = np.array(cuts_g)
            A_ub[:, d] = -1.0
            b_ub = np.array(cuts_h)
            bounds = [(float(l), float(u)) for l, u in zip(lo, hi)] + [(0.0, None)]
            res = linprog(c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs")
            if not res.success:  # pragma: no cover - master LP is always feasible
                break
            x_k = np.asarray(res.x[:d])
            lower = max(lower, float(res.x[d]))
            f_k = add_cuts(x_k)
            if f_k < f_best:
                f_best, x_best = f_k, x_k
            if f_best - lower <= tol * max(1.0, scale):
                return f_best, x_best, f_best - lower, total_used
            if total_used >= max_iter:
                break
        # Polish the incumbent, feed the polished point back as cuts.
        x_pol, f_pol = _polish_slsqp(subset_pts, p, x_best, f_best, scale)
        if f_pol < f_best:
            x_best, f_best = x_pol, f_pol
            add_cuts(x_best)
        if f_best - lower <= tol * max(1.0, scale) or total_used >= max_iter:
            break
    return f_best, x_best, f_best - lower, total_used


def delta_star(
    S: np.ndarray,
    f: int,
    *,
    p: PNorm = 2,
    tol: float = 1e-8,
    max_iter: int = 400,
) -> DeltaStarResult:
    """Compute ``δ*(S)`` and a minimiser for ``f`` faults under ``L_p``.

    Parameters
    ----------
    S:
        ``(n, d)`` multiset of inputs (as collected in Step 1 of ALGO).
    f:
        Maximum number of Byzantine inputs, ``0 <= f < n``.
    p:
        Norm order of the relaxation (Definition 9).
    tol:
        Relative optimality-gap target for the cutting-plane path.
    max_iter:
        Iteration cap for the cutting-plane path.
    """
    S = np.atleast_2d(np.asarray(S, dtype=float))
    n, d = S.shape
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n={n}, got f={f}")
    p = validate_p(p)
    subsets = tuple(f_subsets(n, f))

    t0 = time.perf_counter()
    with perf_phase("geometry.delta_star"), trace_span(
        "geometry.delta_star", n=n, d=d, f=f, p=float(p)
    ) as span:
        result = _delta_star_solve(S, n, f, p, subsets, tol, max_iter)
        span.tag(value=result.value, gap=result.gap,
                 iterations=result.iterations)
    reg = _obs.current_registry()
    reg.inc("geometry.delta_star.calls")
    reg.inc("geometry.delta_star.iterations", result.iterations)
    reg.observe("geometry.delta_star.seconds", time.perf_counter() - t0)
    return result


@cached_kernel("delta_star")
def _delta_star_solve(
    S: np.ndarray,
    n: int,
    f: int,
    p: float,
    subsets: tuple[tuple[int, ...], ...],
    tol: float,
    max_iter: int,
) -> DeltaStarResult:
    # Memoised under canonical keys (repro.geometry.cache): the solve is
    # wrapped, not delta_star itself, so call counters and trace spans
    # stay live per caller while repeated instances skip the solvers.
    # δ = 0 fast path: Γ(S) nonempty means no relaxation is needed at all
    # (e.g. Theorem 8's affinely-dependent inputs, or n >= (d+1)f + 1).
    g0 = gamma_point(S, f)
    if g0 is not None:
        dists = max_subset_distance(S, g0, subsets, p)
        return DeltaStarResult(0.0, g0, dists, subsets, 0.0, 0)

    if norm_order_is(p, 1.0) or math.isinf(p):
        value, point = _delta_star_exact_lp(S, subsets, p)
        dists = max_subset_distance(S, point, subsets, p)
        return DeltaStarResult(value, point, dists, subsets, 0.0, 0)

    value, point, gap, iters = _delta_star_cutting_plane(
        S, subsets, p, tol, max_iter
    )
    dists = max_subset_distance(S, point, subsets, p)
    return DeltaStarResult(float(value), point, dists, subsets, float(gap), iters)
