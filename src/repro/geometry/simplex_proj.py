"""Euclidean projection onto the probability simplex.

The nearest-point-in-convex-hull solver (:mod:`repro.geometry.distance`)
parameterises hull points as convex combinations ``A.T @ lam`` with ``lam`` on
the probability simplex ``{lam : lam >= 0, sum(lam) = 1}``; projected-gradient
iterations need the exact Euclidean projection onto that simplex.  We use the
classic O(m log m) sort-based algorithm (Held, Wolfe & Crowder 1974; see also
Duchi et al. 2008), fully vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["project_to_simplex", "project_rows_to_simplex"]


def project_to_simplex(v: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Project ``v`` onto ``{x : x >= 0, sum(x) = radius}`` in Euclidean norm.

    Parameters
    ----------
    v:
        1-D array to project.
    radius:
        Simplex scale (must be positive); the standard probability simplex
        has ``radius = 1``.

    Returns
    -------
    numpy.ndarray
        The unique Euclidean projection.
    """
    v = np.asarray(v, dtype=float).ravel()
    if radius <= 0:
        raise ValueError(f"simplex radius must be positive, got {radius}")
    if v.size == 0:
        raise ValueError("cannot project empty vector onto simplex")
    u = np.sort(v)[::-1]
    css = np.cumsum(u) - radius
    ind = np.arange(1, v.size + 1)
    cond = u - css / ind > 0
    # cond is True for a prefix; rho is the last True index (1-based).
    rho = int(ind[cond][-1])
    theta = css[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


def project_rows_to_simplex(V: np.ndarray, radius: float = 1.0) -> np.ndarray:
    """Row-wise simplex projection of a 2-D array (vectorised batch form)."""
    V = np.atleast_2d(np.asarray(V, dtype=float))
    if radius <= 0:
        raise ValueError(f"simplex radius must be positive, got {radius}")
    n, m = V.shape
    U = -np.sort(-V, axis=1)
    css = np.cumsum(U, axis=1) - radius
    ind = np.arange(1, m + 1)[None, :]
    cond = U - css / ind > 0
    rho = cond.shape[1] - np.argmax(cond[:, ::-1], axis=1)  # last True, 1-based
    theta = css[np.arange(n), rho - 1] / rho
    return np.maximum(V - theta[:, None], 0.0)
