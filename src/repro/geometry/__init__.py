"""Geometric substrate for relaxed Byzantine vector consensus.

Everything the paper's definitions and proofs consume: L_p norms, convex
hulls robust to degeneracy, point-to-hull distances, coordinate projections,
the relaxed hulls ``H_k`` and ``H_{(δ,p)}``, the hull-intersection operators
``Γ`` / ``Ψ``, the certified ``δ*(S)`` min-max solver, simplex in-sphere
geometry (Lemmas 11–15), and Radon/Tverberg partitions (§8).
"""

from .cache import (
    cache_disabled,
    cache_enabled,
    cache_stats,
    cached_kernel,
    clear_cache,
    configure_cache,
    set_cache_enabled,
)
from .distance import (
    HullProjection,
    convex_combination_weights,
    distance_l1,
    distance_linf,
    distance_to_hull,
    in_hull,
    nearest_point_l2,
)
from .halfspaces import Halfspace, hull_halfspaces, separating_halfspace, supporting_halfspace
from .hull import Hull, affine_basis, affine_dimension
from .intersections import (
    f_subsets,
    gamma,
    gamma_delta_p,
    gamma_delta_p_point,
    gamma_point,
    intersect_hulls,
    intersection_point,
    psi_k,
    psi_k_point,
)
from .minimax import DeltaStarResult, delta_star, max_subset_distance
from .norms import (
    holder_upper_factor,
    lp_distance,
    lp_norm,
    max_edge_length,
    min_edge_length,
    norm_equivalence_bounds,
    pairwise_lp_distances,
    validate_p,
)
from .polytope import (
    Polytope,
    convex_polygon_clip,
    gamma_polytope,
    intersect_hulls_polytope,
    polygon_vertices,
)
from .projection import Cylinder, enumerate_coordinate_subsets, project, project_multiset
from .relaxed import DeltaPHull, KRelaxedHull
from .simplex import (
    facet_inradius,
    facet_points,
    incenter,
    incenter_and_inradius,
    inradius,
    is_affinely_independent,
    simplex_b_vectors,
    vertex_facet_distances,
)
from .simplex_proj import project_rows_to_simplex, project_to_simplex
from .tolerance import DELTA_ATOL, close, exactly_zero, near_zero, norm_order_is
from .tverberg import (
    RadonPartition,
    TverbergPartition,
    has_tverberg_partition,
    iter_set_partitions,
    partition_intersection_nonempty,
    radon_partition,
    tverberg_partition,
    tverberg_point,
)

__all__ = [
    "Cylinder",
    "DELTA_ATOL",
    "DeltaPHull",
    "DeltaStarResult",
    "Halfspace",
    "Hull",
    "HullProjection",
    "KRelaxedHull",
    "Polytope",
    "RadonPartition",
    "TverbergPartition",
    "affine_basis",
    "affine_dimension",
    "cache_disabled",
    "cache_enabled",
    "cache_stats",
    "cached_kernel",
    "clear_cache",
    "close",
    "configure_cache",
    "set_cache_enabled",
    "convex_combination_weights",
    "delta_star",
    "distance_l1",
    "distance_linf",
    "distance_to_hull",
    "enumerate_coordinate_subsets",
    "exactly_zero",
    "f_subsets",
    "facet_inradius",
    "facet_points",
    "gamma",
    "gamma_delta_p",
    "convex_polygon_clip",
    "gamma_delta_p_point",
    "gamma_point",
    "gamma_polytope",
    "has_tverberg_partition",
    "intersect_hulls_polytope",
    "polygon_vertices",
    "holder_upper_factor",
    "hull_halfspaces",
    "in_hull",
    "incenter",
    "incenter_and_inradius",
    "inradius",
    "intersect_hulls",
    "intersection_point",
    "is_affinely_independent",
    "iter_set_partitions",
    "lp_distance",
    "lp_norm",
    "max_edge_length",
    "max_subset_distance",
    "min_edge_length",
    "near_zero",
    "nearest_point_l2",
    "norm_equivalence_bounds",
    "norm_order_is",
    "pairwise_lp_distances",
    "partition_intersection_nonempty",
    "project",
    "project_multiset",
    "project_rows_to_simplex",
    "project_to_simplex",
    "psi_k",
    "psi_k_point",
    "radon_partition",
    "separating_halfspace",
    "simplex_b_vectors",
    "supporting_halfspace",
    "tverberg_partition",
    "tverberg_point",
    "validate_p",
    "vertex_facet_distances",
]
