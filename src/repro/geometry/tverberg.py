"""Radon and Tverberg partitions (paper §8).

Tverberg's theorem: any multiset of at least ``(d+1)f + 1`` points in
``R^d`` can be partitioned into ``f + 1`` nonempty parts whose convex hulls
share a common point.  This is exactly why ``Γ(Y)`` is nonempty — hence why
exact BVC is solvable — when ``n ≥ (d+1)f + 1``: whichever ``f`` points an
adversary contributed, a Tverberg point is in the hull of every size
``n - f`` subset.

The paper's §8 observes that the theorem (and the tightness of the bound)
survives replacing ``H`` with the relaxed hulls ``H_k`` / ``H_{(δ,p)}``;
:func:`partition_intersection_nonempty` lets the benchmarks check all three
variants with one code path.

Implementation notes
--------------------
* Radon partitions (``f = 1``, ``d + 2`` points) come from a null vector of
  the homogenised point matrix — exact linear algebra.
* General Tverberg partitions are found by exhaustive search over set
  partitions into ``f + 1`` nonempty parts (checking each candidate with
  the joint-LP hull intersection).  Finding Tverberg partitions efficiently
  is a famous open problem; exhaustive search is the honest choice at the
  paper's scales (``n ≤ 13``).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, Sequence, Union

import numpy as np

from ..obs import metrics as _obs
from ..obs.perf import perf_phase
from .cache import cached_kernel
from .intersections import intersection_point
from .relaxed import DeltaPHull, KRelaxedHull
from .tolerance import near_zero, norm_order_is

__all__ = [
    "RadonPartition",
    "radon_partition",
    "TverbergPartition",
    "iter_set_partitions",
    "tverberg_partition",
    "tverberg_point",
    "has_tverberg_partition",
    "partition_intersection_nonempty",
]

PNorm = Union[float, int]


@dataclass(frozen=True)
class RadonPartition:
    """A Radon partition: two index sets with intersecting hulls."""

    part_a: tuple[int, ...]
    part_b: tuple[int, ...]
    point: np.ndarray


def radon_partition(points: np.ndarray, tol: float = 1e-12) -> RadonPartition:
    """Radon's theorem, constructively: split ``d + 2`` points in ``R^d``.

    Finds coefficients ``α`` with ``Σ α_i x_i = 0`` and ``Σ α_i = 0`` (a
    null vector of the homogenised matrix); the positive and negative
    supports give the two parts, and the common point is the matching
    convex combination.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    m, d = pts.shape
    if m < d + 2:
        raise ValueError(f"Radon partition needs at least d+2={d + 2} points, got {m}")
    _obs.inc("geometry.radon.calls")
    M = np.vstack([pts.T, np.ones(m)])  # (d+1, m)
    _, s, vt = np.linalg.svd(M)
    alpha = vt[-1]
    if s.size >= m and s[m - 1] > tol * max(1.0, s[0]):  # pragma: no cover
        raise ValueError("points admit no Radon coefficients (numerically)")
    pos = np.flatnonzero(alpha > tol)
    neg = np.flatnonzero(alpha < -tol)
    if pos.size == 0 or neg.size == 0:  # pragma: no cover - null vec has both signs
        raise ValueError("degenerate Radon coefficients")
    wa = alpha[pos] / alpha[pos].sum()
    point = wa @ pts[pos]
    return RadonPartition(tuple(int(i) for i in pos), tuple(int(i) for i in neg), point)


@dataclass(frozen=True)
class TverbergPartition:
    """A Tverberg partition with a common point of the part hulls."""

    parts: tuple[tuple[int, ...], ...]
    point: np.ndarray


def iter_set_partitions(n: int, r: int) -> Iterator[tuple[tuple[int, ...], ...]]:
    """All partitions of ``range(n)`` into exactly ``r`` nonempty parts.

    Canonical (restricted-growth) enumeration: element 0 is always in part
    0, and element ``i`` may open at most one new part — so each partition
    is produced exactly once, without the ``r!`` relabelling blowup.
    """
    if r < 1 or r > n:
        return
    assignment = [0] * n

    def rec(i: int, used: int) -> Iterator[tuple[tuple[int, ...], ...]]:
        if i == n:
            if used == r:
                parts: list[list[int]] = [[] for _ in range(r)]
                for idx, a in enumerate(assignment):
                    parts[a].append(idx)
                yield tuple(tuple(p) for p in parts)
            return
        # prune: remaining elements must be able to fill all r parts
        if used + (n - i) < r:
            return
        for a in range(min(used + 1, r)):
            assignment[i] = a
            yield from rec(i + 1, max(used, a + 1))

    yield from rec(0, 0)


def partition_intersection_nonempty(
    points: np.ndarray,
    parts: Sequence[Sequence[int]],
    hull_kind: str = "convex",
    *,
    k: Optional[int] = None,
    delta: float = 0.0,
    p: PNorm = 2,
    probe: Optional[Callable[[np.ndarray], Optional[np.ndarray]]] = None,
) -> Optional[np.ndarray]:
    """Common point of the part hulls under a chosen hull notion, or None.

    ``hull_kind``:

    * ``"convex"`` — ordinary convex hulls, exact joint LP;
    * ``"k-relaxed"`` — ``H_k`` hulls (requires ``k``); checked by testing
      the convex-hull Tverberg point first (``H ⊆ H_k``, §8) and falling
      back to a per-cylinder joint LP through :func:`repro.geometry
      .intersections.psi_k_point`-style encoding;
    * ``"delta-p"`` — ``H_{(δ,p)}`` hulls; same containment shortcut, with
      the convex case as witness.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    groups = [pts[list(part)] for part in parts]
    if any(g.shape[0] == 0 for g in groups):
        raise ValueError("all parts must be nonempty")
    base = intersection_point(groups)
    if hull_kind == "convex":
        return base
    if hull_kind == "k-relaxed":
        if k is None:
            raise ValueError("k-relaxed check requires k")
        if base is not None:
            return base  # H(Y_l) ⊆ H_k(Y_l): a convex witness suffices (§8)
        # No convex witness: search the relaxed intersection directly.
        from .intersections import _HullSystem
        from .projection import enumerate_coordinate_subsets, project_multiset

        d = pts.shape[1]
        sys_ = _HullSystem(d)
        for g in groups:
            for D in enumerate_coordinate_subsets(d, k):
                sys_.add_hull_constraint(project_multiset(g, D), coords=list(D))
        return sys_.lexicographic_point()
    if hull_kind == "delta-p":
        if base is not None:
            return base  # H(Y_l) ⊆ H_{(δ,p)}(Y_l)
        if near_zero(delta):
            return None
        if norm_order_is(p, 1.0) or math.isinf(float(p)):
            from .intersections import _HullSystem

            sys_ = _HullSystem(pts.shape[1])
            for g in groups:
                sys_.add_hull_constraint(g, delta=delta, p=p)
            return sys_.lexicographic_point()
        # p = 2 etc: accept any point whose max distance to parts is <= delta.
        candidate = pts.mean(axis=0)
        hulls = [DeltaPHull(g, delta, p) for g in groups]
        if all(h.contains(candidate) for h in hulls):
            return candidate
        return None
    raise ValueError(f"unknown hull_kind {hull_kind!r}")


@cached_kernel("tverberg_partition")
def _tverberg_search(
    pts: np.ndarray, r: int, hull_kind: str, **kwargs: Any
) -> Optional[TverbergPartition]:
    """Exhaustive canonical-order search (memoised; a ``probe`` callable
    in ``kwargs`` is not canonicalisable and bypasses the cache)."""
    reg = _obs.current_registry()
    for parts in iter_set_partitions(pts.shape[0], r):
        reg.inc("geometry.tverberg.partitions_checked")
        point = partition_intersection_nonempty(pts, parts, hull_kind, **kwargs)
        if point is not None:
            return TverbergPartition(parts, point)
    return None


def tverberg_partition(
    points: np.ndarray, r: int, hull_kind: str = "convex", **kwargs: Any
) -> Optional[TverbergPartition]:
    """First Tverberg partition of ``points`` into ``r`` parts, or None.

    Exhaustive search in canonical partition order; deterministic for a
    given input.  The search itself is memoised per process (the call
    counter and wall-time histogram stay live per caller).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    reg = _obs.current_registry()
    reg.inc("geometry.tverberg.calls")
    t0 = time.perf_counter()
    try:
        with perf_phase("geometry.tverberg"):
            return _tverberg_search(pts, r, hull_kind, **kwargs)
    finally:
        reg.observe("geometry.tverberg.seconds", time.perf_counter() - t0)


def has_tverberg_partition(points: np.ndarray, r: int) -> bool:
    """True iff some partition into ``r`` parts has intersecting hulls."""
    return tverberg_partition(points, r) is not None


def tverberg_point(points: np.ndarray, f: int) -> np.ndarray:
    """A Tverberg point for ``f + 1`` parts; guaranteed to exist when
    ``len(points) >= (d+1)f + 1``.

    Raises
    ------
    ValueError
        If no partition exists (only possible below the Tverberg bound).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n, d = pts.shape
    result = tverberg_partition(pts, f + 1)
    if result is None:
        if n >= (d + 1) * f + 1:  # pragma: no cover - contradicts the theorem
            raise RuntimeError("Tverberg's theorem violated — numerical failure")
        raise ValueError(
            f"no Tverberg partition: n={n} < (d+1)f+1={(d + 1) * f + 1}"
        )
    return result.point


# Re-export for callers that want the k-relaxed check's type without the
# heavy imports.
_ = KRelaxedHull
