"""Point-to-convex-hull distances under L_p norms.

Everything in the paper that touches a hull reduces to one primitive:

    ``dist_p(x, H(S)) = min { ||x - y||_p : y in H(S) }``

where ``H(S)`` is the convex hull of a finite multiset ``S`` of points in
``R^d``.  Parameterising ``y = S.T @ lam`` with ``lam`` on the probability
simplex turns this into a convex program over ``lam``:

* **p = 2** — a convex quadratic over the simplex.  Solved with accelerated
  projected gradient (FISTA) using the exact simplex projection, followed by
  an active-set KKT polish that recovers the exact solution on the identified
  support.  This is the hot path (the minimax solver calls it thousands of
  times) so it is pure vectorised NumPy.
* **p = 1 and p = inf** — linear programs, solved exactly with
  ``scipy.optimize.linprog`` (HiGHS).
* **general p** — a smooth convex objective ``sum |r_i|^p`` over the simplex,
  solved with SLSQP warm-started from the L2 projection.

Membership (``x in H(S)``) is the special case ``dist_inf(x, H(S)) <= tol``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
from scipy.optimize import linprog, minimize

from ..obs import metrics as _obs
from .norms import lp_norm, validate_p
from .simplex_proj import project_to_simplex
from .tolerance import norm_order_is

__all__ = [
    "HullProjection",
    "nearest_point_l2",
    "distance_to_hull",
    "distance_l1",
    "distance_linf",
    "in_hull",
    "convex_combination_weights",
]

PNorm = Union[float, int]

_EPS_SUPPORT = 1e-9


@dataclass(frozen=True)
class HullProjection:
    """Result of projecting a point onto a convex hull.

    Attributes
    ----------
    point:
        The nearest point of the hull (under the requested norm).
    distance:
        ``||x - point||_p``.
    weights:
        Convex-combination weights ``lam`` with ``S.T @ lam == point``.
    """

    point: np.ndarray
    distance: float
    weights: np.ndarray


def _as_points(points: np.ndarray) -> np.ndarray:
    pts = np.asarray(points, dtype=float)
    if pts.ndim == 1:
        pts = pts[None, :]
    if pts.ndim != 2:
        raise ValueError(f"points must be a (m, d) array, got shape {pts.shape}")
    if pts.shape[0] == 0:
        raise ValueError("convex hull of an empty point set is undefined")
    return pts


def _polish_active_set(pts: np.ndarray, x: np.ndarray, lam: np.ndarray) -> np.ndarray:
    """Exact KKT solve on the support identified by an approximate ``lam``.

    Solves ``min ||pts[S].T @ mu - x||_2^2  s.t.  sum(mu) = 1`` over the
    support ``S``, via the bordered normal equations.  If the resulting
    ``mu`` is (numerically) nonnegative and improves the objective, it is
    returned in place of ``lam``.
    """
    support = np.flatnonzero(lam > _EPS_SUPPORT)
    if support.size == 0:
        support = np.array([int(np.argmax(lam))])
    A = pts[support]  # (k, d)
    k = A.shape[0]
    G = A @ A.T
    rhs = A @ x
    # Bordered system: [G 1; 1^T 0] [mu; nu] = [rhs; 1]
    M = np.zeros((k + 1, k + 1))
    M[:k, :k] = G
    M[:k, k] = 1.0
    M[k, :k] = 1.0
    b = np.zeros(k + 1)
    b[:k] = rhs
    b[k] = 1.0
    try:
        sol = np.linalg.lstsq(M, b, rcond=None)[0]
    except np.linalg.LinAlgError:  # pragma: no cover - lstsq rarely fails
        return lam
    mu = sol[:k]
    if np.min(mu) < -1e-10:
        return lam
    mu = np.maximum(mu, 0.0)
    s = mu.sum()
    if s <= 0:
        return lam
    mu /= s
    full = np.zeros_like(lam)
    full[support] = mu
    old = float(np.sum((pts.T @ lam - x) ** 2))
    new = float(np.sum((pts.T @ full - x) ** 2))
    return full if new <= old + 1e-15 else lam


def _wolfe_min_norm(
    P: np.ndarray, tol: float, max_iter: int = 200
) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """Wolfe's minimum-norm-point algorithm over ``conv(rows of P)``.

    Returns ``(y, lam)`` with ``y = P.T @ lam`` the (near-)exact minimum
    norm point.  Finite, exact up to linear-algebra precision, and fast
    for the small point counts (m <= ~30) the consensus layer uses —
    unlike first-order methods it has no slow convergence tail.
    Returns None on numerical breakdown (caller falls back to FISTA).
    """
    m = P.shape[0]
    norms2 = np.einsum("ij,ij->i", P, P)
    scale = max(1.0, float(norms2.max()))
    j0 = int(np.argmin(norms2))
    support = [j0]
    lam_s = np.array([1.0])

    for _ in range(max_iter):
        y = lam_s @ P[support]
        # optimality: min_j <y, p_j>  >=  <y, y> - tol
        dots = P @ y
        j = int(np.argmin(dots))
        yy = float(y @ y)
        if dots[j] >= yy - tol * scale:
            lam = np.zeros(m)
            lam[support] = lam_s
            return y, lam
        if j in support:  # no progress possible; accept current point
            lam = np.zeros(m)
            lam[support] = lam_s
            return y, lam
        support.append(j)
        lam_s = np.append(lam_s, 0.0)
        # inner loop: affine minimisation + line search back into simplex
        for _ in range(max_iter):
            A = P[support]
            k = A.shape[0]
            M = np.empty((k + 1, k + 1))
            M[:k, :k] = A @ A.T
            M[:k, k] = 1.0
            M[k, :k] = 1.0
            M[k, k] = 0.0
            rhs = np.zeros(k + 1)
            rhs[k] = 1.0
            try:
                alpha = np.linalg.lstsq(M, rhs, rcond=None)[0][:k]
            except np.linalg.LinAlgError:  # pragma: no cover
                return None
            if np.min(alpha) >= -1e-12:
                lam_s = np.maximum(alpha, 0.0)
                s = lam_s.sum()
                if s <= 0:  # pragma: no cover - degenerate system
                    return None
                lam_s /= s
                break
            # move as far toward alpha as the simplex allows
            neg = alpha < lam_s  # candidates limiting the step
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(
                    alpha < 0, lam_s / (lam_s - alpha), np.inf
                )
            theta = float(np.min(ratios))
            theta = min(max(theta, 0.0), 1.0)
            lam_s = (1.0 - theta) * lam_s + theta * alpha
            lam_s[lam_s < 1e-14] = 0.0
            keep = lam_s > 0.0
            if not np.any(keep):  # pragma: no cover
                return None
            support = [s_ for s_, k_ in zip(support, keep) if k_]
            lam_s = lam_s[keep]
            s = lam_s.sum()
            lam_s /= s
        else:  # pragma: no cover - inner loop failed to settle
            return None
    # Outer iteration cap reached (numerical ties can cycle): return the
    # best feasible point found — still a valid upper bound on the
    # distance, which is all callers require of a non-certified answer.
    lam = np.zeros(m)
    lam[support] = lam_s
    return lam_s @ P[support], lam


def nearest_point_l2(
    points: np.ndarray,
    x: np.ndarray,
    *,
    max_iter: int = 5000,
    tol: float = 1e-12,
) -> HullProjection:
    """Euclidean projection of ``x`` onto ``H(points)``.

    Primary path: Wolfe's exact minimum-norm-point algorithm on the
    translated points.  Fallback (numerical breakdown only): FISTA on
    ``f(lam) = 0.5 * ||points.T @ lam - x||^2`` over the probability
    simplex, polished with an exact active-set solve.
    """
    pts = _as_points(points)
    x = np.asarray(x, dtype=float).ravel()
    m, d = pts.shape
    if x.size != d:
        raise ValueError(f"point dimension {x.size} != hull dimension {d}")
    if m == 1:
        w = np.array([1.0])
        return HullProjection(pts[0].copy(), float(np.linalg.norm(x - pts[0])), w)

    # Quick exit: if x is one of the points, distance is zero.
    exact = np.flatnonzero(np.all(pts == x, axis=1))
    if exact.size:
        w = np.zeros(m)
        w[exact[0]] = 1.0
        return HullProjection(x.copy(), 0.0, w)

    wolfe = _wolfe_min_norm(pts - x, tol=1e-14)
    if wolfe is not None:
        y, lam = wolfe
        point = x + y
        return HullProjection(point, float(np.linalg.norm(y)), lam)

    G = pts @ pts.T  # (m, m) Gram matrix; gradient = G @ lam - pts @ x
    c = pts @ x
    # Lipschitz constant of the gradient = largest eigenvalue of G.
    L = float(np.linalg.norm(G, 2)) if m > 1 else float(G[0, 0])
    if L <= 0:
        L = 1.0
    step = 1.0 / L

    lam = np.full(m, 1.0 / m)
    y = lam.copy()
    t_k = 1.0
    xx = float(x @ x)
    scale = max(1.0, xx, float(np.max(np.abs(G))))
    best_sq = math.inf
    best_lam = lam
    stall = 0
    for _ in range(max_iter):
        grad = G @ y - c
        lam_new = project_to_simplex(y - step * grad)
        # FISTA with adaptive restart (O'Donoghue & Candès): momentum is
        # reset whenever it points uphill, restoring fast monotone decay.
        if (y - lam_new) @ (lam_new - lam) > 0:
            t_k = 1.0
            y = lam_new
        else:
            t_new = 0.5 * (1.0 + math.sqrt(1.0 + 4.0 * t_k * t_k))
            y = lam_new + ((t_k - 1.0) / t_new) * (lam_new - lam)
            t_k = t_new
        lam = lam_new
        dist_sq = float(lam @ G @ lam) - 2.0 * float(c @ lam) + xx
        if dist_sq < best_sq - tol * scale:
            best_sq, best_lam, stall = dist_sq, lam, 0
        else:
            if dist_sq < best_sq:
                best_sq, best_lam = dist_sq, lam
            stall += 1
            if stall >= 8:  # no meaningful progress for 8 iterations
                break
    lam = best_lam

    lam = _polish_active_set(pts, x, lam)
    point = pts.T @ lam
    dist = float(np.linalg.norm(x - point))
    # Near-zero distances: FISTA plateaus around sqrt(machine-eps) for
    # interior points; settle membership exactly with one LP so interior
    # points report distance 0 (and exterior ones keep the FISTA answer).
    if 0.0 < dist <= 1e-5 * max(1.0, float(np.max(np.abs(pts)))):
        exact_proj = _distance_lp_linprog(pts, x, math.inf)
        if exact_proj.distance <= 1e-9 * max(1.0, float(np.max(np.abs(pts)))):
            return HullProjection(x.copy(), 0.0, exact_proj.weights)
    return HullProjection(point, dist, lam)


def _distance_lp_linprog(pts: np.ndarray, x: np.ndarray, p: float) -> HullProjection:
    """Exact LP solve for p in {1, inf}."""
    m, d = pts.shape
    if math.isinf(p):
        # variables: lam (m), t (1); minimize t
        # pts.T @ lam - x <= t,  x - pts.T @ lam <= t,  sum lam = 1, lam >= 0
        n_var = m + 1
        cobj = np.zeros(n_var)
        cobj[m] = 1.0
        A_ub = np.zeros((2 * d, n_var))
        A_ub[:d, :m] = pts.T
        A_ub[:d, m] = -1.0
        A_ub[d:, :m] = -pts.T
        A_ub[d:, m] = -1.0
        b_ub = np.concatenate([x, -x])
        A_eq = np.zeros((1, n_var))
        A_eq[0, :m] = 1.0
        b_eq = np.array([1.0])
        bounds = [(0.0, None)] * m + [(0.0, None)]
    else:  # p == 1
        # variables: lam (m), s (d); minimize sum(s)
        n_var = m + d
        cobj = np.zeros(n_var)
        cobj[m:] = 1.0
        A_ub = np.zeros((2 * d, n_var))
        A_ub[:d, :m] = pts.T
        A_ub[:d, m:] = -np.eye(d)
        A_ub[d:, :m] = -pts.T
        A_ub[d:, m:] = -np.eye(d)
        b_ub = np.concatenate([x, -x])
        A_eq = np.zeros((1, n_var))
        A_eq[0, :m] = 1.0
        b_eq = np.array([1.0])
        bounds = [(0.0, None)] * n_var
    res = linprog(
        cobj, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds, method="highs"
    )
    if not res.success:  # pragma: no cover - the LP is always feasible
        raise RuntimeError(f"hull-distance LP failed: {res.message}")
    lam = np.asarray(res.x[:m])
    lam = np.maximum(lam, 0.0)
    lam /= lam.sum()
    point = pts.T @ lam
    return HullProjection(point, float(lp_norm(x - point, p)), lam)


def distance_l1(points: np.ndarray, x: np.ndarray) -> float:
    """``dist_1(x, H(points))`` via exact LP."""
    pts = _as_points(points)
    return _distance_lp_linprog(pts, np.asarray(x, dtype=float).ravel(), 1.0).distance


def distance_linf(points: np.ndarray, x: np.ndarray) -> float:
    """``dist_inf(x, H(points))`` via exact LP."""
    pts = _as_points(points)
    return _distance_lp_linprog(pts, np.asarray(x, dtype=float).ravel(), math.inf).distance


def _distance_lp_general(pts: np.ndarray, x: np.ndarray, p: float) -> HullProjection:
    """SLSQP solve of ``min sum |r|^p`` over the simplex for general p > 1."""
    m, _ = pts.shape
    warm = nearest_point_l2(pts, x)
    lam0 = warm.weights

    def fun(lam: np.ndarray) -> float:
        r = pts.T @ lam - x
        return float(np.sum(np.abs(r) ** p))

    def jac(lam: np.ndarray) -> np.ndarray:
        r = pts.T @ lam - x
        g = p * np.sign(r) * np.abs(r) ** (p - 1.0)
        return pts @ g

    cons = [{"type": "eq", "fun": lambda lam: lam.sum() - 1.0, "jac": lambda lam: np.ones(m)}]
    bounds = [(0.0, 1.0)] * m
    res = minimize(
        fun,
        lam0,
        jac=jac,
        bounds=bounds,
        constraints=cons,
        method="SLSQP",
        options={"maxiter": 300, "ftol": 1e-14},
    )
    lam = np.maximum(res.x, 0.0)
    s = lam.sum()
    lam = lam / s if s > 0 else lam0
    # Keep whichever of warm start / SLSQP result is better under L_p.
    cand = pts.T @ lam
    if lp_norm(x - cand, p) > lp_norm(x - warm.point, p):
        lam, cand = warm.weights, warm.point
    return HullProjection(cand, float(lp_norm(x - cand, p)), lam)


def distance_to_hull(
    points: np.ndarray, x: np.ndarray, p: PNorm = 2
) -> HullProjection:
    """``dist_p(x, H(points))`` with the nearest point and its weights.

    Dispatches on ``p``: exact LP for 1 and inf, FISTA+polish for 2, SLSQP
    for other finite ``p``.
    """
    _obs.inc("geometry.distance_to_hull.calls")
    p = validate_p(p)
    pts = _as_points(points)
    xv = np.asarray(x, dtype=float).ravel()
    if xv.size != pts.shape[1]:
        raise ValueError(f"point dimension {xv.size} != hull dimension {pts.shape[1]}")
    if norm_order_is(p, 2.0):
        return nearest_point_l2(pts, xv)
    if norm_order_is(p, 1.0) or math.isinf(p):
        return _distance_lp_linprog(pts, xv, p)
    return _distance_lp_general(pts, xv, p)


def in_hull(points: np.ndarray, x: np.ndarray, tol: float = 1e-9) -> bool:
    """Membership test ``x in H(points)`` (within ``tol`` in L_inf)."""
    return distance_linf(points, x) <= tol


def convex_combination_weights(
    points: np.ndarray, x: np.ndarray, tol: float = 1e-9
) -> np.ndarray:
    """Weights expressing ``x`` as a convex combination of ``points``.

    Raises ``ValueError`` if ``x`` is not in the hull (within ``tol``).
    """
    pts = _as_points(points)
    proj = _distance_lp_linprog(pts, np.asarray(x, dtype=float).ravel(), math.inf)
    if proj.distance > tol:
        raise ValueError(
            f"point is not in the hull (L_inf distance {proj.distance:.3g} > tol {tol:.3g})"
        )
    return proj.weights
