"""L_p norms and the norm-equivalence inequalities used throughout the paper.

The paper measures distances with the :math:`L_p` norm

.. math::

    \\|u - v\\|_p = \\Big(\\sum_{i=1}^d |u[i] - v[i]|^p\\Big)^{1/p},

with :math:`p = \\infty` denoting the max norm.  Two norm inequalities are
load-bearing in the proofs:

* ``norm_inf(x) <= norm_p(x)`` for every ``p >= 1`` (used to transfer the
  necessity proofs from the :math:`L_\\infty` construction to every
  :math:`L_p`, Theorems 5 and 6);
* Hölder's inequality (paper Theorem 13): for ``1 <= r <= p``,
  ``norm_p(x) <= norm_r(x) <= d**(1/r - 1/p) * norm_p(x)`` — used to transfer
  the :math:`\\delta^*` bounds from :math:`L_2` to general :math:`L_p`
  (Theorem 14).

All functions here are vectorised over an optional leading axis so that bulk
workload evaluation (thousands of points) stays in NumPy, per the HPC guide's
"vectorise the inner loop" rule.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

from .tolerance import exactly_zero, norm_order_is

__all__ = [
    "lp_norm",
    "lp_distance",
    "pairwise_lp_distances",
    "max_edge_length",
    "min_edge_length",
    "holder_upper_factor",
    "norm_equivalence_bounds",
    "validate_p",
]

PNorm = Union[float, int]


def validate_p(p: PNorm) -> float:
    """Validate and canonicalise a norm order ``p``.

    Parameters
    ----------
    p:
        Norm order; any real ``p >= 1`` or ``math.inf``.

    Returns
    -------
    float
        The canonical float value of ``p``.

    Raises
    ------
    ValueError
        If ``p < 1`` (not a norm — the triangle inequality fails).
    """
    pf = float(p)
    if math.isnan(pf) or pf < 1.0:
        raise ValueError(f"L_p norm requires p >= 1, got p={p!r}")
    return pf


def lp_norm(x: np.ndarray, p: PNorm = 2, axis: int = -1) -> np.ndarray:
    """Compute ``||x||_p`` along ``axis``.

    Handles ``p = inf`` (max norm), ``p = 1`` and ``p = 2`` with dedicated
    fast paths, and general ``p`` via the power formula.
    """
    p = validate_p(p)
    x = np.asarray(x, dtype=float)
    if math.isinf(p):
        return np.max(np.abs(x), axis=axis)
    if norm_order_is(p, 1.0):
        return np.sum(np.abs(x), axis=axis)
    if norm_order_is(p, 2.0):
        return np.sqrt(np.sum(x * x, axis=axis))
    ax = np.abs(x)
    # Guard against overflow for large p by factoring out the max element.
    # Exact-zero guard: scaling by a tiny non-zero max is correct, only a
    # literal zero divides badly (see repro.geometry.tolerance.exactly_zero).
    m = np.max(ax, axis=axis, keepdims=True)
    safe_m = np.where(exactly_zero(m), 1.0, m)
    scaled = ax / safe_m
    out = np.squeeze(m, axis=axis) * np.sum(scaled**p, axis=axis) ** (1.0 / p)
    return out


def lp_distance(u: np.ndarray, v: np.ndarray, p: PNorm = 2) -> float:
    """Distance ``||u - v||_p`` between two points."""
    u = np.asarray(u, dtype=float)
    v = np.asarray(v, dtype=float)
    if u.shape != v.shape:
        raise ValueError(f"shape mismatch: {u.shape} vs {v.shape}")
    return float(lp_norm(u - v, p))


def pairwise_lp_distances(points: np.ndarray, p: PNorm = 2) -> np.ndarray:
    """All pairwise distances between rows of ``points`` (m x d).

    Returns an ``(m, m)`` symmetric matrix with zero diagonal.  Vectorised:
    builds the difference tensor once rather than looping over pairs.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    diffs = pts[:, None, :] - pts[None, :, :]
    return lp_norm(diffs, p, axis=-1)


def max_edge_length(points: np.ndarray, p: PNorm = 2) -> float:
    """``max_{e in E} ||e||_p`` over all edges between rows of ``points``.

    This is the quantity ``max_{e in E+} ||e||_p`` from the paper's Table 1
    when ``points`` are the non-faulty inputs.  Returns ``0.0`` for fewer
    than two points.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[0] < 2:
        return 0.0
    return float(np.max(pairwise_lp_distances(pts, p)))


def min_edge_length(points: np.ndarray, p: PNorm = 2) -> float:
    """``min_{e in E} ||e||_p`` over all edges between distinct rows.

    Note this is the minimum over *pairs of points*, including duplicate
    points (distance zero) — matching the multiset semantics of the paper.
    Returns ``inf`` for fewer than two points.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    m = pts.shape[0]
    if m < 2:
        return math.inf
    dmat = pairwise_lp_distances(pts, p)
    iu = np.triu_indices(m, k=1)
    return float(np.min(dmat[iu]))


def holder_upper_factor(d: int, r: PNorm, p: PNorm) -> float:
    """The factor ``d**(1/r - 1/p)`` from Hölder's inequality (Theorem 13).

    For ``1 <= r <= p``:  ``norm_r(x) <= d**(1/r - 1/p) * norm_p(x)``.
    ``1/inf`` is treated as ``0``.
    """
    r = validate_p(r)
    p = validate_p(p)
    if r > p:
        raise ValueError(f"Hölder factor requires r <= p, got r={r}, p={p}")
    inv_r = 0.0 if math.isinf(r) else 1.0 / r
    inv_p = 0.0 if math.isinf(p) else 1.0 / p
    return float(d) ** (inv_r - inv_p)


def norm_equivalence_bounds(x: np.ndarray, r: PNorm, p: PNorm) -> tuple[float, float, float]:
    """Evaluate both sides of Theorem 13 for a vector ``x``.

    Returns ``(norm_p, norm_r, d**(1/r - 1/p) * norm_p)``; Theorem 13 asserts
    ``norm_p <= norm_r <= d**(1/r-1/p) * norm_p`` for ``1 <= r <= p``.
    """
    x = np.asarray(x, dtype=float).ravel()
    np_ = float(lp_norm(x, p))
    nr = float(lp_norm(x, r))
    return np_, nr, holder_upper_factor(x.size, r, p) * np_
