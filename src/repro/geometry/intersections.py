"""Intersections of (relaxed) hulls: the paper's ``Γ`` and ``Ψ`` operators.

For a multiset ``Y`` with ``|Y| >= f`` the paper defines (§3):

.. math::

    Γ(Y) = \\bigcap_{T ⊆ Y, |T| = |Y| - f} H(T)

— the set of points guaranteed to be in the convex hull of the non-faulty
inputs *whichever* ``f`` inputs are faulty.  Exact BVC decides a point of
``Γ``; Tverberg's theorem makes it nonempty when ``|Y| >= (d+1)f + 1``.

The k-relaxed analogue from the proof of Theorem 3:

.. math::

    Ψ(Y) = \\bigcap_{T} H_k(T) = \\bigcap_{D ∈ D_k, T} g_D^{-1}(H(g_D(T)))

and the (δ,p)-relaxed analogue used by algorithm ALGO (§9):

.. math::

    Γ_{(δ,p)}(S) = \\bigcap_{T ⊆ S, |T| = |S| - f} H_{(δ,p)}(T).

All the emptiness questions are convex feasibility problems.  For hull and
cylinder intersections (and for ``p ∈ {1, ∞}``) they are *linear* programs,
solved exactly with HiGHS; ``p = 2`` feasibility is delegated to the
min-max solver in :mod:`repro.geometry.minimax`.

Deterministic point selection — the paper's algorithms require every
non-faulty process to "deterministically choose a point" from these sets —
is implemented as a lexicographic-minimum sequence of LPs, which is a pure
function of the input multiset.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Iterable, Optional, Sequence, Union

import numpy as np
from scipy.optimize import linprog

from .cache import cached_kernel
from .norms import validate_p
from .projection import enumerate_coordinate_subsets, project_multiset
from .tolerance import near_zero, norm_order_is

__all__ = [
    "HullSystem",
    "f_subsets",
    "intersect_hulls",
    "intersection_point",
    "gamma",
    "gamma_point",
    "psi_k",
    "psi_k_point",
    "gamma_delta_p",
    "gamma_delta_p_point",
]

PNorm = Union[float, int]

_LEX_SLACK = 1e-8


class _HullSystem:
    """Incrementally-built LP encoding ``x ∈ ∩_i H_{(δ_i, p_i)}(A_i)``.

    Variables are laid out as ``[x (d), block_1, block_2, ...]`` where each
    block holds the convex weights (plus L1 slack variables when needed)
    for one hull constraint.  ``δ_i = 0`` encodes plain hull membership;
    δ > 0 with p ∈ {1, inf} encodes fattened membership.  Projection
    constraints (cylinders) restrict only a coordinate subset of ``x``.
    """

    def __init__(self, d: int):
        self.d = d
        self.n_extra = 0
        self.rows_eq: list[tuple[np.ndarray, float]] = []
        self.rows_ub: list[tuple[np.ndarray, float]] = []
        self.blocks: list[tuple[int, int]] = []  # (offset, size) per block

    # -- variable bookkeeping ------------------------------------------------
    def _alloc(self, size: int) -> int:
        off = self.d + self.n_extra
        self.n_extra += size
        self.blocks.append((off, size))
        return off

    def _row(self) -> np.ndarray:
        return np.zeros(self.d + self.n_extra)

    def add_hull_constraint(
        self,
        pts: np.ndarray,
        coords: Optional[Sequence[int]] = None,
        delta: float = 0.0,
        p: PNorm = math.inf,
    ) -> None:
        """Require ``dist_p(x[coords], H(pts)) <= delta``.

        ``pts`` is ``(m, k)`` with ``k = len(coords)`` (``coords`` defaults
        to all coordinates).  ``delta = 0`` gives exact membership; for
        ``delta > 0`` only ``p ∈ {1, inf}`` are linear.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=float))
        m, k = pts.shape
        if coords is None:
            coords = list(range(self.d))
        coords = list(coords)
        if len(coords) != k:
            raise ValueError(f"{len(coords)} coords vs point dim {k}")
        if delta < 0:
            raise ValueError("delta must be >= 0")
        p = validate_p(p)
        fattened = not near_zero(delta)
        if fattened and not (norm_order_is(p, 1.0) or math.isinf(p)):
            raise ValueError("linear encoding needs p in {1, inf} when delta > 0")

        lam_off = self._alloc(m)
        use_l1_slack = fattened and norm_order_is(p, 1.0)
        s_off = self._alloc(k) if use_l1_slack else None

        n_now = self.d + self.n_extra

        def pad(row: np.ndarray) -> np.ndarray:
            out = np.zeros(n_now)
            out[: row.size] = row
            return out

        # Re-pad previously recorded rows lazily at assembly time instead:
        # we record rows at current width and pad during assemble().

        # sum(lam) == 1
        row = np.zeros(n_now)
        row[lam_off : lam_off + m] = 1.0
        self.rows_eq.append((row, 1.0))

        if not fattened:
            # x[coords] - pts.T @ lam == 0
            for j in range(k):
                row = np.zeros(n_now)
                row[coords[j]] = 1.0
                row[lam_off : lam_off + m] = -pts[:, j]
                self.rows_eq.append((row, 0.0))
        elif math.isinf(p):
            # |x[coords] - pts.T @ lam| <= delta componentwise
            for j in range(k):
                row = np.zeros(n_now)
                row[coords[j]] = 1.0
                row[lam_off : lam_off + m] = -pts[:, j]
                self.rows_ub.append((row, delta))
                self.rows_ub.append((-row, delta))
        else:  # p == 1 with slack s: |resid_j| <= s_j, sum s <= delta
            assert s_off is not None
            for j in range(k):
                row = np.zeros(n_now)
                row[coords[j]] = 1.0
                row[lam_off : lam_off + m] = -pts[:, j]
                row[s_off + j] = -1.0
                self.rows_ub.append((row, 0.0))
                row2 = np.zeros(n_now)
                row2[coords[j]] = -1.0
                row2[lam_off : lam_off + m] = pts[:, j]
                row2[s_off + j] = -1.0
                self.rows_ub.append((row2, 0.0))
            row = np.zeros(n_now)
            row[s_off : s_off + k] = 1.0
            self.rows_ub.append((row, delta))
        _ = pad  # silence linters; rows already use current width

    # -- assembly & solving ---------------------------------------------------
    def _assemble(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list]:
        n = self.d + self.n_extra

        def padded(
            rows: list[tuple[np.ndarray, float]],
        ) -> tuple[np.ndarray, np.ndarray]:
            if not rows:
                return np.zeros((0, n)), np.zeros(0)
            A = np.zeros((len(rows), n))
            b = np.zeros(len(rows))
            for i, (row, rhs) in enumerate(rows):
                A[i, : row.size] = row
                b[i] = rhs
            return A, b

        A_eq, b_eq = padded(self.rows_eq)
        A_ub, b_ub = padded(self.rows_ub)
        bounds = [(None, None)] * self.d + [(0.0, None)] * self.n_extra
        return A_eq, b_eq, A_ub, b_ub, bounds

    def solve(self, objective: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """Solve the LP; returns the full variable vector or None if infeasible."""
        A_eq, b_eq, A_ub, b_ub, bounds = self._assemble()
        n = self.d + self.n_extra
        c = np.zeros(n)
        if objective is not None:
            c[: objective.size] = objective
        res = linprog(
            c,
            A_ub=A_ub if A_ub.size else None,
            b_ub=b_ub if b_ub.size else None,
            A_eq=A_eq if A_eq.size else None,
            b_eq=b_eq if b_eq.size else None,
            bounds=bounds,
            method="highs",
        )
        if not res.success:
            return None
        return np.asarray(res.x)

    def feasible(self) -> bool:
        return self.solve() is not None

    def minimize_pair_linf(self, d: int) -> Optional[tuple[float, np.ndarray]]:
        """Minimise ``||x[:d] - x[d:2d]||_inf`` over the feasible set.

        Used by the impossibility demonstrations (Appendices B and C): the
        system's first ``2d`` variables encode two candidate outputs
        ``(v1, v2)`` under different constraint sets, and the minimum
        achievable L_inf separation lower-bounds the disagreement any
        algorithm is forced into.  Returns ``(min_separation, full_x)`` or
        None when the system is infeasible.
        """
        if self.d < 2 * d:
            raise ValueError(f"system has {self.d} point vars, need >= {2 * d}")
        A_eq, b_eq, A_ub, b_ub, bounds = self._assemble()
        n = self.d + self.n_extra
        # extend every row with a zero column for t, add |v1_j - v2_j| <= t
        def widen(A: np.ndarray) -> np.ndarray:
            return np.hstack([A, np.zeros((A.shape[0], 1))]) if A.size else np.zeros((0, n + 1))

        extra = []
        for j in range(d):
            row = np.zeros(n + 1)
            row[j] = 1.0
            row[d + j] = -1.0
            row[n] = -1.0
            extra.append(row)
            row2 = np.zeros(n + 1)
            row2[j] = -1.0
            row2[d + j] = 1.0
            row2[n] = -1.0
            extra.append(row2)
        A_ub2 = np.vstack([widen(A_ub)] + [np.array(extra)]) if extra else widen(A_ub)
        b_ub2 = np.concatenate([b_ub, np.zeros(2 * d)])
        c = np.zeros(n + 1)
        c[n] = 1.0
        res = linprog(
            c,
            A_ub=A_ub2,
            b_ub=b_ub2,
            A_eq=widen(A_eq) if A_eq.size else None,
            b_eq=b_eq if A_eq.size else None,
            bounds=list(bounds) + [(0.0, None)],
            method="highs",
        )
        if not res.success:
            return None
        return float(res.x[n]), np.asarray(res.x[: self.d])

    def lexicographic_point(self) -> Optional[np.ndarray]:
        """Lexicographically-minimal ``x`` in the feasible set (or None).

        Minimises ``x[0]``, then pins ``x[0]`` (with a small slack to stay
        numerically feasible) and minimises ``x[1]``, and so on.  Pure
        function of the constraint system, hence identical at every
        process given identical inputs — the "deterministic choice" the
        paper's algorithms require.
        """
        sol = self.solve()
        if sol is None:
            return None
        for j in range(self.d):
            obj = np.zeros(self.d)
            obj[j] = 1.0
            sol_j = self.solve(obj)
            if sol_j is None:  # pragma: no cover - monotone pinning stays feasible
                break
            opt = sol_j[j]
            row = np.zeros(self.d + self.n_extra)
            row[j] = 1.0
            self.rows_ub.append((row, opt + _LEX_SLACK))
            sol = sol_j
        return sol[: self.d]


#: Public alias — the incremental LP builder is reusable by callers that
#: need custom combinations of hull/cylinder constraints (e.g. the
#: impossibility demonstrations in :mod:`repro.core.lower_bounds`).
HullSystem = _HullSystem


# ---------------------------------------------------------------------------
# subset enumeration
# ---------------------------------------------------------------------------

def f_subsets(n: int, f: int) -> list[tuple[int, ...]]:
    """Index tuples of every size ``n - f`` subset of ``range(n)``.

    These index the multisets ``T ⊆ Y`` with ``|T| = |Y| - f`` from the
    paper's ``Γ`` definition.
    """
    if f < 0 or f > n:
        raise ValueError(f"need 0 <= f <= n, got n={n}, f={f}")
    return list(combinations(range(n), n - f))


# ---------------------------------------------------------------------------
# plain hull intersections
# ---------------------------------------------------------------------------

def intersect_hulls(point_sets: Iterable[np.ndarray]) -> bool:
    """True iff ``∩_i H(A_i)`` is nonempty (joint LP feasibility)."""
    return intersection_point(point_sets) is not None


@cached_kernel("intersection_point")
def intersection_point(point_sets: Iterable[np.ndarray]) -> Optional[np.ndarray]:
    """A deterministic point of ``∩_i H(A_i)``, or None when empty.

    Memoised per process under canonical keys (only when ``point_sets``
    is a concrete list/tuple of arrays; generators bypass the cache).
    """
    sets = [np.atleast_2d(np.asarray(A, dtype=float)) for A in point_sets]
    if not sets:
        raise ValueError("need at least one hull")
    d = sets[0].shape[1]
    if any(A.shape[1] != d for A in sets):
        raise ValueError("all hulls must share the ambient dimension")
    sys_ = _HullSystem(d)
    for A in sets:
        sys_.add_hull_constraint(A)
    return sys_.lexicographic_point()


def gamma(Y: np.ndarray, f: int) -> bool:
    """Nonemptiness of ``Γ(Y) = ∩_{|T| = |Y|-f} H(T)``."""
    return gamma_point(Y, f) is not None


@cached_kernel("gamma_point")
def gamma_point(Y: np.ndarray, f: int) -> Optional[np.ndarray]:
    """Deterministic point of ``Γ(Y)``, or None when ``Γ(Y)`` is empty.

    Memoised per process (see :mod:`repro.geometry.cache`): every correct
    process of a run solves the same ``Γ(S)`` instance, so all but the
    first solve are lookups.
    """
    Y = np.atleast_2d(np.asarray(Y, dtype=float))
    n = Y.shape[0]
    sys_ = _HullSystem(Y.shape[1])
    for T in f_subsets(n, f):
        sys_.add_hull_constraint(Y[list(T)])
    return sys_.lexicographic_point()


# ---------------------------------------------------------------------------
# k-relaxed: Ψ(Y)
# ---------------------------------------------------------------------------

def psi_k(Y: np.ndarray, f: int, k: int) -> bool:
    """Nonemptiness of ``Ψ(Y) = ∩_T H_k(T)`` (proof of Theorem 3)."""
    return psi_k_point(Y, f, k) is not None


@cached_kernel("psi_k_point")
def psi_k_point(Y: np.ndarray, f: int, k: int) -> Optional[np.ndarray]:
    """Deterministic point of ``Ψ(Y)``, or None when empty (memoised).

    Encodes every (D, T) cylinder constraint into one joint LP:
    for each ``D ∈ D_k`` and each size ``|Y|-f`` subset ``T``,
    ``g_D(x) ∈ H(g_D(T))``.
    """
    Y = np.atleast_2d(np.asarray(Y, dtype=float))
    n, d = Y.shape
    if not 1 <= k <= d:
        raise ValueError(f"need 1 <= k <= d={d}, got k={k}")
    sys_ = _HullSystem(d)
    subsets = f_subsets(n, f)
    for D in enumerate_coordinate_subsets(d, k):
        for T in subsets:
            sys_.add_hull_constraint(
                project_multiset(Y[list(T)], D), coords=list(D)
            )
    return sys_.lexicographic_point()


# ---------------------------------------------------------------------------
# (δ,p)-relaxed: Γ_{(δ,p)}(S)
# ---------------------------------------------------------------------------

def gamma_delta_p(S: np.ndarray, f: int, delta: float, p: PNorm) -> bool:
    """Nonemptiness of ``Γ_{(δ,p)}(S) = ∩_T H_{(δ,p)}(T)``.

    Exact LP for ``p ∈ {1, inf}``; for ``p = 2`` compares ``δ`` against the
    min-max optimum ``δ*(S)`` from :mod:`repro.geometry.minimax`; other
    finite ``p`` fall back to the same minimax machinery.
    """
    p = validate_p(p)
    if near_zero(delta):
        return gamma(S, f)
    if norm_order_is(p, 1.0) or math.isinf(p):
        return gamma_delta_p_point(S, f, delta, p) is not None
    from .minimax import delta_star  # deferred: minimax imports this module

    return delta_star(S, f, p=p).value <= delta + 1e-9


@cached_kernel("gamma_delta_p_point")
def gamma_delta_p_point(
    S: np.ndarray, f: int, delta: float, p: PNorm
) -> Optional[np.ndarray]:
    """Deterministic point of ``Γ_{(δ,p)}(S)``, or None when empty (memoised).

    For ``p ∈ {1, inf}`` (and for ``δ = 0`` at any ``p``) this is exact via
    LP.  For ``p = 2`` and other finite ``p`` the min-max optimiser supplies
    the point when feasible.
    """
    S = np.atleast_2d(np.asarray(S, dtype=float))
    n, d = S.shape
    p = validate_p(p)
    if delta < 0:
        raise ValueError("delta must be >= 0")
    if near_zero(delta):
        return gamma_point(S, f)
    if norm_order_is(p, 1.0) or math.isinf(p):
        sys_ = _HullSystem(d)
        for T in f_subsets(n, f):
            sys_.add_hull_constraint(S[list(T)], delta=delta, p=p)
        return sys_.lexicographic_point()
    from .minimax import delta_star

    result = delta_star(S, f, p=p)
    if result.value <= delta + 1e-9:
        return result.point
    return None
