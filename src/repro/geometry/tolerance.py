"""Sanctioned float comparisons for the geometric/protocol layers.

The float-safety lint rule (``FLT001``, see ``docs/static_analysis.md``)
bans bare ``==`` / ``!=`` against float literals in ``geometry/`` and
``core/``: LP solvers and cutting-plane loops hand back values *close
to* special values, never guaranteed bitwise equal, so a bare
``delta == 0.0`` silently flips an algorithm's branch for
``delta = 1e-17``.  Every such comparison goes through one of the
helpers here — each encodes a distinct, documented intent:

* :func:`near_zero` / :func:`close` — tolerance-aware comparison of
  *computed* quantities (relaxation radii, distances, residuals);
* :func:`norm_order_is` — exact dispatch on a *canonicalised* norm
  order.  ``validate_p`` returns exact floats (1.0, 2.0, ``inf``), so
  branch selection on them is exact by construction; routing it through
  this helper records that the exactness is intentional;
* :func:`exactly_zero` — exact-zero guard where a tolerance would
  *change the numerics* (e.g. protecting a division: scaling by a tiny
  non-zero maximum is correct, substituting 1.0 for it is not).

All helpers accept NumPy arrays and broadcast elementwise, so they can
sit inside ``np.where(...)`` masks.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "DELTA_ATOL",
    "close",
    "exactly_zero",
    "near_zero",
    "norm_order_is",
]

FloatLike = Union[float, int, np.ndarray]

#: Absolute tolerance under which a computed relaxation radius/distance
#: is treated as zero.  Far below any δ the algorithms distinguish
#: (solver tolerances are ~1e-8) yet far above accumulated rounding.
DELTA_ATOL = 1e-12


def near_zero(x: FloatLike, tol: float = DELTA_ATOL) -> Union[bool, np.ndarray]:
    """``|x| <= tol`` — the tolerance-aware replacement for ``x == 0.0``."""
    return np.abs(x) <= tol


def close(
    a: FloatLike,
    b: FloatLike,
    rel: float = 1e-9,
    atol: float = DELTA_ATOL,
) -> Union[bool, np.ndarray]:
    """``|a - b| <= atol + rel * max(|a|, |b|)`` — replacement for ``a == b``."""
    return np.abs(np.asarray(a, dtype=float) - b) <= atol + rel * np.maximum(
        np.abs(a), np.abs(b)
    )


def norm_order_is(p: FloatLike, value: float) -> bool:
    """Exact dispatch on a canonicalised norm order.

    ``p`` must have passed through
    :func:`repro.geometry.norms.validate_p`, which returns exact floats —
    so the equality below is exact by construction, not a float
    comparison of computed quantities.  ``value`` may be ``math.inf``.
    """
    if math.isinf(value):
        return bool(math.isinf(float(p)))
    return float(p) == value  # canonical sentinel; no float literal here


def exactly_zero(x: FloatLike) -> Union[bool, np.ndarray]:
    """Exact ``x == 0.0`` as a *division guard*, visibly intentional.

    Use only where substituting a tolerance would change the numerics:
    e.g. ``np.where(exactly_zero(m), 1.0, m)`` protects ``x / m``
    against literal zero while still scaling by tiny non-zero ``m``
    (replacing tiny ``m`` by 1.0 would underflow the rescaled sum).
    """
    return np.equal(x, 0.0)  # documented exact guard (np.equal, not ==)
