"""Canonical-key memoisation for the hot geometry kernels.

The consensus algorithms re-solve identical geometric instances
constantly: every process in a run broadcasts the same multiset ``S`` and
then runs the same deterministic kernel on it, so an ``n``-process ALGO
run performs ``n`` bit-identical ``δ*(S)`` solves, and the ``C(n, n-f)``
subset loops of ``exact_bvc`` and ``averaging`` re-enumerate the same
hull systems across rounds.  This module gives those kernels a
process-local cache so the second and later solves are dictionary
lookups.

Keys
----
A cache key is built from the kernel name plus every argument, encoded
canonically:

* arrays are cast to ``float64`` C-order and keyed on their **exact**
  bytes together with their shape — only bit-identical inputs share an
  entry.  Sub-tolerance jitter (and ``-0.0`` vs ``+0.0``) deliberately
  gets distinct entries: substituting a near-equal neighbour's result
  would make outputs depend on per-process call history, which differs
  between serial and parallel sweeps and would break the engine's
  bit-identity contract;
* scalars use exact encodings (``float.hex`` for floats), since knobs
  like ``delta``/``tol``/``p`` are passed-in values, not computed noise;
* anything else (e.g. a ``probe`` callable) is *not* canonicalisable:
  the call bypasses the cache entirely rather than guessing.

Results are frozen before they are stored — returned arrays are
read-only copies — so a caller mutating a result raises instead of
silently poisoning every later hit.

Observability
-------------
Hits and misses are counted on the ambient
:class:`~repro.obs.metrics.MetricsRegistry` (``geometry.cache.hits`` /
``geometry.cache.misses`` plus per-kernel ``geometry.cache.<name>.*``),
so every ``RunResult.metrics`` reports its own hit rate.  When a
:class:`~repro.obs.perf.PhaseProfiler` is installed, lookups also feed
its per-kernel hit/miss counters and each miss computation runs under a
``geometry.solve.<name>`` phase (hits stay un-timed: a dict lookup is
noise next to a solver call).

Determinism
-----------
Keys are exact and the kernels are pure, so a hit returns exactly the
bits the kernel would have computed for those arguments — caching never
changes a result, regardless of what ran earlier in the process, and
serial and parallel sweeps stay bit-identical (each worker simply warms
its own cache).  Eviction clears the whole table (deterministic, like
the verified-averaging selection cache) and the table is never iterated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import replace
from functools import wraps
from typing import Any, Callable, Iterator, Optional, TypeVar, cast

import numpy as np

from ..obs import metrics as _obs
from ..obs import perf as _perf

__all__ = [
    "cache_disabled",
    "cache_enabled",
    "cache_stats",
    "cached_kernel",
    "canonical_array_bytes",
    "clear_cache",
    "configure_cache",
    "freeze_array",
    "set_cache_enabled",
]

F = TypeVar("F", bound=Callable[..., Any])


def canonical_array_bytes(arr: Any) -> bytes:
    """Canonical byte encoding of an array-like: exact bytes + shape.

    The only canonicalisation is representational — cast to ``float64``
    in C order — never numeric: two inputs share bytes iff they are
    bit-identical as float64 arrays of the same shape.  No rounding, no
    ``-0.0`` folding: a hit must return exactly what the kernel would
    compute for *these* argument bits.
    """
    a = np.ascontiguousarray(arr, dtype=float)
    return repr(a.shape).encode() + b"|" + a.tobytes()


def _encode_part(part: Any) -> Optional[bytes]:
    """Encode one key part, or None when it is not canonicalisable."""
    if part is None:
        return b"N"
    if isinstance(part, bool):
        return b"T" if part else b"F"
    if isinstance(part, (int, np.integer)):
        return b"i" + str(int(part)).encode()
    if isinstance(part, (float, np.floating)):
        return b"x" + float(part).hex().encode()
    if isinstance(part, str):
        return b"s" + part.encode()
    if isinstance(part, np.ndarray):
        return b"a" + canonical_array_bytes(part)
    if isinstance(part, (tuple, list)):
        encoded = []
        for item in part:
            enc = _encode_part(item)
            if enc is None:
                return None
            encoded.append(enc)
        return b"(" + b",".join(encoded) + b")"
    return None


def _encode_key(name: str, args: tuple, kwargs: dict[str, Any]) -> Optional[bytes]:
    parts = [name.encode()]
    for a in args:
        enc = _encode_part(a)
        if enc is None:
            return None
        parts.append(enc)
    for k in sorted(kwargs):
        enc = _encode_part(kwargs[k])
        if enc is None:
            return None
        parts.append(k.encode() + b"=" + enc)
    return b";".join(parts)


def freeze_array(a: np.ndarray) -> np.ndarray:
    """Read-only copy of ``a`` — safe to hand to every future hit."""
    out = np.array(a, dtype=float, copy=True)
    out.setflags(write=False)
    return out


def _freeze_result(value: Any) -> Any:
    """Make a kernel result safe to share across cache hits.

    Arrays become read-only copies; frozen dataclasses carrying arrays
    (``DeltaStarResult``, ``TverbergPartition``, ``RadonPartition``) are
    rebuilt around read-only arrays; scalars/None pass through.
    """
    if value is None:
        return None
    if isinstance(value, np.ndarray):
        return freeze_array(value)
    if isinstance(value, tuple):
        return tuple(_freeze_result(v) for v in value)
    frozen_fields = {}
    for attr in ("point", "distances"):
        field = getattr(value, attr, None)
        if isinstance(field, np.ndarray):
            frozen_fields[attr] = freeze_array(field)
    if frozen_fields:
        return replace(value, **frozen_fields)
    return value


class _GeometryCache:
    """Bounded dict cache; eviction clears the whole table (deterministic)."""

    def __init__(self, max_entries: int = 8192) -> None:
        self.max_entries = max_entries
        self._store: dict[bytes, Any] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key: bytes) -> tuple[bool, Any]:
        if key in self._store:
            self.hits += 1
            return True, self._store[key]
        self.misses += 1
        return False, None

    def store(self, key: bytes, value: Any) -> None:
        if len(self._store) >= self.max_entries:
            self._store.clear()
        self._store[key] = value

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)


_CACHE = _GeometryCache()
_ENABLED = True


def cache_enabled() -> bool:
    """Whether the geometry cache is active in this process."""
    return _ENABLED


def set_cache_enabled(enabled: bool) -> bool:
    """Turn the process-wide cache on or off; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextmanager
def cache_disabled() -> Iterator[None]:
    """Scope with the cache off — for un-memoised reference runs in tests."""
    previous = set_cache_enabled(False)
    try:
        yield
    finally:
        set_cache_enabled(previous)


def clear_cache() -> None:
    """Drop every stored entry (hit/miss totals are kept)."""
    _CACHE.clear()


def configure_cache(max_entries: int) -> None:
    """Resize the table (clears it; the bound keeps memory O(1) per worker)."""
    if max_entries < 1:
        raise ValueError(f"max_entries must be >= 1, got {max_entries}")
    _CACHE.max_entries = max_entries
    _CACHE.clear()


def cache_stats() -> dict[str, int]:
    """Process-lifetime totals: hits, misses, and current entry count."""
    return {"hits": _CACHE.hits, "misses": _CACHE.misses, "entries": len(_CACHE)}


def cached_kernel(name: str) -> Callable[[F], F]:
    """Decorator memoising a pure geometry kernel under canonical keys.

    ``name`` labels the per-kernel hit/miss counters.  Calls whose
    arguments cannot be canonically encoded (callables, arbitrary
    objects) run the kernel directly, uncounted.  The undecorated kernel
    stays reachable as ``fn.__wrapped__`` for reference comparisons.
    """

    def deco(fn: F) -> F:
        solve_phase = f"geometry.solve.{name}"

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            key = _encode_key(name, args, kwargs)
            if key is None:
                return fn(*args, **kwargs)
            hit, value = _CACHE.lookup(key)
            prof = _perf.get_profiler()
            if hit:
                _obs.inc("geometry.cache.hits")
                _obs.inc(f"geometry.cache.{name}.hits")
                if prof.enabled:
                    prof.note_cache(name, True)
                return value
            _obs.inc("geometry.cache.misses")
            _obs.inc(f"geometry.cache.{name}.misses")
            if prof.enabled:
                prof.note_cache(name, False)
                with prof.phase(solve_phase):
                    value = _freeze_result(fn(*args, **kwargs))
            else:
                value = _freeze_result(fn(*args, **kwargs))
            _CACHE.store(key, value)
            return value

        return cast(F, wrapper)

    return deco
