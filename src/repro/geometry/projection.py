"""Coordinate projections ``g_D`` and the subset family ``D_k`` (paper §5.1).

For a size-``k`` subset ``D = {d_1 < ... < d_k}`` of the coordinate indices
``[1, d]`` (0-based here), the projection ``g_D`` keeps only the coordinates
in ``D``.  The *k-relaxed convex hull* is defined through these projections:

.. math::

    H_k(S) = \\{ u : g_D(u) \\in H(g_D(S)) \\ \\forall D \\in D_k \\}

so we need: enumeration of ``D_k``, the forward projection on points and
multisets, and the inverse-image ("cylinder") representation
``g_D^{-1}(v) = { u : g_D(u) = v }``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "validate_subset",
    "enumerate_coordinate_subsets",
    "project",
    "project_multiset",
    "Cylinder",
]


def validate_subset(D: Sequence[int], d: int) -> tuple[int, ...]:
    """Validate a coordinate subset ``D`` against ambient dimension ``d``.

    Indices are 0-based, must be distinct, sorted output, each in
    ``[0, d)``.
    """
    ds = tuple(int(i) for i in D)
    if len(ds) == 0:
        raise ValueError("coordinate subset must be nonempty")
    if len(set(ds)) != len(ds):
        raise ValueError(f"coordinate subset has repeats: {ds}")
    if any(i < 0 or i >= d for i in ds):
        raise ValueError(f"coordinate subset {ds} out of range for d={d}")
    return tuple(sorted(ds))


def enumerate_coordinate_subsets(d: int, k: int) -> Iterator[tuple[int, ...]]:
    """Yield every size-``k`` subset of ``{0, ..., d-1}`` (the family D_k)."""
    if not 1 <= k <= d:
        raise ValueError(f"need 1 <= k <= d, got k={k}, d={d}")
    return combinations(range(d), k)


def project(u: np.ndarray, D: Sequence[int]) -> np.ndarray:
    """``g_D(u)``: retain the coordinates of ``u`` indexed by ``D``.

    Works on a single vector or on an ``(m, d)`` stack of vectors.
    """
    u = np.asarray(u, dtype=float)
    idx = list(validate_subset(D, u.shape[-1]))
    return u[..., idx]


def project_multiset(S: np.ndarray, D: Sequence[int]) -> np.ndarray:
    """``g_D(S)`` for a multiset ``S`` given as an ``(m, d)`` array.

    The result is an ``(m, k)`` array; duplicates are preserved (multiset
    semantics, Definition 4).
    """
    S = np.atleast_2d(np.asarray(S, dtype=float))
    return project(S, D)


class Cylinder:
    """The inverse image ``g_D^{-1}(V)`` of a set ``V`` of k-vectors.

    Represents the set of ``d``-dimensional vectors whose ``D``-projection
    lies in ``V`` (Definition 5), where ``V`` is given as the convex hull of
    a finite point set in ``R^k``.  Membership only ever needs the
    projection, so the object stores ``(d, D, V-points)``.
    """

    __slots__ = ("d", "D", "base_points")

    def __init__(self, d: int, D: Sequence[int], base_points: np.ndarray):
        self.d = int(d)
        self.D = validate_subset(D, self.d)
        base = np.atleast_2d(np.asarray(base_points, dtype=float))
        if base.shape[1] != len(self.D):
            raise ValueError(
                f"base points have dimension {base.shape[1]}, expected {len(self.D)}"
            )
        self.base_points = base

    def contains(self, u: np.ndarray, tol: float = 1e-9) -> bool:
        """True when ``g_D(u)`` is in the hull of the base points."""
        from .distance import in_hull  # local import to avoid cycles

        u = np.asarray(u, dtype=float).ravel()
        if u.size != self.d:
            raise ValueError(f"expected a {self.d}-vector, got size {u.size}")
        return in_hull(self.base_points, project(u, self.D), tol)

    def distance(self, u: np.ndarray, p: float = 2) -> float:
        """L_p distance from ``g_D(u)`` to the base hull.

        Zero iff ``u`` is in the cylinder; used as a violation measure.
        """
        from .distance import distance_to_hull

        u = np.asarray(u, dtype=float).ravel()
        return distance_to_hull(self.base_points, project(u, self.D), p).distance

    def __repr__(self) -> str:
        return f"Cylinder(d={self.d}, D={self.D}, m={self.base_points.shape[0]})"
