"""Convex hull objects robust to degenerate (lower-dimensional) point sets.

``scipy.spatial.ConvexHull`` (Qhull) requires a full-dimensional point set.
The paper's constructions are frequently degenerate on purpose — e.g. the
proof of Theorem 8 hinges on affinely *dependent* inputs forcing
``delta* = 0`` — so this module provides a :class:`Hull` that first reduces
to the affine hull of the points (via SVD), then uses Qhull only when the
reduced set is full-dimensional with enough points.

A :class:`Hull` is a value object over an immutable ``(m, d)`` point array.
All the expensive derived structures (affine basis, vertex set, Qhull
facets) are computed lazily and cached.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Union

import numpy as np
from scipy.spatial import ConvexHull as _QhullConvexHull
from scipy.spatial import QhullError

from ..obs import metrics as _obs
from .cache import cached_kernel
from .distance import HullProjection, distance_linf, distance_to_hull, in_hull
from .norms import max_edge_length, min_edge_length
from .tolerance import near_zero

__all__ = ["Hull", "affine_dimension", "affine_basis"]

PNorm = Union[float, int]

_RANK_TOL = 1e-9


@cached_kernel("affine_basis")
def affine_basis(points: np.ndarray, tol: float = _RANK_TOL) -> tuple[np.ndarray, np.ndarray]:
    """Orthonormal basis of the affine hull of ``points``.

    Returns ``(origin, basis)`` where ``basis`` is ``(k, d)`` with
    orthonormal rows spanning the affine hull directions; ``k`` is the
    affine dimension.  Every point satisfies
    ``point ~= origin + basis.T @ coords`` for some ``coords``.

    Memoised per process (the SVD repeats across the ``Hull`` objects
    that every subset-enumeration loop rebuilds over the same points).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    origin = pts[0]
    diffs = pts - origin
    if pts.shape[0] == 1:
        return origin, np.zeros((0, pts.shape[1]))
    # SVD-based rank with a scale-aware tolerance.
    u, s, vt = np.linalg.svd(diffs, full_matrices=False)
    if s.size == 0 or near_zero(s[0]):
        return origin, np.zeros((0, pts.shape[1]))
    rank = int(np.sum(s > tol * max(1.0, s[0])))
    return origin, vt[:rank]


def affine_dimension(points: np.ndarray, tol: float = _RANK_TOL) -> int:
    """Dimension of the affine hull of ``points`` (0 for a single point)."""
    _, basis = affine_basis(points, tol)
    return basis.shape[0]


class Hull:
    """Convex hull of a finite multiset of points in ``R^d``.

    Parameters
    ----------
    points:
        ``(m, d)`` array (or a single ``d``-vector).  Multiset semantics:
        duplicates are allowed and preserved in :attr:`points`.

    Notes
    -----
    The hull itself is a geometric set; duplicates do not change it, but
    keeping them makes the subset bookkeeping of the paper's ``Γ`` operator
    (:mod:`repro.geometry.intersections`) straightforward.
    """

    __slots__ = ("_points", "__dict__")

    def __init__(self, points: np.ndarray | Iterable[Iterable[float]]):
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        if pts.ndim != 2 or pts.shape[0] == 0 or pts.shape[1] == 0:
            raise ValueError(f"Hull requires a nonempty (m, d) point array, got {pts.shape}")
        if not np.all(np.isfinite(pts)):
            raise ValueError("Hull points must be finite")
        self._points = pts.copy()
        self._points.setflags(write=False)
        _obs.inc("geometry.hull.constructions")

    # ------------------------------------------------------------------ basic
    @property
    def points(self) -> np.ndarray:
        """The generating points, ``(m, d)`` (read-only view)."""
        return self._points

    @property
    def num_points(self) -> int:
        """Number of generating points, counting multiplicity."""
        return self._points.shape[0]

    @property
    def ambient_dim(self) -> int:
        """Dimension ``d`` of the ambient space."""
        return self._points.shape[1]

    @cached_property
    def affine(self) -> tuple[np.ndarray, np.ndarray]:
        """``(origin, basis)`` of the affine hull (see :func:`affine_basis`)."""
        return affine_basis(self._points)

    @property
    def dim(self) -> int:
        """Intrinsic (affine) dimension of the hull."""
        return self.affine[1].shape[0]

    @property
    def is_degenerate(self) -> bool:
        """True when the hull is not full-dimensional in the ambient space."""
        return self.dim < self.ambient_dim

    def reduced_points(self) -> np.ndarray:
        """Points expressed in orthonormal coordinates of the affine hull.

        Shape ``(m, dim)``.  Distances between points are preserved, which
        is exactly the isometry used in the paper's Theorem 8 / Case II of
        Theorem 9 ("we can find a projection ... preserving the distances").
        """
        origin, basis = self.affine
        return (self._points - origin) @ basis.T

    def lift(self, reduced: np.ndarray) -> np.ndarray:
        """Map reduced affine-hull coordinates back to ambient coordinates."""
        origin, basis = self.affine
        reduced = np.asarray(reduced, dtype=float)
        return origin + reduced @ basis

    # --------------------------------------------------------------- vertices
    @cached_property
    def vertex_indices(self) -> np.ndarray:
        """Indices (into :attr:`points`) of the hull's extreme points.

        Works in the reduced affine coordinates so degenerate inputs are
        handled; falls back to an LP-based extreme-point test when Qhull
        cannot run (tiny point counts, 0/1-dimensional hulls).
        """
        m = self.num_points
        k = self.dim
        if k == 0:
            return np.array([0])
        red = self.reduced_points()
        if k == 1:
            coords = red[:, 0]
            return np.unique([int(np.argmin(coords)), int(np.argmax(coords))])
        if m > k + 1:
            try:
                q = _QhullConvexHull(red)
                return np.sort(np.asarray(q.vertices))
            except QhullError:  # pragma: no cover - reduced set is full-dim
                pass
        # Simplex or Qhull failure: every affinely independent point is a
        # vertex; drop points expressible by the others.
        keep = []
        for i in range(m):
            others = np.delete(red, i, axis=0)
            if distance_linf(others, red[i]) > 1e-9:
                keep.append(i)
        if not keep:  # all identical
            keep = [0]
        return np.asarray(sorted(set(keep)))

    @property
    def vertices(self) -> np.ndarray:
        """Coordinates of the extreme points, ``(v, d)``."""
        return self._points[self.vertex_indices]

    # ------------------------------------------------------------- predicates
    def contains(self, x: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership test (L_inf distance at most ``tol``)."""
        return in_hull(self._points, x, tol)

    def distance(self, x: np.ndarray, p: PNorm = 2) -> float:
        """``dist_p(x, H)``."""
        return distance_to_hull(self._points, x, p).distance

    def project(self, x: np.ndarray, p: PNorm = 2) -> HullProjection:
        """Nearest point of the hull to ``x`` under L_p."""
        return distance_to_hull(self._points, x, p)

    # --------------------------------------------------------------- geometry
    def centroid(self) -> np.ndarray:
        """Arithmetic mean of the generating points (always in the hull)."""
        return self._points.mean(axis=0)

    def max_edge(self, p: PNorm = 2) -> float:
        """Longest edge between generating points (``max_{e in E} ||e||_p``)."""
        return max_edge_length(self._points, p)

    def min_edge(self, p: PNorm = 2) -> float:
        """Shortest edge between distinct generating points."""
        return min_edge_length(self._points, p)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Sample ``n`` points uniformly from random convex combinations.

        Dirichlet(1) weights over the generating points — not uniform over
        the hull volume, but always inside the hull; used for property
        tests.
        """
        w = rng.dirichlet(np.ones(self.num_points), size=n)
        return w @ self._points

    # --------------------------------------------------------------- plumbing
    def __repr__(self) -> str:
        return (
            f"Hull(m={self.num_points}, d={self.ambient_dim}, "
            f"dim={self.dim})"
        )

    def __eq__(self, other: object) -> bool:
        """Set equality of the hulls (mutual containment of vertices)."""
        if not isinstance(other, Hull):
            return NotImplemented
        if self.ambient_dim != other.ambient_dim:
            return False
        return all(other.contains(v) for v in self.vertices) and all(
            self.contains(v) for v in other.vertices
        )

    def __hash__(self) -> int:  # pragma: no cover - hulls are not hashable
        raise TypeError("Hull objects are mutable-value-like and unhashable")
