"""Explicit convex polytopes: V-representations of hull intersections.

Convex Hull Consensus (Tseng & Vaidya, PODC 2014 / arXiv 1307.1332 — the
paper's references [16] and [15]) has the processes agree on an entire
*polytope* inside the hull of the honest inputs, rather than a single
point.  The natural output object is the paper's ``Γ(S)`` itself:

    ``Γ(S) = ∩_{T ⊆ S, |T| = n-f} H(T)``

This module computes explicit vertex representations of such
intersections:

* **d = 2** — exact convex polygon clipping (Sutherland–Hodgman against
  each hull's edges), robust and dependency-free;
* **d >= 3** — halfspace intersection via Qhull
  (``scipy.spatial.HalfspaceIntersection``) seeded with a strictly
  interior point found by a Chebyshev-center LP; requires the
  intersection to be full-dimensional (degenerate intersections fall
  back to a point representation via the LP selection).

Vertices are canonicalised (sorted lexicographically, deduplicated) so
that two processes computing the polytope from the same multiset obtain
the *identical* object — the agreement property consensus needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.spatial import ConvexHull as _Qhull
from scipy.spatial import HalfspaceIntersection, QhullError

from .distance import distance_linf, in_hull
from .intersections import f_subsets

__all__ = [
    "Polytope",
    "convex_polygon_clip",
    "polygon_vertices",
    "intersect_hulls_polytope",
    "gamma_polytope",
]

_TOL = 1e-9


@dataclass(frozen=True)
class Polytope:
    """A convex polytope by its canonical vertex list (may be a point)."""

    vertices: np.ndarray  # (k, d), canonically ordered

    @property
    def dim_ambient(self) -> int:
        return self.vertices.shape[1]

    @property
    def num_vertices(self) -> int:
        return self.vertices.shape[0]

    def contains(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        """Membership in the polytope's convex hull."""
        return in_hull(self.vertices, x, tol)

    def is_subset_of_hull(self, points: np.ndarray, tol: float = 1e-7) -> bool:
        """True when every vertex lies in ``H(points)``."""
        return all(
            distance_linf(points, v) <= tol for v in self.vertices
        )

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Random points inside (Dirichlet mixture of vertices)."""
        w = rng.dirichlet(np.ones(self.num_vertices), size=n)
        return w @ self.vertices

    def centroid(self) -> np.ndarray:
        return self.vertices.mean(axis=0)

    def equals(self, other: "Polytope", tol: float = 1e-6) -> bool:
        """Geometric set-equality (mutual vertex containment)."""
        return (
            self.dim_ambient == other.dim_ambient
            and all(other.contains(v, tol) for v in self.vertices)
            and all(self.contains(v, tol) for v in other.vertices)
        )

    def __repr__(self) -> str:
        return f"Polytope(k={self.num_vertices}, d={self.dim_ambient})"


def _canonical(vertices: np.ndarray, decimals: int = 9) -> np.ndarray:
    """Deduplicate and lexicographically sort vertices (deterministic)."""
    if vertices.size == 0:
        return vertices.reshape(0, vertices.shape[-1] if vertices.ndim > 1 else 0)
    rounded = np.round(vertices, decimals)
    # unique rows, then lexicographic sort by all columns
    uniq = np.unique(rounded, axis=0)
    order = np.lexsort(uniq.T[::-1])
    return uniq[order]


# ---------------------------------------------------------------------------
# 2-D: exact convex polygon clipping
# ---------------------------------------------------------------------------

def polygon_vertices(points: np.ndarray) -> np.ndarray:
    """CCW-ordered hull vertices of a 2-D point set (handles degeneracy:
    returns 1 or 2 vertices for points/segments)."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.shape[1] != 2:
        raise ValueError("polygon_vertices expects 2-D points")
    uniq = np.unique(np.round(pts, 12), axis=0)
    if uniq.shape[0] == 1:
        return uniq
    if uniq.shape[0] == 2:
        return uniq
    try:
        hull = _Qhull(uniq)
        return uniq[hull.vertices]  # Qhull returns CCW order in 2-D
    except QhullError:
        # collinear: return the two extreme points along the span
        d = uniq - uniq[0]
        t = d @ (uniq[-1] - uniq[0])
        return np.vstack([uniq[int(np.argmin(t))], uniq[int(np.argmax(t))]])


def convex_polygon_clip(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Sutherland–Hodgman clipping of convex polygon ``subject`` by convex
    polygon ``clip`` (both CCW vertex arrays).  Returns the (possibly
    empty) intersection's vertices, CCW.

    Degenerate clip regions (points/segments) are handled by membership
    filtering rather than edge clipping.
    """
    subject = np.atleast_2d(np.asarray(subject, dtype=float))
    clip = np.atleast_2d(np.asarray(clip, dtype=float))
    if clip.shape[0] < 3:
        # point or segment: intersection = parts of it inside subject
        keep = [p for p in clip if in_hull(subject, p, tol=_TOL)]
        return np.array(keep) if keep else np.zeros((0, 2))
    if subject.shape[0] < 3:
        keep = [p for p in subject if in_hull(clip, p, tol=_TOL)]
        return np.array(keep) if keep else np.zeros((0, 2))

    output = [tuple(p) for p in subject]
    m = clip.shape[0]
    for i in range(m):
        a, b = clip[i], clip[(i + 1) % m]
        edge = b - a
        if not output:
            break
        inp = output
        output = []

        def side(p: np.ndarray) -> float:
            return edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0])

        k = len(inp)
        for j in range(k):
            cur = np.asarray(inp[j])
            nxt = np.asarray(inp[(j + 1) % k])
            s_cur, s_nxt = side(cur), side(nxt)
            if s_cur >= -_TOL:
                output.append(tuple(cur))
                if s_nxt < -_TOL:
                    t = s_cur / (s_cur - s_nxt)
                    output.append(tuple(cur + t * (nxt - cur)))
            elif s_nxt >= -_TOL:
                t = s_cur / (s_cur - s_nxt)
                output.append(tuple(cur + t * (nxt - cur)))
    if not output:
        return np.zeros((0, 2))
    return polygon_vertices(np.array(output))


# ---------------------------------------------------------------------------
# general dimension via halfspaces
# ---------------------------------------------------------------------------

def _hull_halfspaces_matrix(points: np.ndarray) -> Optional[np.ndarray]:
    """Qhull facet inequalities ``[A | b]`` with ``A x + b <= 0`` for a
    full-dimensional hull, else None."""
    try:
        return _Qhull(points).equations
    except QhullError:
        return None


def _chebyshev_center(halfspaces: np.ndarray) -> Optional[tuple[np.ndarray, float]]:
    """Center and radius of the largest inscribed ball of ``Ax + b <= 0``."""
    A = halfspaces[:, :-1]
    b = halfspaces[:, -1]
    d = A.shape[1]
    norms = np.linalg.norm(A, axis=1)
    # maximise r  s.t.  A x + r*||A_i|| <= -b
    c = np.zeros(d + 1)
    c[-1] = -1.0
    A_ub = np.hstack([A, norms[:, None]])
    res = linprog(c, A_ub=A_ub, b_ub=-b, bounds=[(None, None)] * d + [(0, None)],
                  method="highs")
    if not res.success or res.x[-1] <= 1e-12:
        return None
    return res.x[:d], float(res.x[-1])


def intersect_hulls_polytope(point_sets: Sequence[np.ndarray]) -> Optional[Polytope]:
    """Vertex representation of ``∩_i H(A_i)``, or None when empty.

    2-D inputs use exact polygon clipping.  Higher dimensions require the
    intersection to be full-dimensional for an exact V-representation;
    lower-dimensional intersections degrade to the deterministic
    LP-selected point (a valid, agreed-upon subset — documented
    behaviour, sufficient for consensus outputs).
    """
    sets = [np.atleast_2d(np.asarray(A, dtype=float)) for A in point_sets]
    if not sets:
        raise ValueError("need at least one hull")
    d = sets[0].shape[1]
    if any(A.shape[1] != d for A in sets):
        raise ValueError("dimension mismatch between hulls")

    if d == 1:
        lo = max(A.min() for A in sets)
        hi = min(A.max() for A in sets)
        if lo > hi + _TOL:
            return None
        vs = np.array([[lo]]) if abs(hi - lo) <= _TOL else np.array([[lo], [hi]])
        return Polytope(_canonical(vs))

    if d == 2:
        current = polygon_vertices(sets[0])
        for A in sets[1:]:
            current = convex_polygon_clip(current, polygon_vertices(A))
            if current.shape[0] == 0:
                break
        if current.shape[0] > 0:
            return Polytope(_canonical(current))
        # Clipping can lose measure-zero intersections (a single point or
        # segment, e.g. Γ at exactly the Tverberg bound); settle with the
        # exact LP before declaring emptiness.
        from .intersections import intersection_point

        pt = intersection_point(sets)
        if pt is None:
            return None
        return Polytope(_canonical(pt[None, :]))

    # d >= 3: halfspace intersection
    halfspaces = []
    for A in sets:
        hs = _hull_halfspaces_matrix(A)
        if hs is None:
            halfspaces = None
            break
        halfspaces.append(hs)
    if halfspaces is not None:
        stacked = np.vstack(halfspaces)
        center = _chebyshev_center(stacked)
        if center is not None:
            interior, _r = center
            try:
                hi = HalfspaceIntersection(stacked, interior)
                verts = _canonical(hi.intersections)
                if verts.shape[0] > 0:
                    return Polytope(verts)
            except QhullError:  # pragma: no cover - fallback below
                pass
    # degenerate / not full-dimensional: fall back to the deterministic
    # single-point selection (still a valid common subset).
    from .intersections import intersection_point

    pt = intersection_point(sets)
    if pt is None:
        return None
    return Polytope(_canonical(pt[None, :]))


def gamma_polytope(Y: np.ndarray, f: int) -> Optional[Polytope]:
    """V-representation of ``Γ(Y)`` (None when empty)."""
    Y = np.atleast_2d(np.asarray(Y, dtype=float))
    subsets = f_subsets(Y.shape[0], f)
    return intersect_hulls_polytope([Y[list(T)] for T in subsets])
