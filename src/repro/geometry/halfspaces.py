"""Supporting and separating hyperplanes for convex hulls.

The impossibility arguments of the paper repeatedly reason with supporting
hyperplanes (e.g. Case 1 of Theorem 12 picks the supporting hyperplane
``π^i`` of ``Q_i`` at the nearest point to ``p0``).  These helpers expose
that construction numerically, plus the full H-representation for
full-dimensional hulls via Qhull.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.spatial import ConvexHull as _Qhull
from scipy.spatial import QhullError

from .distance import nearest_point_l2

__all__ = ["Halfspace", "separating_halfspace", "hull_halfspaces", "supporting_halfspace"]


@dataclass(frozen=True)
class Halfspace:
    """The halfspace ``{ y : <normal, y> <= offset }`` (unit normal)."""

    normal: np.ndarray
    offset: float

    def contains(self, y: np.ndarray, tol: float = 1e-9) -> bool:
        """Membership test with tolerance."""
        return float(self.normal @ np.asarray(y, dtype=float)) <= self.offset + tol

    def signed_distance(self, y: np.ndarray) -> float:
        """``<normal, y> - offset``; positive outside the halfspace."""
        return float(self.normal @ np.asarray(y, dtype=float)) - self.offset


def separating_halfspace(
    points: np.ndarray, x: np.ndarray, tol: float = 1e-9
) -> Optional[Halfspace]:
    """A halfspace containing ``H(points)`` but not ``x`` (None if ``x`` is
    inside).

    Built from the Euclidean projection ``y*`` of ``x``: the normal is
    ``(x - y*) / ||x - y*||`` and the offset is the support value of the
    hull in that direction, so the hull is contained and ``x`` is at
    distance ``dist_2(x, H)`` outside.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    xv = np.asarray(x, dtype=float).ravel()
    proj = nearest_point_l2(pts, xv)
    if proj.distance <= tol:
        return None
    normal = (xv - proj.point) / proj.distance
    offset = float(np.max(pts @ normal))
    return Halfspace(normal, offset)


def supporting_halfspace(points: np.ndarray, direction: np.ndarray) -> Halfspace:
    """Supporting halfspace of ``H(points)`` with outer normal ``direction``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    g = np.asarray(direction, dtype=float).ravel()
    nrm = float(np.linalg.norm(g))
    if nrm == 0:
        raise ValueError("direction must be nonzero")
    g = g / nrm
    return Halfspace(g, float(np.max(pts @ g)))


def hull_halfspaces(points: np.ndarray) -> list[Halfspace]:
    """H-representation of a full-dimensional hull (Qhull facets).

    Raises
    ------
    ValueError
        If the hull is degenerate (use the affine-reduction in
        :class:`repro.geometry.hull.Hull` first).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    try:
        q = _Qhull(pts)
    except QhullError as exc:
        raise ValueError(
            "hull is degenerate or too small for an H-representation"
        ) from exc
    out = []
    for eq in q.equations:  # each row: normal·y + offset <= 0
        normal = eq[:-1]
        nrm = float(np.linalg.norm(normal))
        out.append(Halfspace(normal / nrm, float(-eq[-1]) / nrm))
    return out
