"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``      run a quick end-to-end ALGO demonstration
``bounds``    print the paper's process-count bounds for given (d, f)
``delta``     compute δ*(S) for random or provided inputs
``verdicts``  execute the impossibility constructions for a given d
``fuzz``      deterministic-simulation soak test of one algorithm
``sweep``     run an experiment grid (algorithm × d × f × n × adversary),
              optionally across a worker pool, with serial/parallel
              bit-identity checking and a JSON report
``shrink``    minimise a violating scenario while the violation persists
``replay``    re-execute a replay token / seed file under full tracing
``explain``   run one spec under causal tracing and reconstruct the
              provenance (causal cone) of a process's decision
``trace``     run any other command under the tracer, dump JSONL + summary
``bench``     throughput benchmark over a standard grid with per-phase
              timing (BENCH_perf.json), or diff two BENCH files under a
              regression threshold (``--compare OLD NEW``)
``metrics``   Prometheus text-format snapshots: ``serve`` a scrapeable
              endpoint, ``snapshot`` to stdout/file, ``diff`` counter
              deltas between two exported JSONL traces
``node``      run ONE live consensus node (own OS process) from a
              topology file; prints a one-line JSON decision record
``launch``    spawn an n-node local live cluster (TCP or UDS), collect
              every node's decision, and judge agreement
``lint``      protocol-aware static analysis: per-file rule families
              (determinism/float-safety/resilience-bounds/handler-
              hygiene/observability) plus whole-program flow analysis
              (message exhaustiveness, determinism taint, quorum
              provenance, transport readiness); SARIF output and a
              stale-suppression audit (``--check-noqa``)

``fuzz``/``shrink``/``replay`` are the deterministic simulation-testing
loop (see ``docs/fuzzing.md``): every violation ``fuzz`` prints comes
with a replay token; ``shrink`` minimises it; ``replay`` reproduces it
bit-for-bit with a span/metrics forensic trail.

Every command accepts ``--quiet`` / ``--verbose``, wired to the tracer's
log level (``--verbose`` echoes debug events to stderr as they happen).

Examples::

    python -m repro demo --d 4 --seed 3
    python -m repro bounds --d 5 --f 2
    python -m repro delta --n 5 --d 4 --f 1 --seed 0
    python -m repro verdicts --d 3
    python -m repro fuzz --algorithm averaging --trials 50 --seed 7
    python -m repro fuzz --algorithm algo --trials 5 --inject split-brain
    python -m repro sweep --algorithms algo,exact --d 2,3 --reps 4 --workers 4
    python -m repro sweep --reps 8 --workers 2 --compare --out BENCH_sweep.json
    python -m repro shrink --token dst1-...
    python -m repro replay --token dst1-... --trace failure.jsonl
    python -m repro explain --algorithm algo --d 2 --f 1 --pid 0 --probes all
    python -m repro explain --algorithm averaging --format dot --out cone.dot
    python -m repro trace --out run.jsonl demo --d 3
    python -m repro bench --grid tiny --out BENCH_perf.json
    python -m repro bench --compare BENCH_perf.json BENCH_new.json
    python -m repro metrics serve --demo --port 9464 --max-requests 1
    python -m repro metrics snapshot --from run.jsonl
    python -m repro launch --algorithm averaging --n 4 --d 2 --transport tcp
    python -m repro node --topology cluster/topology.json --id 2
    python -m repro lint src/repro benchmarks examples --check-noqa
    python -m repro lint --format sarif
    python -m repro lint --list-rules
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _fail(message: str) -> int:
    """Clean CLI error: one line on stderr, exit code 2, no traceback."""
    print(f"error: {message}", file=sys.stderr)
    return 2


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import run_algo, run_exact_bvc
    from .core.bounds import exact_bvc_min_n, theorem9_bound
    from .obs import trace_event
    from .system import Adversary

    d, f = args.d, args.f
    n = args.n if args.n is not None else d + 1
    if d < 1:
        return _fail(f"--d must be >= 1, got {d}")
    if f < 1:
        return _fail(f"--f must be >= 1, got {f}")
    if n < 3 * f + 1:
        return _fail(
            f"inconsistent system size: ALGO requires n >= 3f+1 "
            f"(got --n {n}, --f {f}; try --n {3 * f + 1} or larger)"
        )
    rng = np.random.default_rng(args.seed)
    inputs = rng.normal(size=(n, d))
    inputs[-1] = 25.0  # adversarially chosen faulty input
    if not args.quiet:
        print(f"n={n}, d={d}, f={f}; exact BVC needs n >= {exact_bvc_min_n(d, f)}")
    trace_event("demo.start", n=n, d=d, f=f, seed=args.seed)
    try:
        run_exact_bvc(inputs, f=f, adversary=Adversary(faulty=[n - 1]))
        if not args.quiet:
            print("exact BVC: succeeded (Γ nonempty for this instance)")
    except ValueError as exc:
        if not args.quiet:
            print(f"exact BVC: {exc}")
    out = run_algo(inputs, f=f, adversary=Adversary(faulty=[n - 1]))
    trace_event("demo.done", ok=out.ok, delta=out.delta_used)
    print(f"ALGO: ok={out.ok}  δ*={out.delta_used:.6f}  "
          f"(Theorem 9 bound {theorem9_bound(out.honest_inputs, n):.6f})")
    if not args.quiet:
        print(f"decision: {np.round(next(iter(out.decisions.values())), 4)}")
        m = out.metrics
        print(f"traffic: {m.counter_value('net.messages_sent')} messages, "
              f"~{m.counter_value('net.bytes_estimate')} bytes, "
              f"{m.counter_value('geometry.delta_star.calls')} δ* solves")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .core import bounds

    d, f = args.d, args.f
    rows = [
        ("exact BVC (sync)", bounds.exact_bvc_min_n(d, f)),
        ("approximate BVC (async)", bounds.approx_bvc_min_n(d, f)),
        ("k-relaxed exact, k=1", bounds.k_relaxed_exact_min_n(d, f, 1)),
        ("k-relaxed exact, 2<=k<=d", bounds.k_relaxed_exact_min_n(d, f, min(2, d))),
        ("(δ,p) exact, constant δ", bounds.delta_p_exact_min_n(d, f, 1.0)),
        ("(δ,p) approx, constant δ", bounds.delta_p_approx_min_n(d, f, 1.0)),
        ("input-dependent δ (Lemma 10 floor)", bounds.input_dependent_min_n(f)),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"tight process-count bounds for d={d}, f={f}:")
    for name, val in rows:
        print(f"  {name.ljust(width)}  n >= {val}")
    if f >= 1 and 3 * f + 1 <= (d + 1) * f:
        k = bounds.kappa(3 * f + 1, f, d, 2)
        print(f"  κ(3f+1={3 * f + 1}, f, d, 2) = {k:.4f}  "
              f"(δ* < κ · max-edge at the minimum system size)")
    return 0


def _cmd_delta(args: argparse.Namespace) -> int:
    from .geometry import delta_star
    from .geometry.norms import max_edge_length, min_edge_length

    if args.n < 2:
        return _fail(f"--n must be >= 2, got {args.n}")
    if not 0 <= args.f < args.n:
        return _fail(
            f"inconsistent --n/--f: need 0 <= f < n, got n={args.n}, f={args.f}"
        )
    rng = np.random.default_rng(args.seed)
    S = rng.normal(size=(args.n, args.d))
    res = delta_star(S, args.f, p=args.p)
    print(f"random inputs: n={args.n}, d={args.d}, f={args.f}, p={args.p}, "
          f"seed={args.seed}")
    print(f"δ*(S)      = {res.value:.9f}   (certified gap {res.gap:.2e})")
    print(f"minimiser  = {np.round(res.point, 5)}")
    print(f"min-edge/2 = {min_edge_length(S) / 2:.9f}")
    if args.n >= 3:
        print(f"max-edge/(n-2) = {max_edge_length(S) / (args.n - 2):.9f}")
    return 0


def _cmd_verdicts(args: argparse.Namespace) -> int:
    from .core import (
        theorem3_verdict,
        theorem4_verdict,
        theorem5_verdict,
        theorem6_verdict,
    )

    d = args.d
    print(f"impossibility constructions at d={d} (f=1):")
    if d >= 3:
        print(f"  Theorem 3 (k=2, n=d+1):      Ψ(Y) empty = {theorem3_verdict(d)}")
        sep, thr = theorem4_verdict(d)
        print(f"  Theorem 4 (k=2, n=d+2):      forced sep {sep} >= 2ε = {thr}")
    else:
        print("  Theorems 3/4 need d >= 3")
    print(f"  Theorem 5 (δ=0.25, n=d+1):   intersection empty = "
          f"{theorem5_verdict(d, 0.25)}")
    sep, thr = theorem6_verdict(d, 0.25, 0.1)
    print(f"  Theorem 6 (δ=0.25, n=d+2):   forced sep {sep} > ε = {thr}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .dst import explore, save_seed, shrink

    if args.trials < 1:
        return _fail(f"--trials must be >= 1, got {args.trials}")
    try:
        violations = explore(args.algorithm, trials=args.trials,
                             seed=args.seed, inject=args.inject,
                             workers=args.workers)
    except ValueError as exc:
        return _fail(str(exc))
    print(f"{args.trials} sampled scenarios of {args.algorithm!r}: "
          f"{len(violations)} invariant violations")
    for i, v in enumerate(violations):
        s = v.scenario
        print(f"  [{i}] {v.invariant}: {v.detail}")
        print(f"      scenario: n={s.n} d={s.d} f={s.f} seed={s.seed} "
              f"faults={s.strategy_label()} windows={len(s.schedule)}")
        if args.shrink:
            res = shrink(s, invariant=v.invariant)
            from .dst import encode_token

            small = res.shrunk
            print(f"      shrunk:   n={small.n} d={small.d} f={small.f} "
                  f"clauses={len(small.faults)} windows={len(small.schedule)} "
                  f"({res.accepted} edits kept of {res.attempts} tried)")
            print(f"      replay: python -m repro replay --token "
                  f"{encode_token(small)}")
        else:
            print(f"      replay: {v.replay_command}")
            print(f"      shrink: {v.shrink_command}")
        if args.save_dir:
            import os

            os.makedirs(args.save_dir, exist_ok=True)
            target = s if not args.shrink else res.shrunk
            path = os.path.join(
                args.save_dir, f"{args.algorithm}-{v.invariant}-{s.seed}.json"
            )
            save_seed(path, target, expect={"violates": v.invariant},
                      notes=f"found by: python -m repro fuzz --algorithm "
                            f"{args.algorithm} --trials {args.trials} "
                            f"--seed {args.seed}"
                            + (f" --inject {args.inject}" if args.inject else ""))
            print(f"      saved: {path}")
    return 1 if violations else 0


def _int_tuple(text: str) -> tuple[int, ...]:
    """Parse a comma-separated integer list CLI value."""
    try:
        values = tuple(int(x) for x in text.split(",") if x.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a comma-separated int list: {text!r}")
    if not values:
        raise argparse.ArgumentTypeError(f"empty list: {text!r}")
    return values


def _str_tuple(text: str) -> tuple[str, ...]:
    """Parse a comma-separated string list CLI value."""
    values = tuple(x.strip() for x in text.split(",") if x.strip())
    if not values:
        raise argparse.ArgumentTypeError(f"empty list: {text!r}")
    return values


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .exec import SweepGrid, compare_grid, run_grid
    from .geometry import set_cache_enabled

    if args.workers < 1:
        return _fail(f"--workers must be >= 1, got {args.workers}")
    try:
        grid = SweepGrid(
            algorithms=args.algorithms,
            dimensions=args.d,
            faults=args.f,
            sizes=() if args.n is None else args.n,
            adversaries=args.adversaries,
            reps=args.reps,
            base_seed=args.seed,
            p=args.p,
            k=args.k,
            epsilon=args.epsilon,
            probes=args.probes if args.probes else (),
        )
    except ValueError as exc:
        return _fail(str(exc))
    if args.no_cache:
        set_cache_enabled(False)

    if args.compare:
        doc = compare_grid(grid, workers=args.workers,
                           chunksize=args.chunksize,
                           measure_cache=args.measure_cache)
        summary = doc["summary"]
        if not args.quiet:
            print(f"{doc['trial_count']} trials "
                  f"({doc['skipped_trials']} trials skipped), "
                  f"{summary['ok']} ok, cpu_count={doc['cpu_count']}")
            for mode in doc["modes"]:
                print(f"  workers={mode['workers']}: "
                      f"{mode['wall_seconds']:.3f}s")
            cache = summary["geometry_cache"]
            print(f"  geometry cache: {cache['hits']:.0f} hits / "
                  f"{cache['misses']:.0f} misses "
                  f"(hit rate {cache['hit_rate']:.1%})")
            if "cache_off" in doc:
                off = doc["cache_off"]
                print(f"  cache off: {off['wall_seconds']:.3f}s "
                      f"(speedup {off['cache_speedup']:.2f}x, identical="
                      f"{off['identical_to_cached']})")
        print("serial/parallel decisions identical: "
              f"{doc['identical']} "
              f"(digest {doc['decisions_digest']['serial'][:16]}...)")
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(doc, fh, indent=2)
                fh.write("\n")
            if not args.quiet:
                print(f"wrote {args.out}")
        return 0 if doc["identical"] else 1

    result = run_grid(grid, workers=args.workers, chunksize=args.chunksize)
    summary = result.summary()
    print(f"{result.trial_count} trials ({result.skipped_trials} trials "
          f"skipped), {result.ok_count} ok, workers={result.workers}, "
          f"{result.wall_seconds:.3f}s")
    if not args.quiet:
        if args.probes:
            print(f"  probe violations: {summary['probe_violations']}")
        cache = summary["geometry_cache"]
        print(f"  geometry cache: {cache['hits']:.0f} hits / "
              f"{cache['misses']:.0f} misses "
              f"(hit rate {cache['hit_rate']:.1%})")
        for name, row in summary["per_algorithm"].items():
            print(f"  {name}: {row['ok']}/{row['trials']} ok, "
                  f"{row['messages']} msgs, {row['wall_seconds']:.3f}s")
    if args.out:
        result.save(args.out)
        if not args.quiet:
            print(f"wrote {args.out}")
    return 0 if result.ok_count == result.trial_count else 1


def _resolve_scenario(args: argparse.Namespace):
    """Shared --token/--seed-file resolution for shrink/replay.

    Returns (scenario, seed_case_or_None) or an int error code.
    """
    from .dst import decode_token
    from .dst.corpus import load_seed

    if bool(args.token) == bool(args.seed_file):
        return _fail("provide exactly one of --token or --seed-file")
    if args.token:
        try:
            return decode_token(args.token), None
        except ValueError as exc:
            return _fail(str(exc))
    try:
        case = load_seed(args.seed_file)
    except (OSError, ValueError, KeyError) as exc:
        return _fail(f"cannot load seed file {args.seed_file!r}: {exc}")
    return case.scenario, case


def _cmd_shrink(args: argparse.Namespace) -> int:
    from .dst import encode_token, save_seed, shrink

    resolved = _resolve_scenario(args)
    if isinstance(resolved, int):
        return resolved
    scenario, case = resolved
    invariant = args.invariant
    if invariant is None and case is not None:
        invariant = case.expected_violation
    try:
        res = shrink(scenario, invariant=invariant,
                     max_attempts=args.max_attempts)
    except ValueError as exc:
        return _fail(str(exc))
    o, s = res.original, res.shrunk
    print(f"shrinking while {res.invariant!r} stays violated: "
          f"{res.accepted} edits kept of {res.attempts} tried")
    print(f"  original: n={o.n} d={o.d} f={o.f} clauses={len(o.faults)} "
          f"windows={len(o.schedule)}")
    print(f"  shrunk:   n={s.n} d={s.d} f={s.f} clauses={len(s.faults)} "
          f"windows={len(s.schedule)}")
    token = encode_token(s)
    print(f"  token:  {token}")
    print(f"  replay: python -m repro replay --token {token}")
    if args.out:
        save_seed(args.out, s, expect={"violates": res.invariant},
                  notes=args.notes or "shrunk counterexample")
        print(f"  saved:  {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .dst import replay

    resolved = _resolve_scenario(args)
    if isinstance(resolved, int):
        return resolved
    scenario, case = resolved
    try:
        report = replay(scenario, trace_path=args.trace,
                        probes=args.probes if args.probes else ())
    except ValueError as exc:
        return _fail(str(exc))
    s = scenario
    print(f"replayed {s.algorithm!r}: n={s.n} d={s.d} f={s.f} seed={s.seed} "
          f"faults={s.strategy_label()} windows={len(s.schedule)}"
          + (f" inject={s.inject}" if s.inject else ""))
    result = report.result
    if result.ok:
        print("invariants: all hold (agreement, validity, termination)")
    else:
        for name, detail in sorted(result.violations.items()):
            print(f"violated {name}: {detail}")
    for probe_report in result.probe_reports:
        status = ("ok" if not probe_report.violations
                  else f"{len(probe_report.violations)} violation(s)")
        print(f"probe {probe_report.name}: {status} "
              f"({probe_report.checks} checks)")
        for v in probe_report.violations[:5]:
            pids = ",".join(str(p) for p in v.pids) or "-"
            print(f"  t={v.time} pids={pids}: {v.detail}")
    m = report.metrics
    print(f"forensics: {len(report.tracer.spans)} spans, "
          f"{m.counter_value('net.messages_sent')} messages, "
          f"{result.outcome.result.rounds} rounds/steps"
          + (f" -> {report.trace_path}" if report.trace_path else ""))
    if case is not None:
        mismatch = case.check(result)
        if mismatch:
            print(f"expectation MISMATCH: {mismatch}")
            return 1
        print(f"expectation holds: "
              + ("clean run" if case.expect_ok
                 else f"reproduces {case.expected_violation!r}"))
        return 0
    return 1 if not result.ok else 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from .analysis.timeline import (
        CausalGraph,
        cone_json,
        render_dot,
        render_explanation,
        render_timeline,
    )
    from .core import RunSpec, run
    from .exec.grid import build_adversary, min_trial_size
    from .obs.causal import CausalCollector, use_causal_collector
    from .obs.export import dump_jsonl, header_record

    n = args.n if args.n is not None else min_trial_size(
        args.algorithm, args.d, args.f, args.k
    )
    try:
        adversary = build_adversary(args.adversary, n, args.f)
        spec = RunSpec(
            algorithm=args.algorithm, n=n, d=args.d, f=args.f,
            adversary=adversary, p=args.p, k=args.k, epsilon=args.epsilon,
            rounds=args.rounds, seed=args.seed,
            probes=args.probes if args.probes else (),
        )
    except ValueError as exc:
        return _fail(str(exc))
    collector = CausalCollector(n)
    with use_causal_collector(collector):
        try:
            out = run(spec)
        except ValueError as exc:
            return _fail(str(exc))
    graph = CausalGraph.from_source(collector)
    decided = graph.decided_pids()
    pid = args.pid if args.pid is not None else (decided[0] if decided else 0)

    if args.format == "timeline":
        rendered = render_timeline(graph)
    elif args.format == "json":
        rendered = json.dumps(cone_json(graph, pid), indent=2, sort_keys=True)
    elif args.format == "dot":
        rendered = render_dot(graph, pid=pid)
    else:
        rendered = render_explanation(graph, pid)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(rendered + "\n")
        except OSError as exc:
            return _fail(f"cannot write {args.out!r}: {exc}")
        if not args.quiet:
            print(f"wrote {args.out}")
    else:
        print(rendered)
    if not args.quiet:
        print(f"\nrun: ok={out.ok} algorithm={args.algorithm} n={n} "
              f"d={args.d} f={args.f} adversary={args.adversary} "
              f"seed={args.seed}; {len(graph)} causal events, "
              f"decided pids {decided}")
        for report in out.probe_reports:
            status = "ok" if report.ok else "VIOLATED"
            print(f"probe {report.name}: {status} "
                  f"({report.checks} checks, {len(report.violations)} "
                  f"violations)")
    if args.causal_out:
        records = [header_record()] + collector.to_records()
        try:
            with open(args.causal_out, "w", encoding="utf-8") as fh:
                lines = dump_jsonl(records, fh)
        except OSError as exc:
            return _fail(f"cannot write {args.causal_out!r}: {exc}")
        if not args.quiet:
            print(f"wrote {args.causal_out} ({lines} lines)")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .analysis.timeline import (
        cone_json,
        render_dot,
        render_explanation,
        render_timeline,
    )
    from .obs.export import dump_jsonl, header_record
    from .obs.fleet import (
        aggregate_metrics,
        discover_trails,
        fleet_probes,
        load_trails,
        stitch,
    )

    paths = list(args.trails)
    if args.trail_dir:
        paths.extend(discover_trails(args.trail_dir))
    if not paths:
        return _fail(
            "fleet needs per-node trails: positional JSONL files and/or "
            "--trail-dir (written by 'repro launch --trace-dir' or "
            "'repro node --trace')"
        )
    try:
        trails = load_trails(sorted(set(paths)))
    except (OSError, ValueError) as exc:
        return _fail(f"cannot load trails: {exc}")

    if args.action == "metrics":
        from .obs.prom import render_metrics_snapshot

        text = render_metrics_snapshot(aggregate_metrics(trails))
        if args.out:
            try:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
            except OSError as exc:
                return _fail(f"cannot write {args.out!r}: {exc}")
            if not args.quiet:
                print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0

    try:
        graph, report = stitch(trails)
    except (KeyError, ValueError) as exc:
        return _fail(f"cannot stitch trails: {exc}")

    if not args.quiet:
        print(
            f"stitched {len(report.nodes)} trails (nodes "
            f"{list(report.nodes)}): {report.events} events, "
            f"{report.stitched_edges} cross-node edges, "
            f"{report.orphan_delivers} orphan delivers, "
            f"{report.duplicate_delivers_dropped} duplicates dropped"
        )

    if args.action == "stitch":
        if args.out:
            records = [header_record()] + list(graph.events)
            try:
                with open(args.out, "w", encoding="utf-8") as fh:
                    lines = dump_jsonl(records, fh)
            except OSError as exc:
                return _fail(f"cannot write {args.out!r}: {exc}")
            if not args.quiet:
                print(f"wrote {args.out} ({lines} lines)")
        if not report.complete:
            print(
                f"INCOMPLETE: {report.orphan_delivers} delivers have no "
                "matching send (missing or truncated trails?)",
                file=sys.stderr,
            )
        return 0 if report.complete else 1

    if args.action == "probes":
        try:
            reports, context = fleet_probes(trails, graph, inject=args.inject)
        except ValueError as exc:
            return _fail(str(exc))
        for probe in reports:
            status = "ok" if probe.ok else "VIOLATED"
            print(f"probe {probe.name}: {status} ({probe.checks} checks, "
                  f"{len(probe.violations)} violations)")
            for violation in probe.violations:
                print(f"  - {violation.detail}")
        ok = all(probe.ok for probe in reports)
        if not args.quiet:
            inject = f" inject={args.inject}" if args.inject else ""
            print(f"fleet probes on {context['algorithm']} "
                  f"n={context['n']} d={context['d']} f={context['f']}"
                  f"{inject} -> " + ("OK" if ok else "FAILED"))
        if args.out:
            payload = {
                "stitch": report.to_dict(),
                "probes": [probe.to_dict() for probe in reports],
                "context": context,
                "ok": ok,
            }
            try:
                with open(args.out, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            except OSError as exc:
                return _fail(f"cannot write {args.out!r}: {exc}")
            if not args.quiet:
                print(f"wrote {args.out}")
        return 0 if ok else 1

    # explain: cross-node decision cone over the merged graph
    decided = graph.decided_pids()
    pid = args.pid if args.pid is not None else (decided[0] if decided else 0)
    if args.format == "timeline":
        rendered = render_timeline(graph)
    elif args.format == "json":
        rendered = json.dumps(cone_json(graph, pid), indent=2, sort_keys=True)
    elif args.format == "dot":
        rendered = render_dot(graph, pid=pid)
    else:
        rendered = render_explanation(graph, pid)
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(rendered + "\n")
        except OSError as exc:
            return _fail(f"cannot write {args.out!r}: {exc}")
        if not args.quiet:
            print(f"wrote {args.out}")
    else:
        print(rendered)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .analysis.profiling import render_hot_phases, render_phase_flame
    from .exec.bench import bench_grid, compare_bench, run_bench

    if args.compare:
        old_path, new_path = args.compare
        docs = []
        for path in (old_path, new_path):
            try:
                with open(path, encoding="utf-8") as fh:
                    docs.append(json.load(fh))
            except (OSError, ValueError) as exc:
                return _fail(f"cannot load BENCH file {path!r}: {exc}")
        try:
            report = compare_bench(docs[0], docs[1],
                                   max_regression=args.max_regression)
        except ValueError as exc:
            return _fail(str(exc))
        print(f"compared {report['cells_compared']} shared cells "
              f"(threshold: {report['max_regression']:.0%} drop)")
        if report["environment_changed"]:
            print("note: environment changed between documents "
                  "(different machine/cpu_count) — wall-clock deltas are "
                  "not regressions")
        if not report["same_grid"]:
            print("note: grids differ; only shared cells compared, "
                  "no overall verdict")
        elif report["overall_drop"] is not None and not args.quiet:
            print(f"overall decisions/sec drop: {report['overall_drop']:+.1%}")
        for row in report["regressions"]:
            print(f"REGRESSION {row['key']}: "
                  f"{row['old_decisions_per_second']} -> "
                  f"{row['new_decisions_per_second']} decisions/sec "
                  f"({row['drop']:+.1%})")
        if not args.quiet:
            for row in report["improvements"]:
                print(f"improvement {row['key']}: "
                      f"{row['old_decisions_per_second']} -> "
                      f"{row['new_decisions_per_second']} decisions/sec")
        print("bench comparison: " + ("OK" if report["ok"] else
                                      f"{len(report['regressions'])} "
                                      f"regression(s)"))
        return 0 if report["ok"] else 1

    try:
        grid = bench_grid(args.grid)
    except ValueError as exc:
        return _fail(str(exc))
    if args.workers < 1:
        return _fail(f"--workers must be >= 1, got {args.workers}")
    doc = run_bench(grid, grid_name=args.grid, workers=args.workers)
    env = doc["environment"]
    print(f"bench grid {args.grid!r}: {doc['trial_count']} trials "
          f"({doc['skipped_trials']} skipped), {doc['ok_count']} ok, "
          f"{doc['wall_seconds']:.3f}s "
          f"[cpu_count={env['cpu_count']} python={env['python']} "
          f"numpy={env['numpy']}]")
    tp = doc["throughput"]
    print(f"throughput: {tp['decisions_per_second']} decisions/sec "
          f"({tp['decisions_total']} decisions, "
          f"{tp['trials_per_second']} trials/sec)")
    if not args.quiet:
        for cell in doc["cells"]:
            print(f"  {cell['key']}: {cell['decisions_per_second']} "
                  f"decisions/sec over {cell['trials']} trials "
                  f"({cell['rounds_mean']} rounds avg)")
    if "parallel" in doc:
        par = doc["parallel"]
        label = (f"{par['speedup']}x" if par["speedup"] is not None
                 else f"unmeasurable ({par['note']})")
        print(f"parallel x{par['workers']}: {par['wall_seconds']:.3f}s, "
              f"identical={par['identical']}, speedup {label}")
    snapshot = {"schema": doc["schema"], "phases": doc["phases"],
                "cache": doc["cache"]}
    if not args.quiet:
        print()
        print(render_hot_phases(snapshot, top=args.hot))
    if args.flame:
        print()
        print(render_phase_flame(snapshot))
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            return _fail(f"cannot write {args.out!r}: {exc}")
        if not args.quiet:
            print(f"wrote {args.out}")
    return 0 if doc["ok_count"] == doc["trial_count"] else 1


def _demo_sources() -> tuple:
    """Populate a registry + profiler with a tiny instrumented workload."""
    from .core import RunSpec, run
    from .obs import MetricsRegistry, PhaseProfiler, use_profiler, use_registry

    registry = MetricsRegistry()
    profiler = PhaseProfiler()
    with use_registry(registry), use_profiler(profiler):
        run(RunSpec(algorithm="algo", n=6, d=2, f=1, seed=11))
        run(RunSpec(algorithm="averaging", n=6, d=2, f=1, seed=7))
    return registry, profiler


def _metrics_exposition(args: argparse.Namespace) -> "str | int":
    """Build the exposition text for metrics snapshot/serve (or exit code)."""
    from .analysis.profiling import metrics_record
    from .obs import get_profiler, global_registry, read_jsonl
    from .obs.prom import render_exposition

    if getattr(args, "from_jsonl", None):
        try:
            records = read_jsonl(args.from_jsonl)
        except (OSError, ValueError) as exc:
            return _fail(f"cannot read {args.from_jsonl!r}: {exc}")
        snap = metrics_record(records)
        if snap is None:
            return _fail(f"{args.from_jsonl!r} holds no metrics record")
        return render_exposition(snap)
    if getattr(args, "demo", False):
        registry, profiler = _demo_sources()
        return render_exposition(registry.snapshot(), profiler.snapshot())
    return render_exposition(
        global_registry().snapshot(), get_profiler().snapshot()
    )


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .analysis.profiling import metrics_record
    from .obs import read_jsonl
    from .obs.prom import diff_counter_snapshots, serve_metrics

    if args.action == "snapshot":
        text = _metrics_exposition(args)
        if isinstance(text, int):
            return text
        if args.out:
            try:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
            except OSError as exc:
                return _fail(f"cannot write {args.out!r}: {exc}")
            if not args.quiet:
                print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0

    if args.action == "diff":
        if len(args.files) != 2:
            return _fail("metrics diff needs exactly two JSONL files")
        snaps = []
        for path in args.files:
            try:
                records = read_jsonl(path)
            except (OSError, ValueError) as exc:
                return _fail(f"cannot read {path!r}: {exc}")
            snap = metrics_record(records)
            if snap is None:
                return _fail(f"{path!r} holds no metrics record")
            snaps.append(snap)
        deltas = diff_counter_snapshots(snaps[0], snaps[1])
        if not deltas:
            print("no counter deltas")
            return 0
        width = max(len(name) for name in deltas)
        for name, delta in deltas.items():
            print(f"  {name.ljust(width)}  {delta:+g}")
        return 0

    # serve
    text_or_code = _metrics_exposition(args)
    if isinstance(text_or_code, int):
        return text_or_code
    if args.from_jsonl or args.demo:
        # static snapshot: every scrape returns the same document
        static_text = text_or_code

        def source() -> str:
            return static_text
    else:
        def source() -> str:
            live = _metrics_exposition(args)
            assert isinstance(live, str)
            return live

    try:
        server = serve_metrics(source, host=args.host, port=args.port,
                               max_requests=args.max_requests)
    except OSError as exc:
        return _fail(f"cannot bind {args.host}:{args.port}: {exc}")
    host, port = server.address
    print(f"serving Prometheus metrics on http://{host}:{port}/metrics"
          + (f" (exiting after {args.max_requests} request(s))"
             if args.max_requests else ""), flush=True)
    try:
        served = server.serve_forever()
    except KeyboardInterrupt:
        return 0
    if not args.quiet:
        print(f"served {served} request(s)")
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    import json

    from .exec.live_launch import load_topology, run_node
    from .system.transport.base import TransportError

    try:
        doc = load_topology(args.topology)
    except (OSError, ValueError) as exc:
        return _fail(f"cannot load topology {args.topology!r}: {exc}")
    if not 0 <= args.id < int(doc["n"]):
        return _fail(f"--id must be in 0..{int(doc['n']) - 1}, got {args.id}")

    def emit(record: dict) -> None:
        # Printed before any --linger window so the launcher can read the
        # decision while this node keeps serving /metrics.
        print(json.dumps(record, sort_keys=True), flush=True)

    try:
        record = run_node(
            doc, args.id, metrics_port=args.metrics_port,
            linger=args.linger, trace_path=args.trace, emit=emit,
        )
    except (TransportError, OSError) as exc:
        return _fail(f"node {args.id} failed: {exc}")
    return 0 if record["decided"] and record["completed"] else 1


def _cmd_launch(args: argparse.Namespace) -> int:
    import json

    from .exec.live_launch import launch_local

    if args.n < 2:
        return _fail(f"--n must be >= 2, got {args.n}")
    try:
        report = launch_local(
            args.algorithm, args.n, args.d, args.f,
            kind=args.transport, seed=args.seed, broadcast=args.broadcast,
            p=args.p, k=args.k, epsilon=args.epsilon, rounds=args.rounds,
            timeout=args.timeout, metrics_port=args.metrics_port,
            linger=args.linger, trace_dir=args.trace_dir,
        )
    except ValueError as exc:
        return _fail(str(exc))
    print(f"launched {report['n']} {args.transport} nodes: "
          f"{report['algorithm']} d={report['d']} f={report['f']} "
          f"seed={report['seed']} ({report['instance']})")
    for record in report["nodes"]:
        if record is None:
            continue
        decision = record["decision"]
        shown = ("-" if decision is None
                 else str([round(x, 4) for x in decision]))
        print(f"  node {record['node']}: decided={record['decided']} "
              f"rounds={record['rounds']} decision={shown}")
    for err in report["errors"]:
        print(f"  ERROR {err}", file=sys.stderr)
    print(f"agreement spread {report['agreement_spread']:.3e} "
          f"(tolerance {report['agreement_tolerance']:.3e}); "
          f"{report['decided_nodes']}/{report['n']} decided -> "
          + ("OK" if report["ok"] else "FAILED"))
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            return _fail(f"cannot write {args.out!r}: {exc}")
        if not args.quiet:
            print(f"wrote {args.out}")
    return 0 if report["ok"] else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import cli as lint_cli

    return lint_cli.run(args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .analysis.profiling import render_flame, render_summary
    from .obs import (
        MetricsRegistry,
        Tracer,
        trace_to_records,
        use_registry,
        use_tracer,
        write_jsonl,
    )

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        return _fail("trace requires a command to run, "
                     "e.g. 'trace --out run.jsonl demo --d 3'")
    if rest[0] == "trace":
        return _fail("trace cannot wrap itself")

    level = "warning" if args.quiet else ("debug" if args.verbose else "info")
    tracer = Tracer(level=level, echo=args.verbose)
    registry = MetricsRegistry()
    with use_tracer(tracer), use_registry(registry):
        inner_code = main(rest)
    try:
        lines = write_jsonl(args.out, tracer, registry)
    except OSError as exc:
        return _fail(f"cannot write trace to {args.out!r}: {exc}")
    records = trace_to_records(tracer, registry)
    if not args.quiet:
        print(f"\n--- trace: {len(tracer.spans)} spans, "
              f"{len(tracer.events)} events -> {args.out} ({lines} lines)")
        print(render_summary(records))
        if args.flame:
            print("\n" + render_flame(records))
    return inner_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Relaxed Byzantine Vector Consensus — reproduction toolkit",
    )
    common = argparse.ArgumentParser(add_help=False)
    verbosity = common.add_mutually_exclusive_group()
    verbosity.add_argument("--quiet", action="store_true",
                           help="warnings only (tracer level 'warning')")
    verbosity.add_argument("--verbose", action="store_true",
                           help="echo debug events (tracer level 'debug')")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", parents=[common],
                       help="quick end-to-end ALGO demonstration")
    p.add_argument("--d", type=int, default=3)
    p.add_argument("--n", type=int, default=None,
                   help="processes (default d+1; must satisfy n >= 3f+1)")
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("bounds", parents=[common],
                       help="print the paper's n-bounds")
    p.add_argument("--d", type=int, required=True)
    p.add_argument("--f", type=int, required=True)
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser("delta", parents=[common],
                       help="compute δ*(S) on random inputs")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--d", type=int, required=True)
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--p", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_delta)

    p = sub.add_parser("verdicts", parents=[common],
                       help="run the impossibility constructions")
    p.add_argument("--d", type=int, default=3)
    p.set_defaults(func=_cmd_verdicts)

    p = sub.add_parser("fuzz", parents=[common],
                       help="deterministic-simulation soak test")
    p.add_argument("--algorithm", default="algo",
                   choices=["exact", "algo", "k1", "averaging"])
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--inject", default=None,
                   choices=["split-brain", "stale-echo"],
                   help="enable a named bug injection (demo/testing of the "
                        "fuzz->shrink->replay loop)")
    p.add_argument("--shrink", action="store_true",
                   help="minimise each violation before printing its token")
    p.add_argument("--save-dir", default=None,
                   help="write each violation as a seed file in this directory")
    p.add_argument("--workers", type=int, default=1,
                   help="fan trials over N worker processes (violations are "
                        "identical to a serial run's)")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "sweep", parents=[common],
        help="run a deterministic experiment grid (optionally in parallel)",
    )
    p.add_argument("--algorithms", type=_str_tuple, default=("algo",),
                   help="comma list: exact,algo,krelaxed,scalar,iterative,"
                        "averaging (default algo)")
    p.add_argument("--d", type=_int_tuple, default=(2,),
                   help="comma list of dimensions (default 2)")
    p.add_argument("--f", type=_int_tuple, default=(1,),
                   help="comma list of fault budgets (default 1)")
    p.add_argument("--n", type=_int_tuple, default=None,
                   help="comma list of system sizes (default: the smallest "
                        "legal n per cell; undersized cells are skipped)")
    p.add_argument("--adversaries", type=_str_tuple, default=("none",),
                   help="comma list: none,honest,silent,crash,mutate,"
                        "equivocate,duplicate (default none)")
    p.add_argument("--reps", type=int, default=1,
                   help="repetitions per cell, each with its own derived seed")
    p.add_argument("--seed", type=int, default=0,
                   help="base seed hashed into every cell's trial seed")
    p.add_argument("--p", type=float, default=2.0)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--epsilon", type=float, default=5e-2)
    p.add_argument("--probes", type=_str_tuple, default=None,
                   help="comma list of online probes for every trial "
                        "(validity,agreement,broadcast or 'all'); violation "
                        "totals land in the summary, never in the digest")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes (1 = in-process serial)")
    p.add_argument("--chunksize", type=int, default=None,
                   help="trials per pool chunk (default ~4 chunks/worker)")
    p.add_argument("--compare", action="store_true",
                   help="run serially AND in parallel; exit 1 unless the "
                        "decision digests are identical")
    p.add_argument("--measure-cache", action="store_true",
                   help="with --compare: add a cache-disabled pass to "
                        "measure the geometry cache speedup")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the geometry kernel cache for this sweep")
    p.add_argument("--out", default=None,
                   help="write the sweep/comparison report as JSON "
                        "(BENCH_sweep.json by convention)")
    p.set_defaults(func=_cmd_sweep)

    for name, helptext in (
        ("shrink", "minimise a violating scenario (same invariant must "
                   "keep failing)"),
        ("replay", "re-execute a token/seed file under full tracing"),
    ):
        p = sub.add_parser(name, parents=[common], help=helptext)
        p.add_argument("--token", default=None,
                       help="replay token (dst1-...) as printed by fuzz")
        p.add_argument("--seed-file", default=None,
                       help="corpus seed file (tests/corpus/*.json)")
        if name == "shrink":
            p.add_argument("--invariant", default=None,
                           choices=["agreement", "validity", "termination"],
                           help="invariant to preserve (default: first "
                                "violated)")
            p.add_argument("--max-attempts", type=int, default=200)
            p.add_argument("--out", default=None,
                           help="write the shrunk scenario as a seed file")
            p.add_argument("--notes", default=None,
                           help="notes stored in the --out seed file")
            p.set_defaults(func=_cmd_shrink)
        else:
            p.add_argument("--trace", default=None,
                           help="dump the forensic span/metrics trail as "
                                "JSONL to this path")
            p.add_argument("--probes", type=_str_tuple, default=(),
                           help="comma-separated online probes to run "
                                "alongside the replay (validity, agreement, "
                                "broadcast, or 'all')")
            p.set_defaults(func=_cmd_replay)

    p = sub.add_parser(
        "explain", parents=[common],
        help="run one spec under causal tracing; explain a decision's "
             "provenance (causal cone / timeline / DOT)",
    )
    p.add_argument("--algorithm", default="algo",
                   help="exact,algo,krelaxed,scalar,iterative,averaging")
    p.add_argument("--n", type=int, default=None,
                   help="processes (default: smallest legal n for the cell)")
    p.add_argument("--d", type=int, default=2)
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--adversary", default="none",
                   help="named adversary: none,honest,silent,crash,mutate,"
                        "equivocate,duplicate (default none)")
    p.add_argument("--pid", type=int, default=None,
                   help="process whose decision to explain (default: the "
                        "lowest decided pid)")
    p.add_argument("--rounds", type=int, default=None)
    p.add_argument("--p", type=float, default=2.0)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--epsilon", type=float, default=5e-2)
    p.add_argument("--probes", type=_str_tuple, default=None,
                   help="comma list of online probes to run alongside "
                        "(validity,agreement,broadcast or 'all')")
    p.add_argument("--format", default="cone",
                   choices=["cone", "timeline", "json", "dot"],
                   help="cone: text causal cone (default); timeline: "
                        "per-round event groups; json: machine-readable "
                        "cone; dot: Graphviz DAG")
    p.add_argument("--out", default=None,
                   help="write the rendering to this file instead of stdout")
    p.add_argument("--causal-out", default=None,
                   help="also dump the full causal event log as JSONL")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "bench", parents=[common],
        help="throughput benchmark over a standard grid, with per-phase "
             "timing; or diff two BENCH files (--compare)",
    )
    p.add_argument("--grid", default="small",
                   choices=["tiny", "small", "standard"],
                   help="named standard grid (default small; tiny is the "
                        "CI smoke grid)")
    p.add_argument("--workers", type=int, default=1,
                   help="add a parallel pass with N workers (speedup is "
                        "reported only when cpu_count > 1; flagged "
                        "unmeasurable on a 1-core machine)")
    p.add_argument("--hot", type=int, default=10,
                   help="rows in the hot-phase table (default 10)")
    p.add_argument("--flame", action="store_true",
                   help="also print the aggregated phase-path tree")
    p.add_argument("--out", default=None,
                   help="write the BENCH document as JSON "
                        "(BENCH_perf.json by convention)")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
                   help="diff two BENCH JSON files instead of running; "
                        "exit 1 when throughput regressed beyond "
                        "--max-regression")
    p.add_argument("--max-regression", type=float, default=0.5,
                   help="allowed fractional decisions/sec drop before "
                        "--compare fails (default 0.5)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "metrics", parents=[common],
        help="Prometheus text-format metrics: serve / snapshot / diff",
    )
    p.add_argument("action", choices=["serve", "snapshot", "diff"],
                   help="serve: HTTP endpoint at /metrics; snapshot: "
                        "exposition text to stdout/--out; diff: counter "
                        "deltas between two exported JSONL traces")
    p.add_argument("files", nargs="*",
                   help="for diff: OLD.jsonl NEW.jsonl")
    p.add_argument("--from", dest="from_jsonl", default=None,
                   help="serve/snapshot the metrics record of an exported "
                        "JSONL trace instead of the live registry")
    p.add_argument("--demo", action="store_true",
                   help="populate the metrics from a small instrumented "
                        "demo workload first (so a fresh process has "
                        "something to scrape)")
    p.add_argument("--host", default="127.0.0.1",
                   help="serve: bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=9464,
                   help="serve: TCP port; 0 picks a free port (default 9464)")
    p.add_argument("--max-requests", type=int, default=None,
                   help="serve: exit after N scrapes (CI smoke uses 1)")
    p.add_argument("--out", default=None,
                   help="snapshot: write the exposition text to this file")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "node", parents=[common],
        help="run one live consensus node from a topology file "
             "(prints a one-line JSON decision record)",
    )
    p.add_argument("--topology", required=True,
                   help="topology JSON (repro.transport.topology/1), "
                        "shared by every node of the cluster")
    p.add_argument("--id", type=int, required=True,
                   help="this node's id (0..n-1)")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve live Prometheus text at /metrics on this "
                        "port for the whole run")
    p.add_argument("--linger", type=float, default=0.0,
                   help="keep serving /metrics this many seconds after "
                        "the decision line is printed")
    p.add_argument("--trace", default=None,
                   help="export this node's trail (spans, metrics, causal "
                        "events) as JSONL; enables causal tracing")
    p.set_defaults(func=_cmd_node)

    p = sub.add_parser(
        "launch", parents=[common],
        help="spawn an n-node local live cluster and judge agreement",
    )
    p.add_argument("--algorithm", default="averaging",
                   help="exact,algo,krelaxed,scalar,iterative,averaging "
                        "(default averaging)")
    p.add_argument("--n", type=int, default=4)
    p.add_argument("--d", type=int, default=2)
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--transport", default="tcp", choices=["tcp", "uds"],
                   help="loopback TCP or Unix-domain sockets (default tcp)")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed: inputs, per-node rngs, signature keys")
    p.add_argument("--broadcast", default="eig",
                   choices=["eig", "dolev-strong", "atomic"],
                   help="sync algorithms' broadcast primitive (default eig)")
    p.add_argument("--p", type=float, default=2.0)
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--epsilon", type=float, default=5e-2)
    p.add_argument("--rounds", type=int, default=None,
                   help="protocol rounds (default: the algorithm's own "
                        "estimate, resolved into the topology file)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="whole-cluster wall-clock budget in seconds")
    p.add_argument("--metrics-port", type=int, default=None,
                   help="base port: node PID serves /metrics on "
                        "metrics-port + PID (every node)")
    p.add_argument("--linger", type=float, default=0.0,
                   help="nodes keep serving /metrics this long after "
                        "deciding")
    p.add_argument("--trace-dir", default=None,
                   help="collect one causal-traced JSONL trail per node "
                        "in this directory (enables the fleet probe "
                        "block in the report)")
    p.add_argument("--out", default=None,
                   help="write the full launch report as JSON")
    p.set_defaults(func=_cmd_launch)

    p = sub.add_parser(
        "fleet", parents=[common],
        help="stitch per-node live trails into one causal graph; "
             "post-hoc probes, explanations, aggregated metrics",
    )
    p.add_argument("action",
                   choices=["stitch", "probes", "explain", "metrics"],
                   help="stitch: merge trails (JSONL out); probes: "
                        "post-hoc invariant verdicts; explain: cross-"
                        "node decision cone; metrics: aggregated "
                        "Prometheus exposition")
    p.add_argument("trails", nargs="*",
                   help="per-node trail JSONL files")
    p.add_argument("--trail-dir", default=None,
                   help="directory of *.jsonl trails (repro launch "
                        "--trace-dir output)")
    p.add_argument("--pid", type=int, default=None,
                   help="explain: node whose decision to explain "
                        "(default: lowest decided)")
    p.add_argument("--format", default="explain",
                   choices=["explain", "timeline", "json", "dot"],
                   help="explain rendering (default explain)")
    p.add_argument("--inject", default=None,
                   choices=["split-brain", "stale-echo"],
                   help="probes: perturb the logged decisions to "
                        "demonstrate probe sensitivity")
    p.add_argument("--out", default=None,
                   help="write the action's artifact (stitched JSONL, "
                        "probe report JSON, rendering, or exposition)")
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "lint", parents=[common],
        help="protocol-aware static analysis of the source tree",
    )
    from .lint import cli as lint_cli

    lint_cli.add_arguments(p)
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "trace", parents=[common],
        help="run another command under the tracer; dump JSONL + summary",
    )
    p.add_argument("--out", default="repro_trace.jsonl",
                   help="JSONL output path (default repro_trace.jsonl)")
    p.add_argument("--flame", action="store_true",
                   help="also print the span tree (text flame graph)")
    p.add_argument("rest", nargs=argparse.REMAINDER,
                   help="the command to run, with its own flags")
    p.set_defaults(func=_cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns the process exit code)."""
    from .obs import Tracer, get_tracer, set_tracer

    args = build_parser().parse_args(argv)
    installed = None
    tracer = get_tracer()
    if getattr(args, "verbose", False) and not tracer.enabled:
        # --verbose outside `trace`: echo debug events without collecting
        # a span dump.
        installed = set_tracer(Tracer(level="debug", echo=True))
    elif getattr(args, "quiet", False) and tracer.enabled:
        tracer.level = "warning"
    try:
        return args.func(args)
    finally:
        if installed is not None:
            set_tracer(installed)


if __name__ == "__main__":
    sys.exit(main())
