"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``      run a quick end-to-end ALGO demonstration
``bounds``    print the paper's process-count bounds for given (d, f)
``delta``     compute δ*(S) for random or provided inputs
``verdicts``  execute the impossibility constructions for a given d
``fuzz``      randomised adversary soak test of one algorithm

Examples::

    python -m repro demo --d 4 --seed 3
    python -m repro bounds --d 5 --f 2
    python -m repro delta --n 5 --d 4 --f 1 --seed 0
    python -m repro verdicts --d 3
    python -m repro fuzz --algorithm algo --trials 100
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import run_algo, run_exact_bvc
    from .core.bounds import exact_bvc_min_n, theorem9_bound
    from .system import Adversary

    d, f = args.d, 1
    n = d + 1
    rng = np.random.default_rng(args.seed)
    inputs = rng.normal(size=(n, d))
    inputs[-1] = 25.0  # adversarially chosen faulty input
    print(f"n={n}, d={d}, f={f}; exact BVC needs n >= {exact_bvc_min_n(d, f)}")
    try:
        run_exact_bvc(inputs, f=f, adversary=Adversary(faulty=[n - 1]))
        print("exact BVC: succeeded (Γ nonempty for this instance)")
    except ValueError as exc:
        print(f"exact BVC: {exc}")
    out = run_algo(inputs, f=f, adversary=Adversary(faulty=[n - 1]))
    print(f"ALGO: ok={out.ok}  δ*={out.delta_used:.6f}  "
          f"(Theorem 9 bound {theorem9_bound(out.honest_inputs, n):.6f})")
    print(f"decision: {np.round(next(iter(out.decisions.values())), 4)}")
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .core import bounds

    d, f = args.d, args.f
    rows = [
        ("exact BVC (sync)", bounds.exact_bvc_min_n(d, f)),
        ("approximate BVC (async)", bounds.approx_bvc_min_n(d, f)),
        ("k-relaxed exact, k=1", bounds.k_relaxed_exact_min_n(d, f, 1)),
        ("k-relaxed exact, 2<=k<=d", bounds.k_relaxed_exact_min_n(d, f, min(2, d))),
        ("(δ,p) exact, constant δ", bounds.delta_p_exact_min_n(d, f, 1.0)),
        ("(δ,p) approx, constant δ", bounds.delta_p_approx_min_n(d, f, 1.0)),
        ("input-dependent δ (Lemma 10 floor)", bounds.input_dependent_min_n(f)),
    ]
    width = max(len(r[0]) for r in rows)
    print(f"tight process-count bounds for d={d}, f={f}:")
    for name, val in rows:
        print(f"  {name.ljust(width)}  n >= {val}")
    if f >= 1 and 3 * f + 1 <= (d + 1) * f:
        k = bounds.kappa(3 * f + 1, f, d, 2)
        print(f"  κ(3f+1={3 * f + 1}, f, d, 2) = {k:.4f}  "
              f"(δ* < κ · max-edge at the minimum system size)")
    return 0


def _cmd_delta(args: argparse.Namespace) -> int:
    from .geometry import delta_star
    from .geometry.norms import max_edge_length, min_edge_length

    rng = np.random.default_rng(args.seed)
    S = rng.normal(size=(args.n, args.d))
    res = delta_star(S, args.f, p=args.p)
    print(f"random inputs: n={args.n}, d={args.d}, f={args.f}, p={args.p}, "
          f"seed={args.seed}")
    print(f"δ*(S)      = {res.value:.9f}   (certified gap {res.gap:.2e})")
    print(f"minimiser  = {np.round(res.point, 5)}")
    print(f"min-edge/2 = {min_edge_length(S) / 2:.9f}")
    if args.n >= 3:
        print(f"max-edge/(n-2) = {max_edge_length(S) / (args.n - 2):.9f}")
    return 0


def _cmd_verdicts(args: argparse.Namespace) -> int:
    from .core import (
        theorem3_verdict,
        theorem4_verdict,
        theorem5_verdict,
        theorem6_verdict,
    )

    d = args.d
    print(f"impossibility constructions at d={d} (f=1):")
    if d >= 3:
        print(f"  Theorem 3 (k=2, n=d+1):      Ψ(Y) empty = {theorem3_verdict(d)}")
        sep, thr = theorem4_verdict(d)
        print(f"  Theorem 4 (k=2, n=d+2):      forced sep {sep} >= 2ε = {thr}")
    else:
        print("  Theorems 3/4 need d >= 3")
    print(f"  Theorem 5 (δ=0.25, n=d+1):   intersection empty = "
          f"{theorem5_verdict(d, 0.25)}")
    sep, thr = theorem6_verdict(d, 0.25, 0.1)
    print(f"  Theorem 6 (δ=0.25, n=d+2):   forced sep {sep} > ε = {thr}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .analysis.fuzz import fuzz_consensus

    failures = fuzz_consensus(args.algorithm, trials=args.trials, seed=args.seed)
    print(f"{args.trials} randomised runs of {args.algorithm!r}: "
          f"{len(failures)} invariant violations")
    for fail in failures:
        print(f"  {fail}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Relaxed Byzantine Vector Consensus — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="quick end-to-end ALGO demonstration")
    p.add_argument("--d", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("bounds", help="print the paper's n-bounds")
    p.add_argument("--d", type=int, required=True)
    p.add_argument("--f", type=int, required=True)
    p.set_defaults(func=_cmd_bounds)

    p = sub.add_parser("delta", help="compute δ*(S) on random inputs")
    p.add_argument("--n", type=int, required=True)
    p.add_argument("--d", type=int, required=True)
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--p", type=float, default=2.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_delta)

    p = sub.add_parser("verdicts", help="run the impossibility constructions")
    p.add_argument("--d", type=int, default=3)
    p.set_defaults(func=_cmd_verdicts)

    p = sub.add_parser("fuzz", help="randomised adversary soak test")
    p.add_argument("--algorithm", default="algo",
                   choices=["exact", "algo", "k1", "averaging"])
    p.add_argument("--trials", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (returns the process exit code)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
