"""The approved transport seams — XPT's allowlist, ROADMAP item 1's spec.

ROADMAP item 1 extracts a transport interface so ``core/`` and
``system/broadcast/`` can run as live asyncio nodes instead of simulated
processes.  That refactor is only safe if protocol code touches the
simulated transport exclusively through a narrow, enumerated surface —
anything else (a private deque, a scheduler field) silently couples the
algorithms to the simulator and breaks the moment the transport is
swapped.

This module *is* that surface, as data.  The XPT family enforces it:

* :data:`TRANSPORT_SEAMS` — the only names protocol code (``core/``,
  ``system/broadcast/``) may import from :mod:`repro.system.network`,
  :mod:`repro.system.scheduler`, and :mod:`repro.system.process`.  The
  transport extraction must preserve exactly these names and their
  contracts; everything else in those modules is free to change.
* :data:`APPROVED_HANDLER_GLOBALS` — module-level mutable state that is
  deliberately reachable from message handlers.  Each entry is
  node-local memoisation whose content never influences a decision value
  (results are bit-identical with the cache off), so it survives the
  move to one-OS-process-per-node unchanged.

Growing either list is an interface decision, not a lint workaround:
additions must be reflected in ``docs/static_analysis.md`` (and, for
seams, in the ROADMAP item 1 inventory).
"""

from __future__ import annotations

__all__ = ["APPROVED_HANDLER_GLOBALS", "SEAM_MODULES", "TRANSPORT_SEAMS"]

#: logical path -> names protocol code may import from that module.
TRANSPORT_SEAMS: dict[str, frozenset[str]] = {
    # The message envelope and its helpers: pure data, wire-ready.
    "system/messages.py": frozenset(
        {"ALL", "Message", "canonical_bytes", "defensive_copy", "estimate_bytes"}
    ),
    # The process-facing execution surface (what a live node must offer).
    "system/process.py": frozenset(
        {"Context", "SyncProcess", "AsyncProcess", "Inbox"}
    ),
    # The buffer abstraction a real transport replaces wholesale.
    "system/network.py": frozenset({"Network", "NetworkStats"}),
    # The driver surface the runners sit on.
    "system/scheduler.py": frozenset(
        {
            "SynchronousScheduler",
            "AsyncScheduler",
            "RunResult",
            "DeliveryPolicy",
            "RandomPolicy",
            "FifoPolicy",
            "DelayPolicy",
        }
    ),
}

#: Module names (dotted) covered by the seam discipline.
SEAM_MODULES: dict[str, str] = {
    "repro.system.messages": "system/messages.py",
    "repro.system.process": "system/process.py",
    "repro.system.network": "system/network.py",
    "repro.system.scheduler": "system/scheduler.py",
}

#: (logical path, global name) pairs a handler may reach: node-local
#: memoisation, deterministic, decision-transparent (see module docstring).
APPROVED_HANDLER_GLOBALS: frozenset[tuple[str, str]] = frozenset(
    {
        # Cross-instance memo of round-1 selections: every correct process
        # recomputes the identical deterministic selection for the same
        # reference set; the cache only dedupes the convex solve.  Cleared
        # wholesale (never iterated), so hash order cannot leak.
        ("core/averaging.py", "_SELECT_CACHE"),
    }
)
