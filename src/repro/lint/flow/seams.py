"""The approved transport seams — XPT's allowlist, ROADMAP item 1's spec.

ROADMAP item 1 extracts a transport interface so ``core/`` and
``system/broadcast/`` can run as live asyncio nodes instead of simulated
processes.  That refactor is only safe if protocol code touches the
simulated transport exclusively through a narrow, enumerated surface —
anything else (a private deque, a scheduler field) silently couples the
algorithms to the simulator and breaks the moment the transport is
swapped.

This module *is* that surface, as data.  The XPT family enforces it:

* :data:`TRANSPORT_SEAMS` — the only names protocol code (``core/``,
  ``system/broadcast/``) may import from the seam modules: the
  message/process/network/scheduler surface, the transport registry
  (:mod:`repro.system.transport.base`), and the broadcast construction
  surface (:mod:`repro.system.broadcast.interface`).  The backend
  implementation modules (``transport/sim.py``, ``transport/live.py``,
  ``transport/wire.py``, ``transport/peer.py``) export *nothing* to
  protocol code — algorithms select backends by name, never by class.
* :data:`SEAM_INTERNAL` — seam modules themselves (the interface facades
  and package ``__init__`` re-exporters), exempt from the import
  allowlist so the facade can reach the implementations it fronts.
* :data:`APPROVED_HANDLER_GLOBALS` — module-level mutable state that is
  deliberately reachable from message handlers.  Each entry is
  node-local memoisation whose content never influences a decision value
  (results are bit-identical with the cache off), so it survives the
  move to one-OS-process-per-node unchanged.

Growing either list is an interface decision, not a lint workaround:
additions must be reflected in ``docs/static_analysis.md`` (and, for
seams, in the ROADMAP item 1 inventory).
"""

from __future__ import annotations

__all__ = [
    "APPROVED_HANDLER_GLOBALS",
    "SEAM_INTERNAL",
    "SEAM_MODULES",
    "TRANSPORT_SEAMS",
]

#: logical path -> names protocol code may import from that module.
TRANSPORT_SEAMS: dict[str, frozenset[str]] = {
    # The message envelope and its helpers: pure data, wire-ready.
    "system/messages.py": frozenset(
        {"ALL", "Message", "canonical_bytes", "defensive_copy", "estimate_bytes"}
    ),
    # The process-facing execution surface (what a live node must offer).
    "system/process.py": frozenset(
        {"Context", "SyncProcess", "AsyncProcess", "Inbox"}
    ),
    # The buffer abstraction a real transport replaces wholesale.
    "system/network.py": frozenset({"Network", "NetworkStats"}),
    # The driver surface the runners sit on.
    "system/scheduler.py": frozenset(
        {
            "SynchronousScheduler",
            "AsyncScheduler",
            "RunResult",
            "DeliveryPolicy",
            "RandomPolicy",
            "FifoPolicy",
            "DelayPolicy",
        }
    ),
    # The backend registry — how protocol code selects an execution
    # substrate.  Note: no backend classes; selection is by name only.
    "system/transport/base.py": frozenset(
        {
            "Transport",
            "TransportError",
            "get_transport",
            "register_transport",
            "transport_names",
        }
    ),
    "system/transport/__init__.py": frozenset(
        {
            "Transport",
            "TransportError",
            "get_transport",
            "register_transport",
            "transport_names",
        }
    ),
    # Backend implementations: private to the transport package.
    "system/transport/sim.py": frozenset(),
    "system/transport/live.py": frozenset(),
    "system/transport/wire.py": frozenset(),
    "system/transport/peer.py": frozenset(),
    # Broadcast construction surface: machines come from the factory,
    # never from the concrete State constructors.
    "system/broadcast/interface.py": frozenset(
        {
            "BROADCAST_KINDS",
            "BroadcastDefault",
            "broadcast_rounds",
            "majority",
            "make_broadcast",
        }
    ),
    "system/broadcast/__init__.py": frozenset(
        {
            "BROADCAST_KINDS",
            "BroadcastDefault",
            "broadcast_rounds",
            "majority",
            "make_broadcast",
            "INIT",
            "ECHO",
            "READY",
            "eig_total_rounds",
            "ds_total_rounds",
        }
    ),
    # Protocol constants stay importable; the State classes do not.
    "system/broadcast/bracha.py": frozenset({"INIT", "ECHO", "READY"}),
    "system/broadcast/om.py": frozenset({"eig_total_rounds"}),
    "system/broadcast/dolev_strong.py": frozenset({"ds_total_rounds"}),
}

#: Module names (dotted) covered by the seam discipline.
SEAM_MODULES: dict[str, str] = {
    "repro.system.messages": "system/messages.py",
    "repro.system.process": "system/process.py",
    "repro.system.network": "system/network.py",
    "repro.system.scheduler": "system/scheduler.py",
    "repro.system.transport": "system/transport/__init__.py",
    "repro.system.transport.base": "system/transport/base.py",
    "repro.system.transport.sim": "system/transport/sim.py",
    "repro.system.transport.live": "system/transport/live.py",
    "repro.system.transport.wire": "system/transport/wire.py",
    "repro.system.transport.peer": "system/transport/peer.py",
    "repro.system.broadcast": "system/broadcast/__init__.py",
    "repro.system.broadcast.interface": "system/broadcast/interface.py",
    "repro.system.broadcast.bracha": "system/broadcast/bracha.py",
    "repro.system.broadcast.om": "system/broadcast/om.py",
    "repro.system.broadcast.dolev_strong": "system/broadcast/dolev_strong.py",
}

#: Seam-machinery files exempt from the import allowlist: the facades
#: must import the implementations they front (interface.py constructs
#: the State classes; the package __init__ modules re-export).  The
#: private-attribute discipline still applies to them.
SEAM_INTERNAL: frozenset[str] = frozenset(
    {
        "system/broadcast/interface.py",
        "system/broadcast/__init__.py",
        "system/transport/__init__.py",
    }
)

#: (logical path, global name) pairs a handler may reach: node-local
#: memoisation, deterministic, decision-transparent (see module docstring).
APPROVED_HANDLER_GLOBALS: frozenset[tuple[str, str]] = frozenset(
    {
        # Cross-instance memo of round-1 selections: every correct process
        # recomputes the identical deterministic selection for the same
        # reference set; the cache only dedupes the convex solve.  Cleared
        # wholesale (never iterated), so hash order cannot leak.
        ("core/averaging.py", "_SELECT_CACHE"),
    }
)
