"""The four flow rule families: FLOW, TNT, QUO, XPT.

Flow rules run over the :class:`~repro.lint.flow.model.ProgramModel`
(whole program) rather than one file, so they subclass
:class:`FlowRule` — same id/family/severity/scopes surface as the
per-file :class:`~repro.lint.engine.Rule`, but ``check_program(model)``
instead of ``check(ctx)``.  They register into their own registry;
:func:`repro.lint.engine.lint_paths` merges both when ``flow=True``.

Families
--------
* **FLOW** — message exhaustiveness.  ``FLOW001``: a process class sends
  a message kind no handler branch of the class dispatches on (the
  message is silently dropped at every correct receiver).  ``FLOW002``:
  a handler dispatches on a kind the class never sends (dead protocol
  arm — usually a renamed tag).
* **TNT** — interprocedural determinism taint.  ``TNT001``: a value
  derived from wall clock / unseeded RNG / set-iteration order reaches
  ``decide()``.  ``TNT002``: such a value reaches a message payload.
  ``TNT003``: such a value reaches a geometry/memo cache key.  These
  upgrade DET001–004 from "source present in file" to "source *flows
  into* quantity the paper's guarantees range over", which is why the
  DET002 perf-counter exemption is safe: TNT002 still fires if a timing
  ever leaks into a payload.
* **QUO** — quorum provenance.  ``QUO001``: resilience-shaped arithmetic
  (``3*f + 1`` ...) inline in ``system/`` (RES001 covers ``core/``).
  ``QUO002``: a ``*threshold``/``*quorum`` binding whose value does not
  reach :mod:`repro.core.bounds` through the dataflow — having the right
  number is not enough, it must *provably come from* the audited bound.
* **XPT** — transport readiness (the static gate for ROADMAP item 1).
  ``XPT001``: mutable module-global state reachable from a message
  handler (breaks one-OS-process-per-node).  ``XPT002``: message payload
  contains a non-data value (lambda, process/context/RNG object).
  ``XPT003``: protocol code imports a non-seam name from a transport
  module, or touches a transport object's private attribute.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import Finding
from ..rules.hygiene import HANDLER_METHODS
from ..rules.resilience import _is_bound_mult
from ..rules.common import is_int_const
from .model import ClassInfo, ModuleInfo, ProgramModel
from .msgflow import MessageProfile, class_profile
from .seams import (
    APPROVED_HANDLER_GLOBALS,
    SEAM_INTERNAL,
    SEAM_MODULES,
    TRANSPORT_SEAMS,
)
from .taint import TaintAnalysis, _TRANSPORT_PAYLOAD_ARG
from .model import _import_anchor

__all__ = ["FlowRule", "all_flow_rules", "register_flow"]

_BOUNDS_PREFIX = "repro.core.bounds."


class FlowRule:
    """Base class for whole-program rules (FLOW/TNT/QUO/XPT)."""

    id: str = ""
    family: str = ""
    severity: str = "error"
    #: logical-path prefixes findings may be *reported* in.
    scopes: tuple[str, ...] = ()
    summary: str = ""

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        raise NotImplementedError

    def in_scope(self, module: ModuleInfo) -> bool:
        if not self.scopes:
            return True
        return module.logical_path.startswith(self.scopes)

    def finding(
        self, module: ModuleInfo, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=line,
            col=col + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


_FLOW_REGISTRY: dict[str, FlowRule] = {}


def register_flow(rule_cls: type[FlowRule]) -> type[FlowRule]:
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"flow rule {rule_cls.__name__} has no id")
    if rule.id in _FLOW_REGISTRY:
        raise ValueError(f"duplicate flow rule id {rule.id!r}")
    _FLOW_REGISTRY[rule.id] = rule
    return rule_cls


def all_flow_rules() -> tuple[FlowRule, ...]:
    return tuple(_FLOW_REGISTRY[k] for k in sorted(_FLOW_REGISTRY))


# --------------------------------------------------------------------- shared
def _profiles(model: ProgramModel) -> list[MessageProfile]:
    cached = getattr(model, "_flow_profiles", None)
    if cached is None:
        cached = [class_profile(model, cls) for cls in model.process_classes()]
        model._flow_profiles = cached  # type: ignore[attr-defined]
    return cached


def _taint(model: ProgramModel) -> TaintAnalysis:
    cached = getattr(model, "_flow_taint", None)
    if cached is None:
        cached = TaintAnalysis(model)
        model._flow_taint = cached  # type: ignore[attr-defined]
    return cached


# ----------------------------------------------------------------------- FLOW
@register_flow
class UnhandledMessageKind(FlowRule):
    id = "FLOW001"
    family = "message-flow"
    scopes = ("core/", "system/")
    summary = "message kind sent with no handler branch in the sending class"

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        seen: set[tuple[str, int, str]] = set()
        for profile in _profiles(model):
            module = profile.cls.module
            if not self.in_scope(module):
                continue
            if not profile.handled and not profile.sends:
                continue
            for site in profile.sends:
                if site.kind is None or site.kind in profile.handled:
                    continue
                key = (module.path, site.line, site.kind)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    module,
                    site.line,
                    site.col,
                    f"kind '{site.kind}' sent in {profile.cls.name}."
                    f"{site.method} but no handler of {profile.cls.name} "
                    f"dispatches on it — the message is dropped at every "
                    f"correct receiver",
                )


@register_flow
class DeadHandlerBranch(FlowRule):
    id = "FLOW002"
    family = "message-flow"
    scopes = ("core/", "system/")
    summary = "handler dispatches on a message kind the class never sends"

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        seen: set[tuple[str, int, str]] = set()
        for profile in _profiles(model):
            module = profile.cls.module
            if not self.in_scope(module):
                continue
            if not profile.sends:
                continue  # receive-only classes dispatch on peers' kinds
            sent = {s.kind for s in profile.sends if s.kind is not None}
            if any(s.kind is None for s in profile.sends):
                continue  # an unresolved send could cover any kind
            for kind, line in profile.handled.items():
                if kind in sent:
                    continue
                key = (module.path, line, kind)
                if key in seen:
                    continue
                seen.add(key)
                yield self.finding(
                    module,
                    line,
                    0,
                    f"handler branch for kind '{kind}' in {profile.cls.name} "
                    f"but the class never sends it — dead protocol arm "
                    f"(renamed tag?)",
                )


# ------------------------------------------------------------------------ TNT
class _TaintRule(FlowRule):
    family = "determinism-taint"
    scopes = ("core/", "system/", "dst/", "exec/")
    sink: str = ""
    what: str = ""

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        analysis = _taint(model)
        seen: set[tuple[str, int]] = set()
        for rec in analysis.iter_function_records():
            if not self.in_scope(rec.module):
                continue
            for hit in analysis.sink_hits(rec):
                if hit.sink != self.sink:
                    continue
                key = (hit.module.path, hit.line)
                if key in seen:
                    continue
                seen.add(key)
                kinds = ", ".join(sorted(hit.kinds))
                via = f" ({hit.detail})" if hit.detail.startswith("via") else ""
                yield self.finding(
                    hit.module,
                    hit.line,
                    hit.col,
                    f"nondeterministic value ({kinds}) flows into "
                    f"{self.what}{via}; {self.fix}",
                )

    fix: str = ""


@register_flow
class TaintedDecision(_TaintRule):
    id = "TNT001"
    summary = "wall-clock/RNG/set-order value flows into decide()"
    sink = "decide"
    what = "decision state"
    fix = "decisions must be a pure function of inputs and seeds"


@register_flow
class TaintedPayload(_TaintRule):
    id = "TNT002"
    summary = "wall-clock/RNG/set-order value flows into a message payload"
    sink = "payload"
    what = "a message payload"
    fix = "payloads must replay bit-identically from the trace"


@register_flow
class TaintedCacheKey(_TaintRule):
    id = "TNT003"
    scopes = ("core/", "system/", "dst/", "exec/", "geometry/")
    summary = "wall-clock/RNG/set-order value flows into a cache key"
    sink = "cachekey"
    what = "a cache key"
    fix = "cache keys must be deterministic or hits/misses diverge per run"


# ------------------------------------------------------------------------ QUO
@register_flow
class InlineSystemBound(FlowRule):
    id = "QUO001"
    family = "quorum-provenance"
    scopes = ("system/",)
    summary = "resilience-shaped arithmetic inline in system/ (see RES001)"

    _MESSAGE = (
        "resilience arithmetic re-derived inline in system code; route it "
        "through repro.core.bounds (rbc_min_n, bracha_ready_quorum, ...) so "
        "the broadcast layer shares the audited predicates"
    )

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        for module in model.modules.values():
            if not self.in_scope(module):
                continue
            reported: set[int] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                    for a, b in ((node.left, node.right), (node.right, node.left)):
                        if _is_bound_mult(a) and is_int_const(b):
                            if id(node) not in reported:
                                reported.add(id(node))
                                reported.add(id(a))
                                yield self.finding(
                                    module, node.lineno, node.col_offset,
                                    self._MESSAGE,
                                )
                            break
            for node in ast.walk(module.tree):
                if _is_bound_mult(node) and id(node) not in reported:
                    reported.add(id(node))
                    yield self.finding(
                        module, node.lineno, node.col_offset, self._MESSAGE
                    )


def _derives_from_bounds(
    expr: ast.expr,
    module: ModuleInfo,
    model: ProgramModel,
    env: dict[str, ast.expr],
    depth: int = 0,
) -> bool:
    """True when the expression's dataflow reaches a core.bounds helper."""
    if depth > 3:
        return False
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = _call_dotted(node.func)
            if name is None:
                continue
            resolved = model.resolve(module, name)
            if resolved is None:
                continue
            if resolved.startswith(_BOUNDS_PREFIX):
                return True
            target = model.function(resolved)
            if target is not None:
                target_module, func = target
                for ret in ast.walk(func):
                    if isinstance(ret, ast.Return) and ret.value is not None:
                        if _derives_from_bounds(
                            ret.value, target_module, model, {}, depth + 1
                        ):
                            return True
        elif isinstance(node, ast.Name) and node.id in env:
            bound = env[node.id]
            if bound is not expr and _derives_from_bounds(
                bound, module, model, env, depth + 1
            ):
                return True
    return False


@register_flow
class ThresholdProvenance(FlowRule):
    id = "QUO002"
    family = "quorum-provenance"
    scopes = ("core/", "system/")
    summary = "threshold/quorum binding does not reach core.bounds via dataflow"

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        for module in model.modules.values():
            if not self.in_scope(module):
                continue
            if module.logical_path == "core/bounds.py":
                continue
            for func, env in _functions_with_env(module):
                for node in ast.walk(func):
                    target_name, value = _threshold_binding(node)
                    if target_name is None or value is None:
                        continue
                    if _derives_from_bounds(value, module, model, env):
                        continue
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"'{target_name}' is bound without provenance from "
                        f"repro.core.bounds; thresholds must reach a bounds "
                        f"helper through the dataflow, not re-derive the "
                        f"paper's arithmetic inline",
                    )


def _threshold_binding(
    node: ast.AST,
) -> tuple[Optional[str], Optional[ast.expr]]:
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target, value = node.targets[0], node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        target, value = node.target, node.value
    else:
        return None, None
    if isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Name):
        name = target.id
    else:
        return None, None
    low = name.lower()
    if "quorum" not in low and "threshold" not in low:
        return None, None
    # A bare rebind of an existing value has no arithmetic to audit.
    if isinstance(value, (ast.Name, ast.Constant, ast.Attribute)):
        return None, None
    return name, value


def _functions_with_env(
    module: ModuleInfo,
) -> Iterator[tuple[ast.FunctionDef, dict[str, ast.expr]]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.FunctionDef):
            env: dict[str, ast.expr] = {}
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    t = sub.targets[0]
                    if isinstance(t, ast.Name):
                        env[t.id] = sub.value
            yield node, env


# ------------------------------------------------------------------------ XPT
@register_flow
class HandlerReachableGlobal(FlowRule):
    id = "XPT001"
    family = "transport-readiness"
    scopes = ("core/", "system/")
    summary = "mutable module-global state reachable from a message handler"

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        seen: set[tuple[str, int, str]] = set()
        for cls in model.process_classes():
            module = cls.module
            if not self.in_scope(module):
                continue
            for func in _handler_reach(model, cls):
                for node in ast.walk(func):
                    if not isinstance(node, ast.Name):
                        continue
                    name = node.id
                    if name.startswith("__"):
                        continue
                    if name not in module.global_mutables:
                        continue
                    if (module.logical_path, name) in APPROVED_HANDLER_GLOBALS:
                        continue
                    key = (module.path, node.lineno, name)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"handler-reachable code touches mutable module "
                        f"global '{name}' (bound at line "
                        f"{module.global_mutables[name]}); per-node state "
                        f"must live on the process instance or be approved "
                        f"in lint.flow.seams.APPROVED_HANDLER_GLOBALS",
                    )


def _handler_reach(
    model: ProgramModel, cls: ClassInfo
) -> Iterator[ast.FunctionDef]:
    """Handler methods + same-class self-calls + same-module helper calls."""
    table = model.merged_methods(cls)
    module = cls.module
    reached: dict[str, ast.FunctionDef] = {}
    frontier = [m for m in HANDLER_METHODS if m in table]
    while frontier:
        name = frontier.pop()
        if name in reached:
            continue
        node = table[name][1] if name in table else module.functions[name]
        reached[name] = node
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and func.attr in table
                and func.attr not in reached
            ):
                frontier.append(func.attr)
            elif (
                isinstance(func, ast.Name)
                and func.id in module.functions
                and func.id not in reached
            ):
                frontier.append(func.id)
    yield from reached.values()


_IMPURE_NAMES = frozenset({"ctx", "self"})


def _impure_payload(
    expr: ast.expr, module: ModuleInfo, model: ProgramModel
) -> Optional[str]:
    """Reason the payload expression is not pure data, else None."""
    if isinstance(expr, ast.Lambda):
        return "a lambda (not picklable wire data)"
    if isinstance(expr, ast.Name):
        if expr.id in _IMPURE_NAMES:
            return f"'{expr.id}' (a live object, not wire data)"
        resolved = model.resolve(module, expr.id)
        if resolved is not None and (
            model.function(resolved) is not None
            or model.class_info(resolved) is not None
        ):
            return f"a reference to {expr.id} (function/class, not wire data)"
        return None
    if isinstance(expr, ast.Attribute):
        if expr.attr == "rng" or expr.attr.endswith("_rng"):
            return "an RNG object (process-local state, not wire data)"
        if isinstance(expr.value, ast.Name) and expr.value.id in _IMPURE_NAMES:
            return None  # self.x / ctx.x reads a value; fine
        return _impure_payload_children(expr.value, module, model)
    if isinstance(expr, ast.Call):
        # The call's *result* may be data; only its arguments are payload
        # subexpressions (a lambda argument still travels).
        for arg in (*expr.args, *[kw.value for kw in expr.keywords]):
            reason = _impure_payload(arg, module, model)
            if reason is not None:
                return reason
        if isinstance(expr.func, ast.Lambda):
            return "a lambda (not picklable wire data)"
        return None
    return _impure_payload_children(expr, module, model)


def _impure_payload_children(
    expr: ast.AST, module: ModuleInfo, model: ProgramModel
) -> Optional[str]:
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            reason = _impure_payload(child, module, model)
            if reason is not None:
                return reason
    return None


@register_flow
class ImpurePayload(FlowRule):
    id = "XPT002"
    family = "transport-readiness"
    scopes = ("core/", "system/")
    summary = "message payload contains a non-data value"

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        for module in model.modules.values():
            if not self.in_scope(module):
                continue
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                ):
                    continue
                index = _TRANSPORT_PAYLOAD_ARG.get(node.func.attr)
                if index is None:
                    continue
                payload: Optional[ast.expr] = None
                if len(node.args) > index:
                    payload = node.args[index]
                else:
                    for kw in node.keywords:
                        if kw.arg == "payload":
                            payload = kw.value
                if payload is None:
                    continue
                reason = _impure_payload(payload, module, model)
                if reason is not None:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"payload contains {reason}; payloads must be pure "
                        f"data so a real transport can serialise them",
                    )


def _call_dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _seam_private_attrs(model: ProgramModel) -> frozenset[str]:
    """Private attribute names assigned on self inside seam-module classes."""
    cached = getattr(model, "_seam_private_attrs", None)
    if cached is not None:
        return cached
    attrs: set[str] = set()
    for dotted in SEAM_MODULES:
        info = model.modules.get(dotted)
        if info is None:
            continue
        for cls in info.classes.values():
            for method in cls.methods.values():
                for node in ast.walk(method):
                    targets: list[ast.expr] = []
                    if isinstance(node, ast.Assign):
                        targets = list(node.targets)
                    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                        targets = [node.target]
                    for t in targets:
                        if (
                            isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"
                            and t.attr.startswith("_")
                            and not t.attr.startswith("__")
                        ):
                            attrs.add(t.attr)
    frozen = frozenset(attrs)
    model._seam_private_attrs = frozen  # type: ignore[attr-defined]
    return frozen


@register_flow
class SeamDiscipline(FlowRule):
    id = "XPT003"
    family = "transport-readiness"
    scopes = ("core/", "system/broadcast/")
    summary = "transport module used outside the approved seam list"

    def check_program(self, model: ProgramModel) -> Iterator[Finding]:
        private_attrs = _seam_private_attrs(model)
        for module in model.modules.values():
            if not self.in_scope(module):
                continue
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ImportFrom):
                    yield from self._check_import(module, node)
                elif (
                    isinstance(node, ast.Attribute)
                    and node.attr in private_attrs
                    and not (
                        isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    )
                ):
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"access to transport-private attribute "
                        f"'{node.attr}'; protocol code may touch the "
                        f"transport only through the approved seams "
                        f"(lint.flow.seams.TRANSPORT_SEAMS)",
                    )

    def _check_import(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Iterator[Finding]:
        if module.logical_path in SEAM_INTERNAL:
            # Facades are the seam: they import the implementations they
            # front.  (Their private attrs are still checked above.)
            return
        anchor = (
            _import_anchor(module.name, module.is_package, node.level)
            if node.level
            else []
        )
        base = ".".join([*anchor, *(node.module.split(".") if node.module else [])])
        logical = SEAM_MODULES.get(base)
        if logical is None:
            return
        allowed = TRANSPORT_SEAMS[logical]
        for alias in node.names:
            if alias.name == "*" or alias.name in allowed:
                continue
            yield self.finding(
                module,
                node.lineno,
                node.col_offset,
                f"import of '{alias.name}' from {logical} is outside the "
                f"approved transport seam list; the seam inventory "
                f"(lint.flow.seams.TRANSPORT_SEAMS) is the interface the "
                f"live-transport refactor preserves",
            )
