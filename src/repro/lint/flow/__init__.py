"""Whole-program flow analysis: FLOW / TNT / QUO / XPT rule families.

See :mod:`repro.lint.flow.model` for the program model,
:mod:`repro.lint.flow.msgflow` for the message-flow graph,
:mod:`repro.lint.flow.taint` for the interprocedural determinism taint,
:mod:`repro.lint.flow.seams` for the approved transport seam inventory,
and :mod:`repro.lint.flow.rules` for the rules themselves.

Entry point: :func:`repro.lint.engine.lint_paths` with ``flow=True``
(what ``python -m repro lint`` does by default).
"""

from __future__ import annotations

from .model import ProgramModel, build_model
from .rules import FlowRule, all_flow_rules, register_flow
from .seams import APPROVED_HANDLER_GLOBALS, SEAM_MODULES, TRANSPORT_SEAMS

__all__ = [
    "APPROVED_HANDLER_GLOBALS",
    "FlowRule",
    "ProgramModel",
    "SEAM_MODULES",
    "TRANSPORT_SEAMS",
    "all_flow_rules",
    "build_model",
    "register_flow",
]
