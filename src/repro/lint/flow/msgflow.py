"""Message-flow graph: send sites linked to handler dispatch by kind.

Every message in the simulated stack leaves through one of three
``Context`` methods — ``send(dst, tag, payload)``, ``broadcast(tag,
payload)``, ``atomic_broadcast(tag, payload)`` — and arrives at a handler
(``on_message`` / ``on_round``) that dispatches on the tag.  Tags are
structured ``kind[:instance...]`` strings (``"rva:3:1"``, ``"bc:0"``,
``"iter"``); the *kind* is the protocol-level routing key.

This module recovers, per process class:

* **send kinds** — the tag argument of every transport call in any
  method, resolved through f-string prefixes, local assignments, and tag
  helper functions (``rb_tag``, ``broadcast_tag``) via the program model;
* **handled kinds** — string literals the tag value is dispatched on
  (``==``/``!=`` comparisons, ``.startswith("bc:")``, and ``split(":")``
  prefix tests) inside the handler closure — handler methods plus every
  same-class method they transitively call.

Tag-derivation is tracked so payload-level literals (``"refs"``,
``"init"``) never masquerade as handled network kinds: only expressions
rooted at the handler's ``tag`` parameter, at 2-tuple inbox loop
targets, or at ``tag.split(...)`` results count as dispatch tests.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from .model import ClassInfo, ModuleInfo, ProgramModel

__all__ = ["MessageProfile", "SendSite", "class_profile", "HANDLER_ENTRYPOINTS"]

#: Methods where deliveries enter a process.
HANDLER_ENTRYPOINTS = frozenset({"on_message", "on_round"})

#: Transport methods and the positional index of their tag argument.
_TRANSPORT_TAG_ARG = {"send": 1, "broadcast": 0, "atomic_broadcast": 0}


@dataclass(frozen=True)
class SendSite:
    """One transport call: resolved kind (None when out of static reach)."""

    kind: Optional[str]
    method: str
    line: int
    col: int


@dataclass
class MessageProfile:
    """Sent/handled message kinds of one process class."""

    cls: ClassInfo
    sends: list[SendSite] = field(default_factory=list)
    #: kind -> line of the first dispatch test for it
    handled: dict[str, int] = field(default_factory=dict)


def _kind_of(text: str) -> str:
    return text.split(":", 1)[0]


def _local_assignments(func: ast.FunctionDef) -> dict[str, ast.expr]:
    """Last simple ``name = expr`` binding per local name."""
    env: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                env[target.id] = node.value
    return env


def resolve_tag_kind(
    expr: ast.expr,
    env: dict[str, ast.expr],
    module: ModuleInfo,
    model: ProgramModel,
    depth: int = 0,
) -> Optional[str]:
    """Best-effort message kind of a tag expression, else None."""
    if depth > 4:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _kind_of(expr.value)
    if isinstance(expr, ast.JoinedStr):
        if expr.values and isinstance(expr.values[0], ast.Constant):
            head = str(expr.values[0].value)
            if ":" in head:
                return _kind_of(head)
            if len(expr.values) == 1:
                return head
        return None
    if isinstance(expr, ast.Name):
        bound = env.get(expr.id)
        if bound is not None and bound is not expr:
            return resolve_tag_kind(bound, env, module, model, depth + 1)
        return None
    if isinstance(expr, ast.Call):
        name = _dotted(expr.func)
        if name is None:
            return None
        resolved = model.resolve(module, name)
        target = model.function(resolved) if resolved else None
        if target is None:
            return None
        target_module, func = target
        func_env = _local_assignments(func)
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                kind = resolve_tag_kind(
                    node.value, func_env, target_module, model, depth + 1
                )
                if kind is not None:
                    return kind
        return None
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def handler_closure(
    model: ProgramModel, cls: ClassInfo, entrypoints: frozenset[str] = HANDLER_ENTRYPOINTS
) -> dict[str, ast.FunctionDef]:
    """Handler methods plus every same-class method they reach via self."""
    table = model.merged_methods(cls)
    reached: dict[str, ast.FunctionDef] = {}
    frontier = [name for name in entrypoints if name in table]
    while frontier:
        name = frontier.pop()
        if name in reached:
            continue
        reached[name] = table[name][1]
        for node in ast.walk(table[name][1]):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                recv = node.func.value
                if isinstance(recv, ast.Name) and recv.id == "self":
                    callee = node.func.attr
                    if callee in table and callee not in reached:
                        frontier.append(callee)
    return reached


def _tag_derived_names(func: ast.FunctionDef) -> set[str]:
    """Names carrying the delivery tag inside one handler-closure method."""
    names: set[str] = set()
    for arg in (*func.args.posonlyargs, *func.args.args, *func.args.kwonlyargs):
        if arg.arg == "tag":
            names.add(arg.arg)
    for node in ast.walk(func):
        # ``for tag, payload in entries:`` — inbox entries are (tag, payload).
        if isinstance(node, ast.For) and isinstance(node.target, ast.Tuple):
            elts = node.target.elts
            if len(elts) == 2 and isinstance(elts[0], ast.Name):
                names.add(elts[0].id)
    # ``parts = tag.split(":")`` — the split result carries the tag.
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name) or target.id in names:
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in ("split", "partition", "rpartition")
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id in names
            ):
                names.add(target.id)
                changed = True
    return names


def _is_tag_expr(node: ast.AST, tag_names: set[str]) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tag_names
    if isinstance(node, ast.Subscript):
        return isinstance(node.value, ast.Name) and node.value.id in tag_names
    return False


def _handled_kinds(func: ast.FunctionDef) -> dict[str, int]:
    tag_names = _tag_derived_names(func)
    if not tag_names:
        return {}
    handled: dict[str, int] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                continue
            left, right = node.left, node.comparators[0]
            for expr, lit in ((left, right), (right, left)):
                if (
                    _is_tag_expr(expr, tag_names)
                    and isinstance(lit, ast.Constant)
                    and isinstance(lit.value, str)
                ):
                    handled.setdefault(_kind_of(lit.value), node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "startswith"
            and _is_tag_expr(node.func.value, tag_names)
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            handled.setdefault(_kind_of(node.args[0].value), node.lineno)
    return handled


def class_profile(model: ProgramModel, cls: ClassInfo) -> MessageProfile:
    """Send sites and handled kinds for one process class (bases merged)."""
    profile = MessageProfile(cls=cls)
    for name, (owner, func) in sorted(model.merged_methods(cls).items()):
        env = _local_assignments(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            tag_index = _TRANSPORT_TAG_ARG.get(node.func.attr)
            if tag_index is None or len(node.args) <= tag_index:
                continue
            kind = resolve_tag_kind(node.args[tag_index], env, owner.module, model)
            profile.sends.append(
                SendSite(kind=kind, method=name, line=node.lineno, col=node.col_offset)
            )
    for name, func in sorted(handler_closure(model, cls).items()):
        for kind, line in _handled_kinds(func).items():
            profile.handled.setdefault(kind, line)
    return profile
