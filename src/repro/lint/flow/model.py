"""Whole-program model: modules, imports, symbols, classes, call edges.

The per-file rules in :mod:`repro.lint.rules` see one ``ast.Module`` at a
time; the flow families (FLOW/TNT/QUO/XPT) need to follow a value across
files — a tag helper defined in ``core/averaging.py`` and called from a
method three hops away, a bounds predicate imported function-level inside
``system/broadcast/bracha.py``.  :class:`ProgramModel` is the shared
substrate: every module keyed by its dotted name, an import table mapping
every local alias to its fully-qualified target (module-level *and*
function-level imports — the protocol modules import
:mod:`repro.core.bounds` inside ``__init__`` to avoid a package cycle),
top-level functions and classes, and best-effort base-class resolution
(:meth:`ProgramModel.mro`).

Resolution is name-based and deliberately conservative: anything that
cannot be resolved statically resolves to ``None`` and the rules treat it
as out of reach rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["ClassInfo", "ModuleInfo", "ProgramModel", "build_model"]

#: Logical-path prefixes that form the analysed program (tests,
#: benchmarks and examples drive the program; they are not part of it).
PROGRAM_PREFIXES = (
    "core/",
    "system/",
    "geometry/",
    "obs/",
    "dst/",
    "exec/",
    "analysis/",
    "lint/",
)


@dataclass
class ClassInfo:
    """One class definition plus its resolved context."""

    name: str
    qualname: str  # fully qualified: "repro.core.averaging.VerifiedAveragingProcess"
    module: "ModuleInfo"
    node: ast.ClassDef
    base_names: tuple[str, ...]  # dotted names as written at the def site
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol/import tables."""

    path: str
    logical_path: str
    name: str  # dotted module name, e.g. "repro.core.averaging"
    tree: ast.Module
    lines: tuple[str, ...]
    is_package: bool
    #: local alias -> fully qualified target (module or module.symbol);
    #: includes function-level imports.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level names bound to mutable values -> lineno of the binding
    global_mutables: dict[str, int] = field(default_factory=dict)


def _module_name(logical_path: str) -> tuple[str, bool]:
    """Dotted module name (rooted at ``repro``) for a logical path."""
    parts = logical_path[:-3].split("/") if logical_path.endswith(".py") else [
        logical_path
    ]
    if parts and parts[-1] == "__init__":
        return ".".join(["repro", *parts[:-1]]), True
    return ".".join(["repro", *parts]), False


def _import_anchor(info_name: str, is_package: bool, level: int) -> list[str]:
    """Package path a relative import of ``level`` resolves against."""
    parts = info_name.split(".")
    anchor = parts if is_package else parts[:-1]
    if level > 1:
        anchor = anchor[: max(0, len(anchor) - (level - 1))]
    return anchor


_MUTABLE_VALUE_TYPES = (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
_MUTABLE_CTORS = frozenset({"dict", "list", "set", "defaultdict", "deque", "Counter"})


def _is_mutable_binding(value: ast.AST) -> bool:
    if isinstance(value, _MUTABLE_VALUE_TYPES):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_CTORS
    return False


def _collect_imports(info: ModuleInfo) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                info.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            anchor = (
                _import_anchor(info.name, info.is_package, node.level)
                if node.level
                else []
            )
            base = [*anchor, *(node.module.split(".") if node.module else [])]
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = ".".join([*base, alias.name])


def _collect_symbols(info: ModuleInfo) -> None:
    for node in info.tree.body:
        if isinstance(node, ast.FunctionDef):
            info.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            bases = tuple(
                name for name in (_dotted(b) for b in node.bases) if name is not None
            )
            cls = ClassInfo(
                name=node.name,
                qualname=f"{info.name}.{node.name}",
                module=info,
                node=node,
                base_names=bases,
            )
            for item in node.body:
                if isinstance(item, ast.FunctionDef):
                    cls.methods[item.name] = item
            info.classes[node.name] = cls
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            value = node.value
            if value is not None and _is_mutable_binding(value):
                for t in targets:
                    if isinstance(t, ast.Name):
                        info.global_mutables[t.id] = node.lineno


def _dotted(node: ast.AST) -> Optional[str]:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ProgramModel:
    """The resolved whole-program view the flow rules run over."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_logical: dict[str, ModuleInfo] = {}

    # ----------------------------------------------------------- construction
    def add_module(
        self, path: str, logical_path: str, tree: ast.Module, lines: tuple[str, ...]
    ) -> None:
        name, is_package = _module_name(logical_path)
        info = ModuleInfo(
            path=path,
            logical_path=logical_path,
            name=name,
            tree=tree,
            lines=lines,
            is_package=is_package,
        )
        _collect_imports(info)
        _collect_symbols(info)
        self.modules[name] = info
        self.by_logical[logical_path] = info

    # ------------------------------------------------------------- resolution
    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[str]:
        """Fully-qualified name of ``dotted`` as seen from ``module``.

        ``bounds.rbc_min_n`` resolves through the import table;
        ``rb_tag`` resolves to a same-module symbol; unresolvable names
        return ``None``.
        """
        head, _, rest = dotted.partition(".")
        if head in module.imports:
            target = module.imports[head]
            return f"{target}.{rest}" if rest else target
        if head in module.functions or head in module.classes:
            return f"{module.name}.{dotted}"
        return None

    def function(self, qualname: str) -> Optional[tuple[ModuleInfo, ast.FunctionDef]]:
        """Top-level function def for a fully-qualified name, if modelled."""
        mod_name, _, func = qualname.rpartition(".")
        info = self.modules.get(mod_name)
        if info is not None and func in info.functions:
            return info, info.functions[func]
        # The symbol may be re-exported: follow one import hop.
        if info is not None and func in info.imports:
            return self.function(info.imports[func])
        return None

    def class_info(self, qualname: str) -> Optional[ClassInfo]:
        mod_name, _, cls = qualname.rpartition(".")
        info = self.modules.get(mod_name)
        if info is not None and cls in info.classes:
            return info.classes[cls]
        if info is not None and cls in info.imports:
            return self.class_info(info.imports[cls])
        return None

    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """Best-effort linearisation: the class, then resolved bases."""
        out: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            for base in current.base_names:
                resolved = self.resolve(current.module, base)
                base_cls = self.class_info(resolved) if resolved else None
                if base_cls is not None:
                    stack.append(base_cls)
        return out

    def base_name_closure(self, cls: ClassInfo) -> set[str]:
        """Every base name (resolved or raw) in the transitive base chain."""
        names: set[str] = set()
        for c in self.mro(cls):
            for base in c.base_names:
                names.add(base.rpartition(".")[2])
                resolved = self.resolve(c.module, base)
                if resolved:
                    names.add(resolved)
        return names

    def process_classes(self) -> Iterator[ClassInfo]:
        """Classes that (transitively) subclass SyncProcess/AsyncProcess."""
        for info in self.modules.values():
            for cls in info.classes.values():
                bases = self.base_name_closure(cls)
                if any(
                    b in ("SyncProcess", "AsyncProcess")
                    or b.endswith((".SyncProcess", ".AsyncProcess"))
                    for b in bases
                ):
                    yield cls

    def merged_methods(self, cls: ClassInfo) -> dict[str, tuple[ClassInfo, ast.FunctionDef]]:
        """Method table of ``cls`` with inherited methods (derived wins)."""
        table: dict[str, tuple[ClassInfo, ast.FunctionDef]] = {}
        for owner in self.mro(cls):
            for name, node in owner.methods.items():
                table.setdefault(name, (owner, node))
        return table


def build_model(
    files: list[tuple[str, str, ast.Module, tuple[str, ...]]]
) -> ProgramModel:
    """Assemble a model from ``(path, logical_path, tree, lines)`` records.

    Only files whose logical path falls under a program prefix join the
    model; fixture files opt in via ``# repro: lint-as core/...``.
    """
    model = ProgramModel()
    for path, logical_path, tree, lines in files:
        if logical_path.startswith(PROGRAM_PREFIXES):
            model.add_module(path, logical_path, tree, lines)
    return model
