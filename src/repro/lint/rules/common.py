"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["dotted_name", "call_dotted_name", "root_name", "is_int_const"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_dotted_name(node: ast.Call) -> Optional[str]:
    """Dotted name of the called function, else None."""
    return dotted_name(node.func)


def root_name(node: ast.AST) -> Optional[str]:
    """Leftmost ``Name`` of an attribute/subscript chain (``a`` in
    ``a.b[k].c``), else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_int_const(node: ast.AST) -> bool:
    """True for an integer literal (excluding booleans)."""
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    )
