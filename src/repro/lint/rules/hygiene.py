"""HYG — message-handler hygiene in the simulated transport stack.

Handlers run once per delivery, interleaved adversarially by the
scheduler.  Two classes of bug survive unit tests but corrupt
simulations:

* **module-level state** — a handler writing through a module-level
  name leaks information between processes that the model says are
  isolated, and between DST trials that the replay corpus says are
  independent;
* **retained in-flight payloads** — a handler that both *stores* a raw
  payload reference (quorum bookkeeping, EIG trees, …) and *forwards*
  the same reference shares one mutable object between its own state
  and another process's inbox; a downstream mutation (a Byzantine
  wrapper, a NumPy in-place op) silently rewrites history.  Store a
  defensive copy (:func:`repro.system.messages.defensive_copy`) and
  forward the original.

Rules
-----
* ``HYG001`` — handler mutates module-level state (``global`` binding,
  or assignment/subscript-store through a module-level name).
* ``HYG002`` — handler stores *and* forwards the same raw payload
  reference.  Wrapping either side in a call (a copy/constructor)
  sanitises it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule, register
from .common import root_name

__all__ = ["ModuleStateMutation", "RetainAndForward", "HANDLER_METHODS"]

#: Method names treated as delivery/round handlers in the system layer.
HANDLER_METHODS = frozenset(
    {
        "on_start",
        "on_message",
        "on_round",
        "on_stop",
        "receive",
        "start",
        "messages_for_round",
    }
)

_SCOPES = ("system/process.py", "system/broadcast/")

#: Parameter names carrying a raw in-flight payload.
_PAYLOAD_PARAMS = frozenset({"payload", "message", "msg"})

#: Mutating container methods whose arguments count as "stored".
_STORE_METHODS = frozenset({"append", "add", "insert", "setdefault", "update", "extend"})

#: Call attributes that hand a value to the transport.
_FORWARD_METHODS = frozenset({"send", "broadcast", "atomic_broadcast"})


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for t in targets:
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return names


def _handler_methods(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name in HANDLER_METHODS
                ):
                    yield item


@register
class ModuleStateMutation(Rule):
    id = "HYG001"
    family = "handler-hygiene"
    scopes = _SCOPES
    summary = "message handler mutates module-level state"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        module_names = _module_level_names(ctx.tree)
        for handler in _handler_methods(ctx.tree):
            declared_global: set[str] = set()
            for node in ast.walk(handler):
                if isinstance(node, ast.Global):
                    declared_global.update(node.names)
                    yield self.finding(
                        ctx, node,
                        f"handler {handler.name}() binds module-level "
                        f"name(s) {', '.join(node.names)} via `global`; "
                        "per-process state belongs on the instance",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for t in targets:
                        if isinstance(t, (ast.Attribute, ast.Subscript)):
                            root = root_name(t)
                            if root is not None and root in module_names:
                                yield self.finding(
                                    ctx, t,
                                    f"handler {handler.name}() writes through "
                                    f"module-level name `{root}`; handlers "
                                    "must only mutate instance state",
                                )


def _assigned_names(target: ast.AST) -> Iterator[ast.Name]:
    if isinstance(target, ast.Name):
        yield target
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _assigned_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _assigned_names(target.value)


def _contains_tainted(node: ast.AST, tainted: set[str]) -> Optional[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return sub.id
    return None


@register
class RetainAndForward(Rule):
    id = "HYG002"
    family = "handler-hygiene"
    scopes = _SCOPES
    summary = "handler stores and forwards the same in-flight payload"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for handler in _handler_methods(ctx.tree):
            tainted = self._tainted_names(handler)
            if not tainted:
                continue
            stores: dict[str, ast.AST] = {}
            for name, node in self._stored(handler, tainted):
                stores.setdefault(name, node)
            forwards = {name for name, _ in self._forwarded(handler, tainted)}
            for name in sorted(set(stores) & forwards):
                yield self.finding(
                    ctx, stores[name],
                    f"handler {handler.name}() stores and forwards the same "
                    f"in-flight payload reference `{name}`; store a "
                    "defensive copy (repro.system.messages.defensive_copy) "
                    "and forward the original",
                )

    # ------------------------------------------------------------- analysis
    def _tainted_names(self, handler: ast.FunctionDef) -> set[str]:
        """Names bound (directly or by unpacking) to the raw payload."""
        args = handler.args
        tainted = {
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if a.arg in _PAYLOAD_PARAMS
        }
        if not tainted:
            return tainted
        # Two passes propagate through simple chains like
        # ``phase, value = payload`` then ``inner = value[0]``.
        for _ in range(2):
            for node in ast.walk(handler):
                if not isinstance(node, ast.Assign):
                    continue
                value = node.value
                if isinstance(value, ast.Call):
                    # A constructor/copy call sanitises its result; it also
                    # *clears* taint on rebinding (``chain = tuple(chain)``).
                    for t in node.targets:
                        for nm in _assigned_names(t):
                            tainted.discard(nm.id)
                    continue
                if _contains_tainted(value, tainted):
                    for t in node.targets:
                        for nm in _assigned_names(t):
                            tainted.add(nm.id)
        return tainted

    def _stored(
        self, handler: ast.FunctionDef, tainted: set[str]
    ) -> Iterator[tuple[str, ast.AST]]:
        """(name, node) for raw tainted names retained on ``self``."""
        for node in ast.walk(handler):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if (
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        and root_name(t) == "self"
                        and isinstance(node.value, ast.Name)
                        and node.value.id in tainted
                    ):
                        yield node.value.id, node
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _STORE_METHODS
                    and root_name(func.value) == "self"
                ):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in tainted:
                            yield arg.id, node

    def _forwarded(
        self, handler: ast.FunctionDef, tainted: set[str]
    ) -> Iterator[tuple[str, ast.AST]]:
        """(name, node) for tainted names leaving through the transport.

        Counts ``return`` expressions, ``ctx.send(...)``-style transport
        calls, and appends/extends into local outbox collections (the
        broadcast state machines return those to the caller).
        """
        for node in ast.walk(handler):
            if isinstance(node, ast.Return) and node.value is not None:
                name = _contains_tainted(node.value, tainted)
                if name is not None:
                    yield name, node
            elif isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                is_transport = func.attr in _FORWARD_METHODS
                is_local_outbox = (
                    func.attr in ("append", "extend")
                    and isinstance(func.value, ast.Name)
                )
                if is_transport or is_local_outbox:
                    for arg in node.args:
                        name = _contains_tainted(arg, tainted)
                        if name is not None:
                            yield name, node
