"""DET — replay determinism of the simulated protocol stack.

The DST subsystem (PR 2) replays executions bit-for-bit from a compact
seed token.  That only works while every source of randomness inside the
replayed modules flows from the scenario's seeded
``np.random.Generator`` and no code path consults wall-clock time or
iterates a ``set`` in hash order (string hashing is salted per process,
so set order varies across runs).  These rules fence off the modules the
replay corpus covers — ``core/``, ``system/``, ``dst/``, ``exec/`` (the
sweep engine's serial-vs-parallel bit-identity contract is a determinism
guarantee) — plus the ``benchmarks/`` and ``examples/`` trees, whose
trajectories must stay comparable across machines.

Rules
-----
* ``DET001`` — the stdlib ``random`` module (global, unseedable-per-run
  state) is banned; draw from the run's ``np.random.Generator``.
* ``DET002`` — wall-clock reads (``time.time()``, ``datetime.now()``,
  …) are banned; ``time.perf_counter()`` is deliberately allowed for
  observability timings that never feed protocol decisions.
* ``DET003`` — unseeded RNG construction (``np.random.default_rng()``
  with no seed, ``np.random.RandomState()``) and the legacy global
  ``np.random.*`` draw functions.
* ``DET004`` — iterating a set (or materialising one into an ordered
  container) — order depends on hash salting; sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register
from .common import call_dotted_name, dotted_name

__all__ = ["StdlibRandom", "WallClock", "UnseededRng", "SetIteration"]

_SCOPES = ("core/", "system/", "dst/", "exec/", "benchmarks/", "examples/")

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Legacy global-state draw/seed functions on ``np.random``.
_GLOBAL_DRAWS = frozenset(
    {
        "rand",
        "randn",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "seed",
        "get_state",
        "set_state",
    }
)

_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


@register
class StdlibRandom(Rule):
    id = "DET001"
    family = "determinism"
    scopes = _SCOPES
    summary = "stdlib `random` (global state) in a replay-deterministic module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx, node,
                            "stdlib `random` uses process-global state; draw "
                            "from the run's seeded np.random.Generator",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib `random` uses process-global state; draw "
                        "from the run's seeded np.random.Generator",
                    )
            elif isinstance(node, ast.Call):
                name = call_dotted_name(node)
                if name is not None and name.startswith("random."):
                    yield self.finding(
                        ctx, node,
                        f"`{name}()` draws from the global stdlib RNG; use "
                        "the run's seeded np.random.Generator",
                    )


@register
class WallClock(Rule):
    id = "DET002"
    family = "determinism"
    scopes = _SCOPES
    summary = "wall-clock read in a replay-deterministic module"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = call_dotted_name(node)
                if name in _WALL_CLOCK:
                    yield self.finding(
                        ctx, node,
                        f"`{name}()` reads the wall clock — replays cannot "
                        "reproduce it; use logical rounds/steps (or "
                        "time.perf_counter() for observability-only timing)",
                    )


@register
class UnseededRng(Rule):
    id = "DET003"
    family = "determinism"
    scopes = _SCOPES
    summary = "unseeded or global-state NumPy RNG"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_dotted_name(node)
            if name is None:
                continue
            unseeded = not node.args and not any(
                kw.arg in (None, "seed") for kw in node.keywords
            )
            if name.endswith(".default_rng") or name == "default_rng":
                if unseeded:
                    yield self.finding(
                        ctx, node,
                        "unseeded default_rng(); pass an explicit seed so "
                        "runs (and benchmark trajectories) are reproducible",
                    )
            elif name.endswith(".RandomState") and unseeded:
                yield self.finding(
                    ctx, node,
                    "unseeded RandomState(); pass an explicit seed",
                )
            elif any(name.startswith(p) for p in _NP_RANDOM_PREFIXES):
                if name.rsplit(".", 1)[-1] in _GLOBAL_DRAWS:
                    yield self.finding(
                        ctx, node,
                        f"`{name}()` uses NumPy's process-global RNG; use an "
                        "explicitly seeded np.random.default_rng(seed)",
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


@register
class SetIteration(Rule):
    id = "DET004"
    family = "determinism"
    scopes = _SCOPES
    summary = "ordering-sensitive iteration over a set"

    _MATERIALISERS = ("list", "tuple", "enumerate")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        msg = (
            "iteration order over a set depends on hash salting and varies "
            "across runs; iterate sorted(...) instead"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self.finding(ctx, node.iter, msg)
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(ctx, gen.iter, msg)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name in self._MATERIALISERS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(ctx, node, msg)
