"""Shipped rule families.  Importing this package registers every rule."""

from __future__ import annotations

from . import determinism, floats, hygiene, resilience

__all__ = ["determinism", "floats", "hygiene", "resilience"]
