"""Shipped rule families.  Importing this package registers every rule."""

from __future__ import annotations

from . import determinism, floats, hygiene, observability, resilience

__all__ = ["determinism", "floats", "hygiene", "observability", "resilience"]
