"""OBS — telemetry naming discipline.

Every counter, gauge, histogram, span, and trace event in the shipped
tree shares one grep-able namespace: dotted lowercase
``<layer>.<component>.<what>`` (``bcast.bracha.echo``,
``sched.async.steps``, ``geometry.delta_star.seconds``).  Dashboards,
the sweep roll-up (:func:`repro.exec.engine._rollup_metrics`), and the
probe counters all key on that shape, so a stray ``CamelCase`` or
single-word name silently falls out of every aggregation.  These rules
fence the shape at lint time, where a typo is a one-line diff instead of
a missing panel.

Rules
-----
* ``OBS001`` — literal metric/span/event names must be dotted lowercase
  with at least two segments, and duration/size histograms
  (``observe``/``histogram``) must end in a unit suffix (``.seconds``,
  ``.bytes``, or ``_us`` for microsecond latencies such as
  ``net.live.queue_wait_us``) so the roll-up's ``<name>.total`` stays
  unambiguous.
  Perf-profiler phases (``perf_phase``/``phase``) are span-like names in
  the same namespace: dotted lowercase required, no unit suffix (their
  histograms are rendered under an explicit ``_seconds`` family name by
  :mod:`repro.obs.prom`).  ``note_cache`` is exempt: its argument is a
  bare kernel name (``delta_star``), a key into the cache counters, not
  a telemetry path.

F-string names (``f"probe.{self.name}.violations"``) are skipped: the
rule checks only what it can read statically.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from ..engine import FileContext, Finding, Rule, register

__all__ = ["MetricNameShape"]

_SCOPES = (
    "core/", "system/", "dst/", "exec/", "geometry/", "obs/",
    "analysis/", "lint/", "benchmarks/", "examples/",
)

#: Call targets whose first positional argument is a telemetry name.
_NAMED_CALLS = frozenset(
    {
        "inc", "observe", "set_gauge", "counter", "gauge", "histogram",
        "span", "event", "timed", "trace_span", "trace_event",
        "phase", "perf_phase",
    }
)

#: Calls recording a measured quantity: the name must carry its unit.
#: (``timed`` is exempt — it appends ``.seconds`` itself.)
_UNIT_CALLS = frozenset({"observe", "histogram"})

_UNIT_SUFFIXES = (".seconds", ".bytes", "_us")

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def _called_method(node: ast.Call) -> Optional[str]:
    """Final identifier of the call target: ``m`` for both ``m(...)``
    and ``obj.m(...)``, else None."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


@register
class MetricNameShape(Rule):
    id = "OBS001"
    family = "observability"
    scopes = _SCOPES
    summary = "telemetry name outside the dotted-lowercase namespace"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            method = _called_method(node)
            if method not in _NAMED_CALLS or not node.args:
                continue
            arg = node.args[0]
            # f-strings and computed names are out of static reach.
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                continue
            name = arg.value
            if not _NAME_RE.match(name):
                yield self.finding(
                    ctx, arg,
                    f"telemetry name {name!r} must be dotted lowercase "
                    "`<layer>.<component>.<what>` (>=2 segments, "
                    "[a-z0-9_] per segment)",
                )
            elif method in _UNIT_CALLS and not name.endswith(_UNIT_SUFFIXES):
                yield self.finding(
                    ctx, arg,
                    f"histogram name {name!r} must end in a unit suffix "
                    f"({', '.join(_UNIT_SUFFIXES)}) so rolled-up totals "
                    "stay unambiguous",
                )
