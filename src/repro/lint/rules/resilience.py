"""RES — resilience bounds come from ``repro.core.bounds``, nowhere else.

Every algorithm module in ``core/`` gates on a process-count predicate
of the Xiang–Vaidya shape — ``n >= 3f + 1``, ``n >= (d+1)f + 1``,
``n >= (d+2)f + 1`` — and the whole point of :mod:`repro.core.bounds`
is that those predicates exist in exactly one place, checked against
the paper's theorems by the test suite.  An inline ``(d + 1) * f + 1``
in an algorithm file is a second copy that can silently drift from the
canonical one (and from the paper).

Rule
----
* ``RES001`` — arithmetic of the shape ``c*f``, ``c*f + 1``,
  ``(d + c)*f`` or ``(d + c)*f + 1`` (``c`` an integer literal, ``f``/
  ``d`` the conventional parameter names) anywhere in ``core/*.py``
  outside ``core/bounds.py`` — including inside f-strings, where
  re-derived bounds hide in error messages.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register
from .common import is_int_const

__all__ = ["InlineResilienceBound"]

_F_NAMES = frozenset({"f", "f_", "nfaulty", "n_faulty"})
_D_NAMES = frozenset({"d", "dim", "dimension"})


def _names(node: ast.AST, names: frozenset[str]) -> bool:
    """Name ``f`` / attribute ``self.f`` style reference check."""
    if isinstance(node, ast.Name):
        return node.id in names
    if isinstance(node, ast.Attribute):
        return node.attr in names
    return False


def _is_f(node: ast.AST) -> bool:
    return _names(node, _F_NAMES)


def _is_d_shift(node: ast.AST) -> bool:
    """``d`` or ``(d + c)`` / ``(d - c)`` with an integer literal."""
    if _names(node, _D_NAMES):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        pair = (node.left, node.right)
        return any(_names(p, _D_NAMES) for p in pair) and any(
            is_int_const(p) for p in pair
        )
    return False


def _is_bound_mult(node: ast.AST) -> bool:
    """``c * f`` (c >= 2) or ``(d ± c) * f`` / ``d * f``."""
    if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
        return False
    for a, b in ((node.left, node.right), (node.right, node.left)):
        if _is_f(b):
            if is_int_const(a) and a.value >= 2:  # type: ignore[attr-defined]
                return True
            if _is_d_shift(a):
                return True
    return False


@register
class InlineResilienceBound(Rule):
    id = "RES001"
    family = "resilience-bounds"
    scopes = ("core/",)
    summary = "resilience bound re-derived inline instead of via core.bounds"

    _MESSAGE = (
        "resilience arithmetic re-derived inline; express the precondition "
        "via repro.core.bounds (exact_bvc_min_n, tverberg_min_n, "
        "trim_min_size, ...) so every module shares one predicate"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.logical_path == "core/bounds.py":
            return
        reported: set[int] = set()
        for node in ast.walk(ctx.tree):
            # `c*f + 1` / `(d+c)*f + 1`: flag the Add, suppress the inner Mult.
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                for a, b in ((node.left, node.right), (node.right, node.left)):
                    if _is_bound_mult(a) and is_int_const(b):
                        if id(node) not in reported:
                            reported.add(id(node))
                            reported.add(id(a))
                            yield self.finding(ctx, node, self._MESSAGE)
                        break
        for node in ast.walk(ctx.tree):
            if (
                _is_bound_mult(node)
                and id(node) not in reported
            ):
                reported.add(id(node))
                yield self.finding(ctx, node, self._MESSAGE)
