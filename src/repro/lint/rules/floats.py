"""FLT — float comparisons in the geometric/protocol layers.

The LP/cutting-plane machinery hands back values that are *close to*
special values (0, the canonical norm orders, certified optima), never
guaranteed to be bitwise equal.  A bare ``delta == 0.0`` silently
changes which branch an algorithm takes for ``delta = 1e-17`` — exactly
the class of invariant drift the DST fuzzer had to catch dynamically in
PR 2.  All float comparisons in ``geometry/`` and ``core/`` must go
through :mod:`repro.geometry.tolerance`:

* ``near_zero(x)`` / ``close(a, b)`` — tolerance-aware comparison;
* ``norm_order_is(p, value)`` — exact dispatch on a *canonicalised* norm
  order (the one sanctioned exact comparison, for values produced by
  ``validate_p``);
* ``exactly_zero(x)`` — documented exact-zero guard (division-by-zero
  protection where a tolerance would change numerics).

Rule
----
* ``FLT001`` — ``==`` / ``!=`` with a float literal on either side.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import FileContext, Finding, Rule, register

__all__ = ["FloatEquality"]


def _is_float_const(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEquality(Rule):
    id = "FLT001"
    family = "float-safety"
    scopes = ("geometry/", "core/")
    summary = "bare ==/!= against a float literal"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[i], operands[i + 1]
                if _is_float_const(left) or _is_float_const(right):
                    yield self.finding(
                        ctx, node,
                        "bare float equality; use repro.geometry.tolerance "
                        "(near_zero/close for computed values, norm_order_is "
                        "for canonical norm orders, exactly_zero for "
                        "division guards)",
                    )
                    break  # one finding per comparison chain
