"""``python -m repro lint`` — CLI front-end for :mod:`repro.lint`.

Exit codes: 0 when no error-severity findings remain, 1 when any do,
2 on usage errors (consistent with the other subcommands).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections import Counter

from .engine import Finding, all_rules, lint_paths, stale_noqa

__all__ = ["run", "add_arguments"]

DEFAULT_PATHS = ("src/repro",)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a subparser."""
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids, id prefixes, or family names "
             "(e.g. DET,FLT001,handler-hygiene)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON array (alias for --format json)",
    )
    parser.add_argument(
        "--format", default="text", choices=("text", "json", "sarif"),
        dest="output_format",
        help="output format: text (default), json, or sarif (2.1.0)",
    )
    parser.add_argument(
        "--flow", action="store_true", default=True, dest="flow",
        help="run the whole-program families FLOW/TNT/QUO/XPT (default)",
    )
    parser.add_argument(
        "--no-flow", action="store_false", dest="flow",
        help="per-file rules only; skip the interprocedural pass",
    )
    parser.add_argument(
        "--check-noqa", action="store_true",
        help="also flag `# repro: noqa` comments that suppress nothing",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print per-rule finding counts after the findings",
    )


def _list_rules() -> int:
    from .flow.rules import all_flow_rules

    for rule in (*all_rules(), *all_flow_rules()):
        scopes = ", ".join(rule.scopes) if rule.scopes else "(all files)"
        print(f"{rule.id}  [{rule.family}]  {rule.summary}")
        print(f"        scope: {scopes}   severity: {rule.severity}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute the lint subcommand."""
    if args.list_rules:
        return _list_rules()
    paths = list(args.paths) if args.paths else list(DEFAULT_PATHS)
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    on_file = None
    if getattr(args, "verbose", False):
        on_file = lambda p: print(f"lint: {p}", file=sys.stderr)  # noqa: E731
    try:
        findings = lint_paths(
            paths, select=select, on_file=on_file, flow=args.flow
        )
        if args.check_noqa:
            findings = sorted(findings + stale_noqa(paths, flow=args.flow))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    errors = [f for f in findings if f.severity == "error"]
    fmt = "json" if args.as_json else args.output_format
    if fmt == "json":
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    elif fmt == "sarif":
        from .sarif import render_sarif

        print(render_sarif(findings))
    else:
        for f in findings:
            print(f.format())
        if not getattr(args, "quiet", False):
            _summary(findings, errors)
    if args.statistics and findings:
        counts = Counter(f.rule for f in findings)
        for rule_id, count in sorted(counts.items()):
            print(f"{count:5d}  {rule_id}")
    return 1 if errors else 0


def _summary(findings: list[Finding], errors: list[Finding]) -> None:
    if not findings:
        print("lint: clean")
    else:
        warn = len(findings) - len(errors)
        extra = f" ({warn} warning{'s' * (warn != 1)})" if warn else ""
        print(f"lint: {len(errors)} error{'s' * (len(errors) != 1)}{extra}")
