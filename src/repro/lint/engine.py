"""Rule registry, file walking, suppression — the linter's machinery.

The engine is deliberately small: a :class:`Rule` is an object with an
``id``, a ``severity``, a tuple of logical-path ``scopes`` it applies to,
and a ``check(ctx)`` generator over :class:`Finding`.  Everything
protocol-specific lives in :mod:`repro.lint.rules`.

Scoping
-------
Rules are *path-aware*: the determinism family only fires inside the
modules the DST replay corpus must reproduce (``core/``, ``system/``,
``dst/``) plus the seeded-trajectory trees (``benchmarks/``,
``examples/``), the float-safety family inside ``geometry/`` and
``core/``, and so on.  A file's *logical path* is its path relative to
the nearest recognised root (``src/repro/``, ``benchmarks/``,
``examples/``, ``tests/``).  Fixture files can override it with a
file-level directive::

    # repro: lint-as core/fixture.py

Suppression
-----------
A finding on line ``L`` is suppressed when line ``L`` carries
``# repro: noqa[RULE]`` naming its rule id (or family prefix), or a
blanket ``# repro: noqa``.  Suppressions are deliberately per-line and
grep-able — the point of the linter is that exceptions are visible.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_flow",
    "lint_paths",
    "lint_source",
    "register",
    "stale_noqa",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One ``file:line:col`` diagnostic."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """Render as ``path:line:col: RULE message`` (the CLI text format)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")
_LINT_AS_RE = re.compile(r"^#\s*repro:\s*lint-as\s+(?P<path>\S+)\s*$", re.MULTILINE)

#: Directory-name markers that anchor a file's logical path.
_ROOTS = ("src/repro", "benchmarks", "examples", "tests")


def logical_path_for(path: str) -> str:
    """Map a filesystem path to its repo-role path.

    ``src/repro/core/bounds.py`` -> ``core/bounds.py``;
    ``benchmarks/bench_table1.py`` -> ``benchmarks/bench_table1.py``;
    anything unrecognised keeps its basename (so ad-hoc files are linted
    with only the unscoped rules).
    """
    norm = path.replace(os.sep, "/")
    parts = norm.split("/")
    joined = "/".join(parts)
    for root in _ROOTS:
        marker = root + "/"
        idx = joined.find(marker)
        # Only match at a path-component boundary.
        if idx != -1 and (idx == 0 or joined[idx - 1] == "/"):
            rest = joined[idx + len(marker):]
            if root in ("benchmarks", "examples", "tests"):
                return f"{root}/{rest}"
            return rest
    return parts[-1]


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    logical_path: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """True when this file falls under any of the scope prefixes."""
        if not prefixes:
            return True
        return any(self.logical_path.startswith(p) for p in prefixes)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes`` is a tuple of logical-path prefixes the rule applies to
    (empty means every file); ``severity`` is ``"error"`` or
    ``"warning"`` — only errors affect the exit code.
    """

    id: str = ""
    family: str = ""
    severity: str = "error"
    scopes: tuple[str, ...] = ()
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # Convenience for subclasses.
    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (instance) to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by exact id (raises ``KeyError`` when unknown)."""
    return _REGISTRY[rule_id]


def _flow_registry() -> dict[str, "object"]:
    """The flow-rule registry, imported lazily (flow depends on engine)."""
    from .flow.rules import _FLOW_REGISTRY

    return dict(_FLOW_REGISTRY)


def _matches(rule_id: str, family: str, token: str) -> bool:
    return rule_id.startswith(token) or family == token


def _validate_select(wanted: Sequence[str]) -> None:
    """Raise on tokens matching neither a per-file nor a flow rule."""
    flow = _flow_registry()
    unknown = [
        w
        for w in wanted
        if not any(_matches(rid, _REGISTRY[rid].family, w) for rid in _REGISTRY)
        and not any(
            _matches(rid, rule.family, w)  # type: ignore[attr-defined]
            for rid, rule in flow.items()
        )
    ]
    if unknown:
        raise ValueError(f"unknown rule or family: {', '.join(sorted(unknown))}")


def _select_rules(select: Optional[Iterable[str]]) -> tuple[Rule, ...]:
    if select is None:
        return all_rules()
    wanted = [s.strip() for s in select if s.strip()]
    _validate_select(wanted)
    return tuple(
        r for rid, r in sorted(_REGISTRY.items())
        if any(_matches(rid, r.family, w) for w in wanted)
    )


def _line_suppressed(lines: Sequence[str], finding: Finding) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    m = _NOQA_RE.search(lines[finding.line - 1])
    if m is None:
        return False
    rules = m.group("rules")
    if rules is None:
        return True  # blanket noqa
    names = {r.strip() for r in rules.split(",") if r.strip()}
    return any(finding.rule == n or finding.rule.startswith(n) for n in names)


def _suppressed(ctx: FileContext, finding: Finding) -> bool:
    return _line_suppressed(ctx.lines, finding)


def lint_source(
    source: str,
    path: str = "<string>",
    logical_path: Optional[str] = None,
    select: Optional[Iterable[str]] = None,
    suppress: bool = True,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted.

    ``logical_path`` defaults to :func:`logical_path_for` on ``path``,
    overridden by an in-file ``# repro: lint-as`` directive.
    ``suppress=False`` keeps noqa'd findings (used by ``--check-noqa``
    to decide which suppressions still bite).
    """
    rules = _select_rules(select)
    directive = _LINT_AS_RE.search(source)
    if directive is not None:
        logical = directive.group("path")
    elif logical_path is not None:
        logical = logical_path
    else:
        logical = logical_path_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="PARSE",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        logical_path=logical,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )
    findings = [
        f
        for rule in rules
        if ctx.in_scope(rule.scopes)
        for f in rule.check(ctx)
        if not (suppress and _suppressed(ctx, f))
    ]
    return sorted(findings)


def lint_file(
    path: str, select: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint one file from disk."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield p


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    on_file: Optional[Callable[[str], None]] = None,
    flow: bool = False,
) -> list[Finding]:
    """Lint files and directories; the CLI's workhorse.

    ``on_file`` (when given) is called with each path before linting —
    used by ``--verbose`` progress output.  With ``flow=True`` the
    whole-program families (FLOW/TNT/QUO/XPT) run over the combined
    file set after the per-file pass.
    """
    findings: list[Finding] = []
    sources: list[tuple[str, str]] = []
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        sources.append((path, source))
        findings.extend(lint_source(source, path=path, select=select))
    if flow:
        findings.extend(lint_flow(sources, select=select))
    return sorted(findings)


def _select_flow_rules(select: Optional[Iterable[str]]) -> tuple:
    from .flow.rules import all_flow_rules

    rules = all_flow_rules()
    if select is None:
        return rules
    wanted = [s.strip() for s in select if s.strip()]
    _validate_select(wanted)
    return tuple(
        r for r in rules if any(_matches(r.id, r.family, w) for w in wanted)
    )


def lint_flow(
    files: Sequence[tuple[str, str]],
    select: Optional[Iterable[str]] = None,
    suppress: bool = True,
) -> list[Finding]:
    """Run the whole-program families over ``(path, source)`` pairs.

    Files that fail to parse are skipped here — the per-file pass
    already reported a ``PARSE`` finding for them.  Logical paths honour
    ``# repro: lint-as`` so fixtures can opt into the program model.
    """
    from .flow.model import build_model

    rules = _select_flow_rules(select)
    if not rules:
        return []
    records: list[tuple[str, str, ast.Module, tuple[str, ...]]] = []
    lines_by_path: dict[str, tuple[str, ...]] = {}
    for path, source in files:
        directive = _LINT_AS_RE.search(source)
        logical = (
            directive.group("path") if directive else logical_path_for(path)
        )
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        lines = tuple(source.splitlines())
        records.append((path, logical, tree, lines))
        lines_by_path[path] = lines
    model = build_model(records)
    findings: list[Finding] = []
    for rule in rules:
        for f in rule.check_program(model):
            if suppress and _line_suppressed(lines_by_path.get(f.path, ()), f):
                continue
            findings.append(f)
    return sorted(findings)


def _iter_noqa_comments(source: str) -> Iterator[tuple[int, Optional[str], int]]:
    """Yield ``(line, rule-spec-or-None, col)`` for every noqa *comment*.

    Tokenize-based so prose mentions of the directive inside docstrings
    (this repo documents its own linter) are not treated as
    suppressions.
    """
    import io
    import tokenize

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                m = _NOQA_RE.search(tok.string)
                if m is not None:
                    yield tok.start[0], m.group("rules"), tok.start[1]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def stale_noqa(
    paths: Sequence[str], flow: bool = True
) -> list[Finding]:
    """Find ``# repro: noqa`` comments that no longer suppress anything.

    A suppression is *live* when at least one raw finding on its line is
    covered by its rule list (or any finding, for a blanket noqa).
    Stale suppressions come back as ``NOQA`` findings — they hide
    nothing today and would silently hide a future regression.
    """
    sources: list[tuple[str, str]] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    raw: list[Finding] = []
    for path, source in sources:
        raw.extend(lint_source(source, path=path, suppress=False))
    if flow:
        raw.extend(lint_flow(sources, suppress=False))
    by_line: dict[tuple[str, int], set[str]] = {}
    for f in raw:
        by_line.setdefault((f.path, f.line), set()).add(f.rule)
    findings: list[Finding] = []
    for path, source in sources:
        for lineno, spec, col in _iter_noqa_comments(source):
            live = by_line.get((path, lineno), set())
            if spec is None:
                covered = bool(live)
            else:
                names = {r.strip() for r in spec.split(",") if r.strip()}
                covered = any(
                    rule == n or rule.startswith(n)
                    for rule in live
                    for n in names
                )
            if not covered:
                findings.append(
                    Finding(
                        path=path,
                        line=lineno,
                        col=col + 1,
                        rule="NOQA",
                        message=(
                            "stale suppression: no finding on this line "
                            "matches; remove it or it will hide a future "
                            "regression"
                        ),
                    )
                )
    return sorted(findings)
