"""Rule registry, file walking, suppression — the linter's machinery.

The engine is deliberately small: a :class:`Rule` is an object with an
``id``, a ``severity``, a tuple of logical-path ``scopes`` it applies to,
and a ``check(ctx)`` generator over :class:`Finding`.  Everything
protocol-specific lives in :mod:`repro.lint.rules`.

Scoping
-------
Rules are *path-aware*: the determinism family only fires inside the
modules the DST replay corpus must reproduce (``core/``, ``system/``,
``dst/``) plus the seeded-trajectory trees (``benchmarks/``,
``examples/``), the float-safety family inside ``geometry/`` and
``core/``, and so on.  A file's *logical path* is its path relative to
the nearest recognised root (``src/repro/``, ``benchmarks/``,
``examples/``, ``tests/``).  Fixture files can override it with a
file-level directive::

    # repro: lint-as core/fixture.py

Suppression
-----------
A finding on line ``L`` is suppressed when line ``L`` carries
``# repro: noqa[RULE]`` naming its rule id (or family prefix), or a
blanket ``# repro: noqa``.  Suppressions are deliberately per-line and
grep-able — the point of the linter is that exceptions are visible.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One ``file:line:col`` diagnostic."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def format(self) -> str:
        """Render as ``path:line:col: RULE message`` (the CLI text format)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")
_LINT_AS_RE = re.compile(r"^#\s*repro:\s*lint-as\s+(?P<path>\S+)\s*$", re.MULTILINE)

#: Directory-name markers that anchor a file's logical path.
_ROOTS = ("src/repro", "benchmarks", "examples", "tests")


def logical_path_for(path: str) -> str:
    """Map a filesystem path to its repo-role path.

    ``src/repro/core/bounds.py`` -> ``core/bounds.py``;
    ``benchmarks/bench_table1.py`` -> ``benchmarks/bench_table1.py``;
    anything unrecognised keeps its basename (so ad-hoc files are linted
    with only the unscoped rules).
    """
    norm = path.replace(os.sep, "/")
    parts = norm.split("/")
    joined = "/".join(parts)
    for root in _ROOTS:
        marker = root + "/"
        idx = joined.find(marker)
        # Only match at a path-component boundary.
        if idx != -1 and (idx == 0 or joined[idx - 1] == "/"):
            rest = joined[idx + len(marker):]
            if root in ("benchmarks", "examples", "tests"):
                return f"{root}/{rest}"
            return rest
    return parts[-1]


@dataclass
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str
    logical_path: str
    source: str
    tree: ast.Module
    lines: tuple[str, ...]

    def in_scope(self, prefixes: Sequence[str]) -> bool:
        """True when this file falls under any of the scope prefixes."""
        if not prefixes:
            return True
        return any(self.logical_path.startswith(p) for p in prefixes)


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scopes`` is a tuple of logical-path prefixes the rule applies to
    (empty means every file); ``severity`` is ``"error"`` or
    ``"warning"`` — only errors affect the exit code.
    """

    id: str = ""
    family: str = ""
    severity: str = "error"
    scopes: tuple[str, ...] = ()
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    # Convenience for subclasses.
    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
            severity=self.severity,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (instance) to the global registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by exact id (raises ``KeyError`` when unknown)."""
    return _REGISTRY[rule_id]


def _select_rules(select: Optional[Iterable[str]]) -> tuple[Rule, ...]:
    if select is None:
        return all_rules()

    def matches(rule_id: str, token: str) -> bool:
        return rule_id.startswith(token) or _REGISTRY[rule_id].family == token

    wanted = [s.strip() for s in select if s.strip()]
    unknown = [
        w for w in wanted if not any(matches(rid, w) for rid in _REGISTRY)
    ]
    if unknown:
        raise ValueError(f"unknown rule or family: {', '.join(sorted(unknown))}")
    return tuple(
        r for rid, r in sorted(_REGISTRY.items())
        if any(matches(rid, w) for w in wanted)
    )


def _suppressed(ctx: FileContext, finding: Finding) -> bool:
    if not 1 <= finding.line <= len(ctx.lines):
        return False
    m = _NOQA_RE.search(ctx.lines[finding.line - 1])
    if m is None:
        return False
    rules = m.group("rules")
    if rules is None:
        return True  # blanket noqa
    names = {r.strip() for r in rules.split(",") if r.strip()}
    return any(finding.rule == n or finding.rule.startswith(n) for n in names)


def lint_source(
    source: str,
    path: str = "<string>",
    logical_path: Optional[str] = None,
    select: Optional[Iterable[str]] = None,
) -> list[Finding]:
    """Lint one source string; returns unsuppressed findings, sorted.

    ``logical_path`` defaults to :func:`logical_path_for` on ``path``,
    overridden by an in-file ``# repro: lint-as`` directive.
    """
    rules = _select_rules(select)
    directive = _LINT_AS_RE.search(source)
    if directive is not None:
        logical = directive.group("path")
    elif logical_path is not None:
        logical = logical_path
    else:
        logical = logical_path_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="PARSE",
                message=f"cannot parse: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        logical_path=logical,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    )
    findings = [
        f
        for rule in rules
        if ctx.in_scope(rule.scopes)
        for f in rule.check(ctx)
        if not _suppressed(ctx, f)
    ]
    return sorted(findings)


def lint_file(
    path: str, select: Optional[Iterable[str]] = None
) -> list[Finding]:
    """Lint one file from disk."""
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, select=select)


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    for p in paths:
        if os.path.isdir(p):
            for dirpath, dirnames, filenames in os.walk(p):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name)
        else:
            yield p


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    on_file: Optional[Callable[[str], None]] = None,
) -> list[Finding]:
    """Lint files and directories; the CLI's workhorse.

    ``on_file`` (when given) is called with each path before linting —
    used by ``--verbose`` progress output.
    """
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        if on_file is not None:
            on_file(path)
        findings.extend(lint_file(path, select=select))
    return sorted(findings)
