"""SARIF 2.1.0 export — findings as GitHub code-scanning annotations.

``python -m repro lint --format sarif`` emits one run with the full
rule catalogue (per-file and flow families) as ``tool.driver.rules`` so
code scanning renders rule help inline.  Only the subset of SARIF that
GitHub's upload action consumes is produced: schema/version, driver
metadata, rule descriptors, and physical locations.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from .engine import Finding, all_rules

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_catalogue() -> list[dict[str, Any]]:
    from .flow.rules import all_flow_rules

    descriptors: list[dict[str, Any]] = []
    for rule in (*all_rules(), *all_flow_rules()):
        descriptors.append(
            {
                "id": rule.id,
                "name": type(rule).__name__,
                "shortDescription": {"text": rule.summary},
                "properties": {
                    "family": rule.family,
                    "scopes": list(rule.scopes),
                },
                "defaultConfiguration": {
                    "level": _LEVELS.get(rule.severity, "warning")
                },
            }
        )
    # Engine-synthesised findings have no Rule object behind them.
    for synth_id, text in (
        ("PARSE", "file does not parse"),
        ("NOQA", "stale suppression comment"),
    ):
        descriptors.append(
            {
                "id": synth_id,
                "name": synth_id.title(),
                "shortDescription": {"text": text},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def to_sarif(findings: Sequence[Finding]) -> dict[str, Any]:
    """Build the SARIF log object for a list of findings."""
    results = [
        {
            "ruleId": f.rule,
            "level": _LEVELS.get(f.severity, "warning"),
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rule_catalogue(),
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF log as an indented JSON string (what the CLI prints)."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
