"""Protocol-aware static analysis for the reproduction (``repro.lint``).

The paper's guarantees are only as good as the invariants every module
encodes: the resilience predicates (``n >= max((d+1)f+1, 3f+1)`` and
friends) must come from one place (:mod:`repro.core.bounds`), the
simulator must stay bit-for-bit deterministic so the DST replay corpus
keeps reproducing, and geometric code must never compare floats with
bare ``==``.  This package checks those properties *statically*, before
the fuzzer has to find the drift dynamically.

Rule families (see ``docs/static_analysis.md``):

=========  ================================================================
family     what it protects
=========  ================================================================
``DET``    replay determinism of ``core/``, ``system/``, ``dst/`` (and the
           seeded-trajectory property of ``benchmarks/``/``examples/``)
``FLT``    float comparisons in ``geometry/``/``core/`` go through the
           tolerance helpers in :mod:`repro.geometry.tolerance`
``RES``    resilience bounds in ``core/`` are expressed via
           :mod:`repro.core.bounds` predicates, never re-derived inline
``HYG``    message handlers neither mutate module state nor retain
           references to in-flight payloads they also forward
``FLOW``   every message kind sent has a handler branch, no dead handlers
           (whole-program, :mod:`repro.lint.flow`)
``TNT``    wall-clock/RNG/set-order values never *flow* into decisions,
           payloads, or cache keys (interprocedural taint)
``QUO``    thresholds/quorums reach :mod:`repro.core.bounds` via dataflow
``XPT``    transport readiness: no handler-reachable module globals, pure
           data payloads, transport touched only via the approved seams
=========  ================================================================

Findings are suppressible per line with ``# repro: noqa[RULE]`` (or a
blanket ``# repro: noqa``); fixture/test files can opt into a scope with
a file-level ``# repro: lint-as <path>`` directive.

Entry points: ``python -m repro lint [paths...]`` or
:func:`repro.lint.lint_paths`.
"""

from __future__ import annotations

from .engine import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    get_rule,
    lint_file,
    lint_flow,
    lint_paths,
    lint_source,
    register,
    stale_noqa,
)

# Importing the rule modules registers every shipped rule (the flow
# registry populates lazily inside lint_flow/_validate_select).
from . import rules as _rules  # noqa: E402,F401  (import-for-side-effect)

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_flow",
    "lint_paths",
    "lint_source",
    "register",
    "stale_noqa",
]
