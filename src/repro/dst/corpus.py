"""Replay tokens and the committed regression-seed corpus.

Two persistence layers:

* **Replay tokens** — a scenario compressed into one URL-safe string
  (``dst1-`` + base64(zlib(canonical JSON))).  Tokens are what the fuzz
  CLI prints next to every violation and what ``python -m repro replay
  --token ...`` consumes; they are self-contained, so a failure found on
  one machine replays bit-for-bit on another.

* **Seed files** — JSON documents under ``tests/corpus/`` committing a
  known-interesting scenario together with its *expectation*: either
  ``{"ok": true}`` (the invariants must hold — a regression fence around
  a once-scary schedule) or ``{"violates": "<invariant>"}`` (an
  expected-failure seed, e.g. an injected-bug demo).  The test suite
  replays every committed seed on every run.

Replays execute under a real :class:`~repro.obs.tracer.Tracer` and a
fresh :class:`~repro.obs.metrics.MetricsRegistry`, so a reproduced
failure comes with a span/metrics forensic trail (optionally dumped to
JSONL via ``trace_path``).
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from ..obs import MetricsRegistry, Tracer, use_registry, use_tracer, write_jsonl
from ..obs.probes import Probe
from .explore import CheckerFn, ExplorationResult, run_scenario
from .scenarios import Scenario

__all__ = [
    "ReplayReport",
    "SeedCase",
    "decode_token",
    "encode_token",
    "load_corpus",
    "replay",
    "save_seed",
]

_TOKEN_PREFIX = "dst1-"


def encode_token(scenario: Scenario) -> str:
    """Compress a scenario into a self-contained replay token."""
    payload = json.dumps(
        scenario.to_dict(), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    packed = base64.urlsafe_b64encode(zlib.compress(payload, 9)).decode("ascii")
    return _TOKEN_PREFIX + packed.rstrip("=")


def decode_token(token: str) -> Scenario:
    """Inverse of :func:`encode_token` (validates the scenario)."""
    token = token.strip()
    if not token.startswith(_TOKEN_PREFIX):
        raise ValueError(
            f"not a replay token (expected {_TOKEN_PREFIX!r} prefix): {token[:16]!r}..."
        )
    packed = token[len(_TOKEN_PREFIX):]
    packed += "=" * (-len(packed) % 4)
    try:
        payload = zlib.decompress(base64.urlsafe_b64decode(packed.encode("ascii")))
        data = json.loads(payload.decode("utf-8"))
    except Exception as exc:
        raise ValueError(f"corrupt replay token: {exc}") from exc
    return Scenario.from_dict(data)


# ---------------------------------------------------------------------------
# replay with forensics
# ---------------------------------------------------------------------------


@dataclass
class ReplayReport:
    """One traced replay: the run's verdicts plus its forensic trail."""

    result: ExplorationResult
    tracer: Tracer
    metrics: MetricsRegistry
    trace_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result.ok

    @property
    def invariant(self) -> Optional[str]:
        return self.result.invariant

    def span_names(self) -> set[str]:
        return {s.name for s in self.tracer.spans}


def replay(
    scenario_or_token: Union[Scenario, str],
    *,
    trace_path: Optional[Union[str, Path]] = None,
    checkers: Optional[Mapping[str, CheckerFn]] = None,
    probes: Sequence[Union[str, Probe]] = (),
) -> ReplayReport:
    """Re-execute a scenario under full observability.

    The run always collects spans and metrics; when ``trace_path`` is
    given the trail is additionally written as a JSONL trace file
    readable by :func:`repro.obs.read_jsonl` and the profiling
    renderers.  ``probes`` enables online invariant probes (see
    :func:`repro.dst.explore.run_scenario`); their reports ride on
    ``report.result.probe_reports``.
    """
    scenario = (
        decode_token(scenario_or_token)
        if isinstance(scenario_or_token, str)
        else scenario_or_token
    )
    tracer = Tracer(level="info")
    registry = MetricsRegistry()
    tracer.event(
        "dst.replay.start",
        algorithm=scenario.algorithm,
        n=scenario.n,
        d=scenario.d,
        f=scenario.f,
        seed=scenario.seed,
        token=encode_token(scenario),
    )
    with use_tracer(tracer), use_registry(registry):
        result = run_scenario(scenario, checkers=checkers, probes=probes)
    tracer.event(
        "dst.replay.done",
        ok=result.ok,
        violations=sorted(result.violations),
        probe_violations=result.probe_violations,
    )
    out: Optional[str] = None
    if trace_path is not None:
        write_jsonl(trace_path, tracer, registry)
        out = str(trace_path)
    return ReplayReport(result=result, tracer=tracer, metrics=registry, trace_path=out)


# ---------------------------------------------------------------------------
# seed files
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedCase:
    """One committed corpus entry.

    ``expect`` is either ``{"ok": True}`` or ``{"violates": "<name>"}``.
    """

    name: str
    scenario: Scenario
    expect: Mapping[str, Any] = field(default_factory=lambda: {"ok": True})
    notes: str = ""
    path: Optional[str] = None

    @property
    def expect_ok(self) -> bool:
        return bool(self.expect.get("ok", False))

    @property
    def expected_violation(self) -> Optional[str]:
        v = self.expect.get("violates")
        return str(v) if v is not None else None

    def check(self, result: ExplorationResult) -> Optional[str]:
        """Return a mismatch description, or None when the replay matches."""
        if self.expect_ok:
            if result.ok:
                return None
            return (
                f"seed {self.name!r} expected clean invariants but violated "
                f"{sorted(result.violations)}"
            )
        want = self.expected_violation
        if want is None:
            return f"seed {self.name!r} has no usable expectation: {dict(self.expect)}"
        if want in result.violations:
            return None
        return (
            f"seed {self.name!r} expected a {want!r} violation but got "
            f"{sorted(result.violations) or 'a clean run'}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "notes": self.notes,
            "expect": dict(self.expect),
            "scenario": self.scenario.to_dict(),
            "token": encode_token(self.scenario),
        }


def save_seed(
    path: Union[str, Path],
    scenario: Scenario,
    *,
    name: Optional[str] = None,
    expect: Optional[Mapping[str, Any]] = None,
    notes: str = "",
) -> SeedCase:
    """Write a scenario as a corpus seed file (promotion workflow)."""
    path = Path(path)
    case = SeedCase(
        name=name or path.stem,
        scenario=scenario,
        expect=dict(expect) if expect is not None else {"ok": True},
        notes=notes,
        path=str(path),
    )
    path.write_text(json.dumps(case.to_dict(), indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return case


def load_seed(path: Union[str, Path]) -> SeedCase:
    """Load one seed file; the embedded token must match the scenario."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    scenario = Scenario.from_dict(data["scenario"])
    token = data.get("token")
    if token is not None and decode_token(token) != scenario:
        raise ValueError(
            f"{path}: embedded token does not match the scenario body "
            "(hand-edited seed? regenerate with save_seed)"
        )
    return SeedCase(
        name=str(data.get("name", path.stem)),
        scenario=scenario,
        expect=dict(data.get("expect", {"ok": True})),
        notes=str(data.get("notes", "")),
        path=str(path),
    )


def load_corpus(directory: Union[str, Path]) -> list[SeedCase]:
    """Load every ``*.json`` seed in a corpus directory (sorted by name)."""
    directory = Path(directory)
    return [load_seed(p) for p in sorted(directory.glob("*.json"))]
