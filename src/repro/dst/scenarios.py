"""Scenario DSL: declarative fault scripts and delivery-schedule scripts.

A :class:`Scenario` is a *plain-data* description of one adversarial
execution — algorithm, system shape, input seed, a **fault script** (who
is Byzantine, doing what, during which window) and a **schedule script**
(how the asynchronous adversary orders deliveries).  Plain data is the
point: scenarios serialise to JSON, round-trip through compact replay
tokens (:mod:`repro.dst.corpus`), and shrink structurally
(:mod:`repro.dst.shrink`), which a closure-based fault description could
never do.

The fault script composes the behaviours the paper's proofs quantify
over: crash-then-recover (a ``silent`` clause with a finite window),
strategy switches mid-run (consecutive clauses for the same pid),
targeted drops, duplication storms, and equivocation — all layered onto
:class:`~repro.system.adversary.ByzantineStrategy` via
:class:`ScriptedStrategy`.  The schedule script drives the async
scheduler's adversarial ordering hook (:class:`ScenarioPolicy`): healing
partitions, targeted delay windows, reorder/FIFO windows.  Both stay
within the model — channels are reliable, schedules eventually fair — so
a surviving invariant violation is a real counterexample, not an
artefact of breaking the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..system.adversary import (
    Adversary,
    AdversaryView,
    ByzantineStrategy,
    DuplicateStrategy,
    EquivocateStrategy,
    HonestStrategy,
    MutateStrategy,
    SilentStrategy,
)
from ..system.messages import Message
from ..system.network import Network
from ..system.scheduler import DeliveryPolicy, FifoPolicy, RandomPolicy

__all__ = [
    "FAULT_KINDS",
    "WINDOW_KINDS",
    "FaultClause",
    "ScheduleWindow",
    "Scenario",
    "ScriptedStrategy",
    "ScenarioPolicy",
    "adversary_from_clauses",
    "build_adversary",
    "build_policy",
    "min_system_size",
]

#: Fault-clause kinds understood by :class:`ScriptedStrategy`.
FAULT_KINDS = ("honest", "silent", "mutate", "equivocate", "duplicate", "drop")

#: Schedule-window kinds understood by :class:`ScenarioPolicy`.
WINDOW_KINDS = ("partition", "delay", "fifo", "reorder")


@dataclass(frozen=True)
class FaultClause:
    """One windowed behaviour of one faulty process.

    ``start``/``end`` delimit a half-open time window: synchronous rounds
    for sync executions, activation count (outbox flushes) for async ones.
    ``end=None`` means "until the run ends".  Outside every clause window
    the process behaves honestly, so ``silent`` with a finite window *is*
    crash-then-recover, and two consecutive clauses are a mid-run strategy
    switch.

    ``param`` is the kind's knob: noise scale for ``mutate``/
    ``equivocate``, copy count for ``duplicate``, drop probability for
    ``drop``; ignored otherwise.
    """

    pid: int
    kind: str = "silent"
    start: int = 0
    end: Optional[int] = None
    param: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choices {FAULT_KINDS}")
        if self.pid < 0:
            raise ValueError(f"pid must be >= 0, got {self.pid}")
        if self.start < 0 or (self.end is not None and self.end <= self.start):
            raise ValueError(f"bad window [{self.start}, {self.end})")

    def active_at(self, t: int) -> bool:
        return self.start <= t and (self.end is None or t < self.end)

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "FaultClause":
        return cls(
            pid=int(d["pid"]),
            kind=str(d.get("kind", "silent")),
            start=int(d.get("start", 0)),
            end=None if d.get("end") is None else int(d["end"]),
            param=float(d.get("param", 1.0)),
        )


@dataclass(frozen=True)
class ScheduleWindow:
    """One windowed delivery-ordering regime (async executions only).

    ``[start, end)`` counts delivery steps.  ``partition`` starves links
    that cross ``groups`` (the partition *heals* when the window closes —
    and, to keep the schedule legal, is forced open early if only
    cross-partition traffic remains).  ``delay`` starves messages *to*
    ``victims``.  ``fifo`` delivers globally oldest-first; ``reorder`` is
    seeded-uniform over pending links (the explorer's default outside any
    window too).
    """

    kind: str = "delay"
    start: int = 0
    end: int = 100
    groups: tuple[tuple[int, ...], ...] = ()
    victims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WINDOW_KINDS:
            raise ValueError(f"unknown window kind {self.kind!r}; choices {WINDOW_KINDS}")
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad window [{self.start}, {self.end})")
        if self.kind == "partition" and len(self.groups) < 2:
            raise ValueError("partition window needs >= 2 groups")
        if self.kind == "delay" and not self.victims:
            raise ValueError("delay window needs victims")

    def active_at(self, step: int) -> bool:
        return self.start <= step < self.end

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "groups": [list(g) for g in self.groups],
            "victims": list(self.victims),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "ScheduleWindow":
        return cls(
            kind=str(d.get("kind", "delay")),
            start=int(d.get("start", 0)),
            end=int(d.get("end", 100)),
            groups=tuple(tuple(int(p) for p in g) for g in d.get("groups", ())),
            victims=tuple(int(v) for v in d.get("victims", ())),
        )


#: Algorithm name -> resilience floor n >= min_system_size(algorithm, d, f).
def min_system_size(algorithm: str, d: int, f: int) -> int:
    """Smallest legal n for running ``algorithm`` at dimension d with f faults.

    ``exact`` is Vaidya–Garg's tight bound; the relaxed algorithms run
    from 3f+1 but the δ*/subset machinery additionally wants at least
    d+1 points, matching the explorer's legacy sampling floor.
    """
    if algorithm == "exact":
        return max(3 * f + 1, (d + 1) * f + 1)
    if algorithm in ("algo", "averaging", "k1"):
        return max(3 * f + 1, d + 1)
    raise ValueError(f"unknown algorithm {algorithm!r}")


@dataclass(frozen=True)
class Scenario:
    """One fully-specified adversarial execution, as plain data.

    Everything an execution needs is derived deterministically from these
    fields: inputs are ``rng(seed).normal(scale=input_scale, size=(n, d))``
    and the same seed drives the scheduler, so a scenario *is* its own
    replay token (see :func:`repro.dst.corpus.encode_token`).

    ``inject`` names an outcome-level bug injection from
    :data:`repro.dst.explore.INJECTIONS` — a deliberately broken
    post-processing step used to demo and test the fuzz → shrink → replay
    loop without breaking a real algorithm.
    """

    algorithm: str
    n: int
    d: int
    f: int
    seed: int
    input_scale: float = 3.0
    faults: tuple[FaultClause, ...] = ()
    schedule: tuple[ScheduleWindow, ...] = ()
    inject: Optional[str] = None

    # ------------------------------------------------------------- validation
    def validate(self) -> None:
        """Raise ``ValueError`` when the scenario cannot be executed."""
        if self.algorithm not in ("exact", "algo", "k1", "averaging"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.d < 1:
            raise ValueError(f"d must be >= 1, got {self.d}")
        if self.f < 0:
            raise ValueError(f"f must be >= 0, got {self.f}")
        floor = min_system_size(self.algorithm, self.d, self.f)
        if self.n < floor:
            raise ValueError(
                f"{self.algorithm} at d={self.d}, f={self.f} needs n >= {floor}, "
                f"got n={self.n}"
            )
        pids = self.faulty_pids()
        if len(pids) > self.f:
            raise ValueError(f"fault script corrupts {len(pids)} > f={self.f} processes")
        for pid in pids:
            if pid >= self.n:
                raise ValueError(f"fault clause pid {pid} out of range for n={self.n}")
        if self.schedule and self.algorithm != "averaging":
            raise ValueError(
                "schedule windows only apply to the asynchronous algorithm "
                "('averaging'); synchronous rounds deliver in lockstep"
            )
        for w in self.schedule:
            for p in (pid for g in w.groups for pid in g) or ():
                if p >= self.n:
                    raise ValueError(f"partition group pid {p} out of range")
            for v in w.victims:
                if v >= self.n:
                    raise ValueError(f"delay victim {v} out of range")

    def faulty_pids(self) -> tuple[int, ...]:
        return tuple(sorted({c.pid for c in self.faults}))

    def inputs(self) -> np.ndarray:
        """The deterministic input matrix this scenario runs on."""
        rng = np.random.default_rng(self.seed)
        return rng.normal(scale=self.input_scale, size=(self.n, self.d))

    def strategy_label(self) -> str:
        """Primary fault kind, for humans ('honest' when no script)."""
        if not self.faults:
            return "honest"
        kinds = [c.kind for c in self.faults]
        return max(set(kinds), key=kinds.count)

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "n": self.n,
            "d": self.d,
            "f": self.f,
            "seed": self.seed,
            "input_scale": self.input_scale,
            "faults": [c.to_dict() for c in self.faults],
            "schedule": [w.to_dict() for w in self.schedule],
            "inject": self.inject,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "Scenario":
        scen = cls(
            algorithm=str(d["algorithm"]),
            n=int(d["n"]),
            d=int(d["d"]),
            f=int(d["f"]),
            seed=int(d["seed"]),
            input_scale=float(d.get("input_scale", 3.0)),
            faults=tuple(FaultClause.from_dict(c) for c in d.get("faults", ())),
            schedule=tuple(ScheduleWindow.from_dict(w) for w in d.get("schedule", ())),
            inject=d.get("inject"),
        )
        scen.validate()
        return scen


# ---------------------------------------------------------------------------
# fault script -> ByzantineStrategy
# ---------------------------------------------------------------------------


def _value_noise(scale: float) -> Callable[[Any, np.random.Generator], Any]:
    """Payload mutator: structured noise on numeric tuples (protocol-agnostic)."""

    def mutate(value: Any, rng: np.random.Generator) -> Any:
        if isinstance(value, tuple):
            if value and all(isinstance(v, float) for v in value):
                return tuple(v + float(rng.normal() * scale) for v in value)
            return tuple(mutate(v, rng) for v in value)
        return value

    return mutate


def _clause_strategy(clause: FaultClause) -> ByzantineStrategy:
    """The stationary strategy a clause applies while active."""
    if clause.kind == "honest":
        return HonestStrategy()
    if clause.kind == "silent":
        return SilentStrategy()
    if clause.kind == "duplicate":
        return DuplicateStrategy(max(2, int(clause.param)))
    noise = _value_noise(clause.param)
    if clause.kind == "mutate":
        return MutateStrategy(lambda tag, p, r: noise(p, r))
    if clause.kind == "equivocate":
        return EquivocateStrategy(lambda tag, p, dst, r: noise(p, r))
    assert clause.kind == "drop"
    return SilentStrategy()  # drop is probabilistic; handled in transform


class ScriptedStrategy(ByzantineStrategy):
    """Plays a fault script: per-window behaviours with honest gaps.

    Time is the synchronous round when the scheduler provides one
    (``view.round``); in asynchronous executions it is this process's
    activation count — each outbox flush advances the clock by one, which
    is deterministic under a fixed delivery schedule.  The *last* clause
    whose window covers the current time wins, so later clauses override
    earlier ones (a strategy switch mid-run).
    """

    def __init__(self, clauses: Sequence[FaultClause]) -> None:
        self.clauses = tuple(clauses)
        self._strategies = [_clause_strategy(c) for c in self.clauses]
        self._activations = 0
        self._last_seen_time: Optional[int] = None

    def _now(self, view: AdversaryView) -> int:
        if view.round is not None:
            return view.round
        return self._activations

    def _active(self, t: int) -> Optional[tuple[FaultClause, ByzantineStrategy]]:
        hit = None
        for clause, strat in zip(self.clauses, self._strategies):
            if clause.active_at(t):
                hit = (clause, strat)
        return hit

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        t = self._now(view)
        self._last_seen_time = t
        hit = self._active(t)
        if hit is None:
            return [msg]
        clause, strat = hit
        if clause.kind == "drop":
            return [] if view.rng.random() < clause.param else [msg]
        return strat.transform(msg, view)

    def inject(self, pid: int, view: AdversaryView) -> list[Message]:
        # Advance the async activation clock once per flush (inject is
        # called exactly once per transform_outbox call).
        if view.round is None:
            self._activations += 1
        hit = self._active(self._last_seen_time if self._last_seen_time is not None
                           else self._now(view))
        if hit is None:
            return []
        return hit[1].inject(pid, view)


def adversary_from_clauses(clauses: Sequence[FaultClause]) -> Adversary:
    """Compile a bare fault script into an :class:`Adversary`."""
    pids = tuple(sorted({c.pid for c in clauses}))
    strategies = {
        pid: ScriptedStrategy([c for c in clauses if c.pid == pid])
        for pid in pids
    }
    return Adversary(faulty=pids, strategies=strategies)


def build_adversary(scenario: Scenario) -> Adversary:
    """Compile a scenario's fault script into an :class:`Adversary`."""
    return adversary_from_clauses(scenario.faults)


# ---------------------------------------------------------------------------
# schedule script -> DeliveryPolicy
# ---------------------------------------------------------------------------


class ScenarioPolicy(DeliveryPolicy):
    """Plays a schedule script on the async scheduler's ordering hook.

    Each ``choose`` call is one delivery step.  Inside a window the link
    pool is filtered per the window kind; if filtering empties the pool
    the starved links are delivered anyway (the schedule must stay legal:
    the scheduler requires *some* pending link and asynchrony only
    permits finite — eventually fair — deferral).  Starvation decisions
    are counted in :attr:`starved` for forensics.
    """

    def __init__(self, windows: Sequence[ScheduleWindow] = ()) -> None:
        self.windows = tuple(windows)
        self.step = 0
        self.starved = 0
        self._random = RandomPolicy()
        self._fifo = FifoPolicy()

    def _window_at(self, step: int) -> Optional[ScheduleWindow]:
        hit = None
        for w in self.windows:
            if w.active_at(step):
                hit = w
        return hit

    @staticmethod
    def _same_group(
        link: tuple[int, int], groups: Sequence[tuple[int, ...]]
    ) -> bool:
        src, dst = link
        if dst < 0:  # atomic broadcast reaches everyone: cross-partition
            return False
        return any(src in g and dst in g for g in groups)

    def choose(
        self,
        links: Sequence[tuple[int, int]],
        network: Network,
        rng: np.random.Generator,
    ) -> tuple[int, int]:
        w = self._window_at(self.step)
        self.step += 1
        pool = list(links)
        base = self._random
        if w is not None:
            if w.kind == "partition":
                kept = [lk for lk in pool if self._same_group(lk, w.groups)]
                self.starved += len(pool) - len(kept)
                pool = kept or pool
            elif w.kind == "delay":
                victims = set(w.victims)
                kept = [lk for lk in pool if lk[1] not in victims]
                self.starved += len(pool) - len(kept)
                pool = kept or pool
            elif w.kind == "fifo":
                base = self._fifo
            # "reorder" keeps the seeded-uniform base policy.
        return base.choose(pool, network, rng)


def build_policy(scenario: Scenario) -> Optional[ScenarioPolicy]:
    """Compile the schedule script (None when the scenario has none)."""
    if not scenario.schedule:
        return None
    return ScenarioPolicy(scenario.schedule)
