"""Greedy counterexample shrinking: smaller scenario, same violation.

A raw fuzz counterexample is rarely the story — it has incidental faults,
oversized systems, and schedule windows that play no role.  The shrinker
minimises a violating :class:`~repro.dst.scenarios.Scenario` along every
structural axis — n, d, f, fault-script length, clause severity, schedule
length and window width — **re-running the scenario after every candidate
edit** and keeping the edit only if the *same invariant* still breaks.
This is delta-debugging specialised to the scenario DSL: because every
candidate is itself a complete plain-data scenario, the final result is a
replayable token exactly like the original, just smaller.

The pass order is fixed and candidate generation draws no randomness, so
shrinking is deterministic: the same input scenario always shrinks to the
same output scenario in the same number of attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Mapping, Optional

from .explore import CheckerFn, run_scenario
from .scenarios import Scenario, min_system_size

__all__ = ["ShrinkResult", "scenario_size", "shrink"]


def scenario_size(s: Scenario) -> tuple[int, int, int, int, int]:
    """Partial-order size: (n, d, f, fault clauses, schedule span).

    Shrinking never increases any component; ties are broken by trying
    the most aggressive edits first.
    """
    span = sum(w.end - w.start for w in s.schedule)
    return (s.n, s.d, s.f, len(s.faults), span)


@dataclass(frozen=True)
class ShrinkResult:
    """Outcome of one shrink run."""

    original: Scenario
    shrunk: Scenario
    invariant: str
    #: Candidate scenarios executed (both kept and rejected edits).
    attempts: int
    #: Edits that preserved the violation and were kept.
    accepted: int

    @property
    def improved(self) -> bool:
        return scenario_size(self.shrunk) < scenario_size(self.original)


def _renumber_without(s: Scenario, gone: int) -> Scenario:
    """Drop process ``gone`` from the system and close ranks (n - 1).

    Fault clauses for the removed pid vanish; higher pids shift down by
    one everywhere they appear (clauses, partition groups, victims).
    """

    def m(pid: int) -> int:
        return pid - 1 if pid > gone else pid

    faults = tuple(
        replace(c, pid=m(c.pid)) for c in s.faults if c.pid != gone
    )
    schedule = []
    for w in s.schedule:
        groups = tuple(
            tuple(sorted(m(p) for p in g if p != gone))
            for g in w.groups
        )
        groups = tuple(g for g in groups if g)
        victims = tuple(sorted(m(v) for v in w.victims if v != gone))
        if w.kind == "partition" and len(groups) < 2:
            continue  # partition degenerated; the drop-window pass covers it
        if w.kind == "delay" and not victims:
            continue
        schedule.append(replace(w, groups=groups, victims=victims))
    return replace(s, n=s.n - 1, faults=faults, schedule=tuple(schedule))


def _candidates(s: Scenario) -> Iterator[Scenario]:
    """Structural edits, most aggressive first, all strictly smaller."""
    # 1. Drop whole schedule windows (latest first: late windows are the
    #    most likely to be incidental).
    for i in reversed(range(len(s.schedule))):
        yield replace(s, schedule=s.schedule[:i] + s.schedule[i + 1:])
    # 2. Drop whole fault clauses.
    for i in reversed(range(len(s.faults))):
        yield replace(s, faults=s.faults[:i] + s.faults[i + 1:])
    # 3. Remove one process (prefer removing the highest honest pid, then
    #    the highest faulty one).
    floor = min_system_size(s.algorithm, s.d, s.f)
    if s.n > floor:
        faulty = set(p for c in s.faults for p in (c.pid,))
        honest = [p for p in range(s.n) if p not in faulty]
        order = list(reversed(honest)) + sorted(faulty, reverse=True)
        for gone in order[:2]:
            yield _renumber_without(s, gone)
    # 4. Reduce the dimension.
    if s.d > 1 and s.n >= min_system_size(s.algorithm, s.d - 1, s.f):
        yield replace(s, d=s.d - 1)
    # 5. Reduce f (only when the fault script fits in f - 1).
    if s.f > 1 and len({c.pid for c in s.faults}) <= s.f - 1:
        yield replace(s, f=s.f - 1)
    # 6. Halve schedule windows.
    for i, w in enumerate(s.schedule):
        width = w.end - w.start
        if width > 1:
            smaller = replace(w, end=w.start + width // 2)
            yield replace(s, schedule=s.schedule[:i] + (smaller,) + s.schedule[i + 1:])
    # 7. Simplify clauses: anything exotic becomes silent; shrink params.
    for i, c in enumerate(s.faults):
        if c.kind not in ("silent", "honest"):
            simpler = replace(c, kind="silent", param=1.0)
            yield replace(s, faults=s.faults[:i] + (simpler,) + s.faults[i + 1:])
        if c.end is None and c.start > 0:
            yield replace(
                s, faults=s.faults[:i] + (replace(c, start=0),) + s.faults[i + 1:]
            )


def _violates(
    s: Scenario, invariant: str, checkers: Optional[Mapping[str, CheckerFn]]
) -> bool:
    try:
        s.validate()
    except ValueError:
        return False
    result = run_scenario(s, checkers=checkers)
    return invariant in result.violations


def shrink(
    scenario: Scenario,
    *,
    invariant: Optional[str] = None,
    max_attempts: int = 200,
    checkers: Optional[Mapping[str, CheckerFn]] = None,
) -> ShrinkResult:
    """Minimise ``scenario`` while the same invariant keeps failing.

    Parameters
    ----------
    scenario:
        A scenario known (or believed) to violate an invariant.
    invariant:
        The invariant to preserve; by default the first one the original
        scenario violates.  Raises ``ValueError`` when the original does
        not violate anything — shrinking needs a bug to hold on to.
    max_attempts:
        Re-execution budget; greedy passes stop when it runs out.
    """
    scenario.validate()
    first = run_scenario(scenario, checkers=checkers)
    if first.ok:
        raise ValueError(
            "scenario violates no invariant; nothing to shrink "
            "(did you mean to pass inject=... or a different seed?)"
        )
    target = invariant if invariant is not None else first.invariant
    assert target is not None
    if target not in first.violations:
        raise ValueError(
            f"scenario does not violate {target!r} "
            f"(it violates {sorted(first.violations)})"
        )

    current = scenario
    attempts = 0
    accepted = 0
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            if _violates(candidate, target, checkers):
                current = candidate
                accepted += 1
                progress = True
                break  # restart the pass from the smaller scenario
    return ShrinkResult(
        original=scenario,
        shrunk=current,
        invariant=target,
        attempts=attempts,
        accepted=accepted,
    )
