"""Deterministic simulation testing (DST) for the consensus stack.

FoundationDB-style discipline applied to the paper's algorithms: every
adversarial execution is a plain-data :class:`Scenario` (who is
Byzantine, doing what, when; how the async schedule misbehaves), every
run is deterministic in the scenario alone, and every invariant
violation becomes a one-command, minimized, committed regression test.

The loop (see ``docs/fuzzing.md``):

1. **fuzz** — :func:`explore` samples scenarios and checks the
   agreement/validity/termination invariants on each run;
2. **shrink** — :func:`shrink` greedily minimises a violating scenario
   while re-running to confirm the same invariant still breaks;
3. **replay** — :func:`replay` re-executes any scenario or token under
   full tracing/metrics and compares against a committed expectation;
4. **promote** — :func:`save_seed` commits the shrunk scenario to
   ``tests/corpus/`` where the suite replays it forever.
"""

from .corpus import (
    ReplayReport,
    SeedCase,
    decode_token,
    encode_token,
    load_corpus,
    replay,
    save_seed,
)
from .explore import (
    ALGORITHM_NAMES,
    CHECKERS,
    INJECTIONS,
    ExplorationResult,
    Violation,
    explore,
    register_checker,
    run_scenario,
    sample_scenario,
)
from .scenarios import (
    FaultClause,
    Scenario,
    ScenarioPolicy,
    ScheduleWindow,
    ScriptedStrategy,
    build_adversary,
    build_policy,
    min_system_size,
)
from .shrink import ShrinkResult, scenario_size, shrink

__all__ = [
    "ALGORITHM_NAMES",
    "CHECKERS",
    "INJECTIONS",
    "ExplorationResult",
    "FaultClause",
    "ReplayReport",
    "Scenario",
    "ScenarioPolicy",
    "ScheduleWindow",
    "ScriptedStrategy",
    "SeedCase",
    "ShrinkResult",
    "Violation",
    "build_adversary",
    "build_policy",
    "decode_token",
    "encode_token",
    "explore",
    "load_corpus",
    "min_system_size",
    "register_checker",
    "replay",
    "run_scenario",
    "sample_scenario",
    "save_seed",
    "scenario_size",
    "shrink",
]
