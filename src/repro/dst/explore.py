"""Seed-driven scenario explorer: sample, run, check, record.

The explorer is the deterministic-simulation successor of
``repro.analysis.fuzz``: every trial derives one :class:`Scenario` from
the master seed, runs it through the full protocol stack, evaluates the
**checker registry** (agreement / validity / termination by default —
pluggable via :func:`register_checker`), and — when an invariant breaks —
records a :class:`Violation` carrying a compact replay token and a
ready-to-paste replay command.  Because a scenario is plain data, a
violation found here is already a regression test: shrink it
(:mod:`repro.dst.shrink`) and commit it to ``tests/corpus/``
(:mod:`repro.dst.corpus`).

Bug *injections* (:data:`INJECTIONS`) are deliberately broken
post-processing steps — they perturb the decision map after the run, the
way an implementation bug in a decision rule would — used to exercise and
demo the fuzz → shrink → replay loop against a stack whose real
algorithms (correctly) refuse to produce counterexamples.
"""

from __future__ import annotations

import math
import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.problems import agreement_diameter
from ..core.runner import ConsensusOutcome, run
from ..core.runspec import RunSpec
from ..obs.probes import Probe, ProbeReport, build_probes
from .scenarios import (
    FaultClause,
    Scenario,
    ScheduleWindow,
    build_adversary,
    build_policy,
    min_system_size,
)

__all__ = [
    "ALGORITHM_NAMES",
    "AVERAGING_EPSILON",
    "CHECKERS",
    "INJECTIONS",
    "ExplorationResult",
    "Violation",
    "explore",
    "register_checker",
    "run_scenario",
    "sample_scenario",
]

#: The four consensus algorithms under test.
ALGORITHM_NAMES = ("exact", "algo", "k1", "averaging")

#: ε-agreement target used for the asynchronous algorithm in exploration
#: (matches the legacy fuzz harness's run_averaging epsilon).
AVERAGING_EPSILON = 5e-2


def _run_for(
    scenario: Scenario, probes: Sequence[Probe] = ()
) -> ConsensusOutcome:
    inputs = scenario.inputs()
    adversary = build_adversary(scenario)
    if scenario.algorithm == "averaging":
        return run(RunSpec(
            algorithm="averaging",
            inputs=inputs,
            f=scenario.f,
            adversary=adversary,
            epsilon=AVERAGING_EPSILON,
            policy=build_policy(scenario),
            seed=scenario.seed,
            probes=tuple(probes),
        ))
    # The explorer's "k1" is k-relaxed consensus at k=1.
    algorithm = "krelaxed" if scenario.algorithm == "k1" else scenario.algorithm
    return run(RunSpec(
        algorithm=algorithm,
        inputs=inputs,
        f=scenario.f,
        adversary=adversary,
        seed=scenario.seed,
        probes=tuple(probes),
    ))


def _scenario_probes(scenario: Scenario, names: Sequence[str]) -> list[Probe]:
    """Build probe *objects* for a scenario (we keep the references so the
    post-injection decision map can be pushed back through them)."""
    algorithm = "krelaxed" if scenario.algorithm == "k1" else scenario.algorithm
    return build_probes(
        list(names),
        algorithm=algorithm,
        k=1,
        epsilon=AVERAGING_EPSILON if algorithm == "averaging" else None,
    )


# ---------------------------------------------------------------------------
# checker registry
# ---------------------------------------------------------------------------

#: A checker inspects one finished run and returns a human-readable
#: violation detail, or None when its invariant holds.  ``decisions`` is
#: the (possibly injection-perturbed) correct-process decision map the
#: invariants are evaluated on.
CheckerFn = Callable[
    [Scenario, ConsensusOutcome, Mapping[int, np.ndarray]], Optional[str]
]

CHECKERS: dict[str, CheckerFn] = {}


def register_checker(name: str) -> Callable[[CheckerFn], CheckerFn]:
    """Decorator: add an invariant checker under ``name``."""

    def deco(fn: CheckerFn) -> CheckerFn:
        CHECKERS[name] = fn
        return fn

    return deco


@register_checker("agreement")
def _check_agreement(
    scenario: Scenario,
    outcome: ConsensusOutcome,
    decisions: Mapping[int, np.ndarray],
) -> Optional[str]:
    tol = AVERAGING_EPSILON + 1e-9 if scenario.algorithm == "averaging" else 1e-9
    diam = agreement_diameter(decisions)
    if diam > tol:
        return f"decision diameter {diam:.6g} exceeds {tol:.6g}"
    if not outcome.report.agreement_ok:
        return f"checker reported diameter {outcome.report.agreement_diameter:.6g}"
    return None


@register_checker("validity")
def _check_validity(
    scenario: Scenario,
    outcome: ConsensusOutcome,
    decisions: Mapping[int, np.ndarray],
) -> Optional[str]:
    if outcome.report.validity_ok:
        return None
    worst = max(outcome.report.violations.values(), default=0.0)
    return f"{len(outcome.report.violations)} decisions outside the valid set (worst {worst:.6g})"


@register_checker("termination")
def _check_termination(
    scenario: Scenario,
    outcome: ConsensusOutcome,
    decisions: Mapping[int, np.ndarray],
) -> Optional[str]:
    if outcome.report.termination_ok:
        return None
    return f"run ended after {outcome.result.rounds} rounds/steps without all correct decisions"


# ---------------------------------------------------------------------------
# bug injections (demo/test instrumentation)
# ---------------------------------------------------------------------------

#: name -> fn(decisions, scenario) -> perturbed decisions (a copy).
INJECTIONS: dict[
    str, Callable[[dict[int, np.ndarray], Scenario], dict[int, np.ndarray]]
] = {}


InjectionFn = Callable[[dict[int, np.ndarray], Scenario], dict[int, np.ndarray]]


def _register_injection(name: str) -> Callable[[InjectionFn], InjectionFn]:
    def deco(fn: InjectionFn) -> InjectionFn:
        INJECTIONS[name] = fn
        return fn

    return deco


@_register_injection("split-brain")
def _inject_split_brain(
    decisions: dict[int, np.ndarray], scenario: Scenario
) -> dict[int, np.ndarray]:
    """One process 'decides' an offset value — a broken decision rule."""
    out = {pid: np.array(v, dtype=float, copy=True) for pid, v in decisions.items()}
    if out:
        pid = min(out)
        out[pid] = out[pid] + 10.0 * scenario.input_scale
    return out


@_register_injection("stale-echo")
def _inject_stale_echo(
    decisions: dict[int, np.ndarray], scenario: Scenario
) -> dict[int, np.ndarray]:
    """Two processes swap halves of their decisions — a buffer-reuse bug."""
    out = {pid: np.array(v, dtype=float, copy=True) for pid, v in decisions.items()}
    pids = sorted(out)
    if len(pids) >= 2:
        a, b = pids[0], pids[1]
        half = max(1, scenario.d // 2)
        out[a][:half], out[b][:half] = out[b][:half].copy(), out[a][:half].copy()
        out[a][:half] += scenario.input_scale
    return out


# ---------------------------------------------------------------------------
# running + recording
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExplorationResult:
    """One executed scenario with its verdicts."""

    scenario: Scenario
    outcome: ConsensusOutcome
    #: checker name -> violation detail, for every checker that failed.
    violations: dict[str, str]
    #: online probe reports (empty unless ``run_scenario(..., probes=...)``),
    #: re-generated after any injection so injected decisions count.
    probe_reports: tuple[ProbeReport, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def probe_violations(self) -> int:
        """Total online probe violations (including post-injection checks)."""
        return sum(len(r.violations) for r in self.probe_reports)

    @property
    def invariant(self) -> Optional[str]:
        """First violated invariant in registry order (None when ok)."""
        for name in CHECKERS:
            if name in self.violations:
                return name
        return next(iter(self.violations), None)


@dataclass(frozen=True)
class Violation:
    """An invariant violation, replayable from its token alone."""

    scenario: Scenario
    invariant: str
    detail: str
    token: str
    agreement_ok: bool
    validity_ok: bool
    termination_ok: bool

    @property
    def replay_command(self) -> str:
        """Ready-to-paste CLI command reproducing this violation."""
        return f"python -m repro replay --token {self.token}"

    @property
    def shrink_command(self) -> str:
        return f"python -m repro shrink --token {self.token}"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        s = self.scenario
        return (
            f"[{s.algorithm}] {self.invariant}: {self.detail} "
            f"(n={s.n} d={s.d} f={s.f} seed={s.seed} "
            f"faults={s.strategy_label()})\n  replay: {self.replay_command}"
        )


def run_scenario(
    scenario: Scenario,
    *,
    checkers: Optional[Mapping[str, CheckerFn]] = None,
    probes: Sequence[Union[str, Probe]] = (),
) -> ExplorationResult:
    """Execute one scenario and evaluate every registered invariant.

    ``probes`` enables online invariant probes for the run: names from
    :data:`repro.obs.probes.PROBE_NAMES` (or ``"all"``), or pre-built
    :class:`~repro.obs.probes.Probe` objects.  After any bug injection
    the perturbed decision map is pushed back through every probe
    (``check_decisions``), so an injected split-brain shows up as an
    online ``agreement`` probe violation, not only as a checker verdict.
    """
    scenario.validate()
    probe_objs: list[Probe] = []
    if probes:
        probe_objs = [p for p in probes if not isinstance(p, str)]
        probe_objs += _scenario_probes(
            scenario, [p for p in probes if isinstance(p, str)]
        )
    outcome = _run_for(scenario, probe_objs)
    decisions: Mapping[int, np.ndarray] = outcome.decisions
    if scenario.inject is not None:
        if scenario.inject not in INJECTIONS:
            raise ValueError(
                f"unknown injection {scenario.inject!r}; choices {sorted(INJECTIONS)}"
            )
        decisions = INJECTIONS[scenario.inject](dict(decisions), scenario)
        for probe in probe_objs:
            probe.check_decisions(
                decisions, outcome.honest_inputs,
                time=int(outcome.result.rounds),
            )
    active = dict(checkers) if checkers is not None else CHECKERS
    violations = {}
    for name, fn in active.items():
        detail = fn(scenario, outcome, decisions)
        if detail is not None:
            violations[name] = detail
    return ExplorationResult(
        scenario=scenario, outcome=outcome, violations=violations,
        probe_reports=tuple(probe.report() for probe in probe_objs),
    )


def violation_from(result: ExplorationResult) -> Violation:
    """Package a failed run as a :class:`Violation` (token included)."""
    from .corpus import encode_token  # local import: corpus imports explore

    assert result.violations, "no invariant violated"
    invariant = result.invariant
    report = result.outcome.report
    return Violation(
        scenario=result.scenario,
        invariant=invariant or "unknown",
        detail=result.violations.get(invariant or "", ""),
        token=encode_token(result.scenario),
        agreement_ok="agreement" not in result.violations and report.agreement_ok,
        validity_ok="validity" not in result.violations and report.validity_ok,
        termination_ok="termination" not in result.violations
        and report.termination_ok,
    )


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------


def _sample_shape(rng: np.random.Generator, algorithm: str) -> tuple[int, int, int]:
    """Sample a legal (n, d, f), biased toward the resilience boundary."""
    f = 1
    if algorithm == "exact":
        d = int(rng.integers(1, 4))
    elif algorithm in ("algo", "averaging"):
        d = int(rng.integers(2, 5))
    else:  # k1
        d = int(rng.integers(1, 6))
    n = min_system_size(algorithm, d, f) + int(rng.integers(0, 2))
    return n, d, f


def _sample_faults(
    rng: np.random.Generator, n: int, f: int, horizon: int
) -> tuple[FaultClause, ...]:
    """Sample a fault script: corrupt set + windowed, possibly switching kinds."""
    count = int(rng.integers(0, f + 1))
    pids = sorted(rng.choice(n, size=count, replace=False).tolist())
    clauses: list[FaultClause] = []
    kinds = ("silent", "mutate", "equivocate", "duplicate", "drop", "honest")
    for pid in pids:
        segments = int(rng.integers(1, 3))
        start = 0
        for i in range(segments):
            kind = str(rng.choice(kinds))
            if kind == "drop":
                param = float(rng.uniform(0.2, 1.0))
            elif kind == "duplicate":
                param = float(rng.integers(2, 4))
            else:
                param = float(rng.uniform(0.5, 100.0))
            last = i == segments - 1
            end = None if last else int(start + rng.integers(1, max(2, horizon // 2)))
            clauses.append(
                FaultClause(pid=pid, kind=kind, start=start, end=end, param=param)
            )
            start = end if end is not None else start
    return tuple(clauses)


def _sample_schedule(
    rng: np.random.Generator, n: int
) -> tuple[ScheduleWindow, ...]:
    """Sample 0-2 delivery windows for an async run."""
    windows: list[ScheduleWindow] = []
    for _ in range(int(rng.integers(0, 3))):
        kind = str(rng.choice(("partition", "delay", "fifo", "reorder")))
        start = int(rng.integers(0, 200))
        end = start + int(rng.integers(20, 400))
        if kind == "partition":
            cut = int(rng.integers(1, n))
            perm = rng.permutation(n).tolist()
            groups = (tuple(sorted(perm[:cut])), tuple(sorted(perm[cut:])))
            windows.append(
                ScheduleWindow(kind=kind, start=start, end=end, groups=groups)
            )
        elif kind == "delay":
            k = int(rng.integers(1, max(2, n // 2)))
            victims = tuple(sorted(rng.choice(n, size=k, replace=False).tolist()))
            windows.append(
                ScheduleWindow(kind=kind, start=start, end=end, victims=victims)
            )
        else:
            windows.append(ScheduleWindow(kind=kind, start=start, end=end))
    return tuple(windows)


def sample_scenario(
    rng: np.random.Generator,
    algorithm: str,
    *,
    seed: Optional[int] = None,
    input_scale: float = 3.0,
    inject: Optional[str] = None,
) -> Scenario:
    """Draw one random scenario for ``algorithm`` from ``rng``."""
    if algorithm not in ALGORITHM_NAMES:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choices {sorted(ALGORITHM_NAMES)}"
        )
    n, d, f = _sample_shape(rng, algorithm)
    # Sync runs live for tens of rounds; async clocks tick per activation.
    horizon = 8 if algorithm != "averaging" else 40
    faults = _sample_faults(rng, n, f, horizon)
    schedule = _sample_schedule(rng, n) if algorithm == "averaging" else ()
    scen = Scenario(
        algorithm=algorithm,
        n=n,
        d=d,
        f=f,
        seed=int(seed if seed is not None else rng.integers(0, 2**31 - 1)),
        input_scale=input_scale,
        faults=faults,
        schedule=schedule,
        inject=inject,
    )
    scen.validate()
    return scen


#: Per-worker checker override, installed by the pool initializer (custom
#: checkers would otherwise have to ride along with every pickled trial).
_WORKER_CHECKERS: Optional[dict[str, CheckerFn]] = None


def _worker_init(checkers: Optional[dict[str, CheckerFn]]) -> None:
    global _WORKER_CHECKERS
    _WORKER_CHECKERS = checkers


def _explore_trial(
    item: tuple[int, Scenario],
) -> tuple[int, Optional[Violation]]:
    """Pool work unit: run one pre-sampled scenario, keep its index."""
    index, scenario = item
    result = run_scenario(scenario, checkers=_WORKER_CHECKERS)
    return index, (None if result.ok else violation_from(result))


def explore(
    algorithm: str,
    trials: int = 50,
    seed: int = 0,
    *,
    input_scale: float = 3.0,
    inject: Optional[str] = None,
    stop_on_first: bool = False,
    checkers: Optional[Mapping[str, CheckerFn]] = None,
    workers: int = 1,
) -> list[Violation]:
    """Run ``trials`` sampled scenarios; return every invariant violation.

    Deterministic in ``(algorithm, trials, seed, input_scale, inject)``:
    trial *t* always runs the same scenario, and each violation's token
    replays independently of the sweep that found it.  ``workers > 1``
    fans the trials over a process pool: the master RNG is consumed
    entirely by (serial) scenario sampling before any trial runs, and
    violations are re-ordered by trial index, so the violation list is
    identical to a serial sweep's regardless of worker count.  With
    ``stop_on_first`` a parallel sweep still runs every trial but
    returns only the first violation in trial order.

    Custom ``checkers`` reach pool workers through the pool initializer,
    which requires the ``fork`` start method: under ``spawn`` the
    initargs are pickled, and checker callables (lambdas, local
    functions) generally are not picklable.  On platforms without fork,
    ``workers > 1`` with custom checkers therefore falls back to the
    serial path with a :class:`RuntimeWarning` rather than crashing the
    pool.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    master = np.random.default_rng(seed)
    scenarios = [
        sample_scenario(master, algorithm, input_scale=input_scale,
                        inject=inject)
        for _ in range(trials)
    ]
    methods = multiprocessing.get_all_start_methods()
    serial = workers == 1 or trials == 1
    if not serial and checkers is not None and "fork" not in methods:
        warnings.warn(
            "parallel explore with custom checkers requires the 'fork' "
            "start method (spawn pickles pool initargs, and checker "
            "callables are generally not picklable); running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        serial = True
    if serial:
        violations: list[Violation] = []
        for scenario in scenarios:
            result = run_scenario(scenario, checkers=checkers)
            if not result.ok:
                violations.append(violation_from(result))
                if stop_on_first:
                    break
        return violations
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    chunksize = max(1, math.ceil(trials / (workers * 4)))
    init_checkers = dict(checkers) if checkers is not None else None
    with ctx.Pool(processes=workers, initializer=_worker_init,
                  initargs=(init_checkers,)) as pool:
        pairs = list(pool.imap_unordered(
            _explore_trial, list(enumerate(scenarios)), chunksize=chunksize
        ))
    pairs.sort(key=lambda pair: pair[0])
    found = [violation for _, violation in pairs if violation is not None]
    return found[:1] if (stop_on_first and found) else found
