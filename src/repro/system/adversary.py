"""Byzantine adversaries.

A Byzantine process "may behave arbitrarily".  Two complementary ways to
express that here:

1. **Traffic transformation** — the faulty process runs the *correct*
   protocol logic, but a :class:`ByzantineStrategy` intercepts its outgoing
   messages and may drop, mutate, duplicate, or equivocate them (and inject
   wholly forged ones).  This covers crash faults, lying, and equivocation
   without re-implementing any protocol.
2. **Process replacement** — for fully custom behaviour (e.g. the
   adversaries in the impossibility proofs), the faulty id is given a
   bespoke process object via ``custom_processes``.

The proofs of Theorems 3 and 5 restrict the faulty process to "correctly
follow any specified algorithm" — that is :class:`HonestStrategy` plus an
adversarially chosen *input*, which the caller controls anyway.

The adversary is **rushing** in the synchronous model: the scheduler runs
all correct processes' round handlers first and exposes their outgoing
round-``r`` messages to the strategies before the faulty round-``r``
messages are fixed.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Optional, Sequence

import numpy as np

from .messages import Message

__all__ = [
    "AdversaryView",
    "ByzantineStrategy",
    "HonestStrategy",
    "SilentStrategy",
    "CrashStrategy",
    "MutateStrategy",
    "EquivocateStrategy",
    "DuplicateStrategy",
    "Adversary",
]


@dataclass
class AdversaryView:
    """What a strategy can see when transforming a faulty process's traffic.

    Attributes
    ----------
    round:
        Current synchronous round (None in asynchronous executions).
    n, f:
        System parameters.
    rng:
        Seeded generator dedicated to the adversary (reproducible runs).
    correct_outbox:
        In synchronous executions, the messages the *correct* processes
        queued this round — the rushing adversary reads them before
        committing its own.  Empty in asynchronous executions.
    sign:
        Signing capability restricted to the faulty ids (None when the
        protocol is unauthenticated).
    """

    round: Optional[int]
    n: int
    f: int
    rng: np.random.Generator
    correct_outbox: Sequence[Message] = field(default_factory=tuple)
    sign: Optional[Callable[[int, Any], Any]] = None


class ByzantineStrategy(ABC):
    """Transforms the outgoing traffic of one faulty process."""

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        """Map one legitimate outgoing message to the messages actually sent.

        Return ``[msg]`` to behave honestly for this message, ``[]`` to
        drop it, or any list of replacements (destinations may differ —
        that is equivocation).
        """
        return [msg]

    def inject(self, pid: int, view: AdversaryView) -> list[Message]:
        """Extra forged messages from ``pid``, once per round/activation."""
        return []


class HonestStrategy(ByzantineStrategy):
    """Faulty but obedient: follows the algorithm exactly.

    This is the adversary of the necessity proofs ("the faulty process
    correctly follows any specified algorithm"); its power lies purely in
    its input value.
    """


class SilentStrategy(ByzantineStrategy):
    """Sends nothing, ever (a crash before the first send)."""

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        return []


class CrashStrategy(ByzantineStrategy):
    """Crashes at a given round: sends normally before, nothing after.

    In the crash round itself an optional subset of destinations still
    receives the message — modelling a crash mid-broadcast, the classic
    hard case for agreement protocols.
    """

    def __init__(self, crash_round: int, partial_recipients: Optional[set[int]] = None):
        self.crash_round = int(crash_round)
        self.partial_recipients = partial_recipients

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        r = view.round if view.round is not None else self.crash_round
        if r < self.crash_round:
            return [msg]
        if r == self.crash_round and self.partial_recipients is not None:
            return [msg] if msg.dst in self.partial_recipients else []
        return []


class MutateStrategy(ByzantineStrategy):
    """Applies a payload mutator to every outgoing message.

    ``mutator(tag, payload, rng)`` returns the replacement payload, or
    None to drop the message.  The same mutation goes to every recipient —
    a *consistent* liar.
    """

    def __init__(self, mutator: Callable[[str, Any, np.random.Generator], Any]):
        self.mutator = mutator

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        new_payload = self.mutator(msg.tag, msg.payload, view.rng)
        if new_payload is None:
            return []
        return [replace(msg, payload=new_payload)]


class EquivocateStrategy(ByzantineStrategy):
    """Sends *different* payloads to different recipients.

    ``mutator(tag, payload, dst, rng)`` returns the payload for that
    destination (None drops it).  Equivocation is the canonical Byzantine
    attack against broadcast; Bracha/Dolev–Strong exist to defeat it.
    """

    def __init__(self, mutator: Callable[[str, Any, int, np.random.Generator], Any]):
        self.mutator = mutator

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        new_payload = self.mutator(msg.tag, msg.payload, msg.dst, view.rng)
        if new_payload is None:
            return []
        return [replace(msg, payload=new_payload)]


class DuplicateStrategy(ByzantineStrategy):
    """Sends every message ``k`` times (stress-tests dedup logic)."""

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = int(k)

    def transform(self, msg: Message, view: AdversaryView) -> list[Message]:
        return [msg] * self.k


class Adversary:
    """The fault pattern of one execution.

    Parameters
    ----------
    faulty:
        Ids of the Byzantine processes (at most ``f`` of them — validated
        by the scheduler).
    strategy:
        Default strategy applied to every faulty process.
    strategies:
        Per-process overrides.
    custom_processes:
        Map pid -> process instance replacing the protocol logic entirely
        (the instance must match the scheduler's process model).
    """

    def __init__(
        self,
        faulty: Sequence[int] = (),
        strategy: Optional[ByzantineStrategy] = None,
        strategies: Optional[Mapping[int, ByzantineStrategy]] = None,
        custom_processes: Optional[Mapping[int, Any]] = None,
    ):
        self.faulty = frozenset(int(p) for p in faulty)
        self._default = strategy or HonestStrategy()
        self._overrides = dict(strategies or {})
        self.custom_processes = dict(custom_processes or {})
        unknown = set(self._overrides) - self.faulty
        if unknown:
            raise ValueError(f"strategy overrides for non-faulty processes: {unknown}")
        unknown = set(self.custom_processes) - self.faulty
        if unknown:
            raise ValueError(f"custom processes for non-faulty ids: {unknown}")

    def is_faulty(self, pid: int) -> bool:
        return pid in self.faulty

    def strategy_for(self, pid: int) -> ByzantineStrategy:
        if pid not in self.faulty:
            raise ValueError(f"process {pid} is not faulty")
        return self._overrides.get(pid, self._default)

    def transform_outbox(
        self, pid: int, outbox: Sequence[Message], view: AdversaryView
    ) -> list[Message]:
        """Apply the process's strategy to its queued messages + injections."""
        strat = self.strategy_for(pid)
        out: list[Message] = []
        for msg in outbox:
            replacements = strat.transform(msg, view)
            if msg.is_atomic_broadcast:
                # Broadcast-channel model (paper footnote 3): a Byzantine
                # sender may alter or drop an atomic broadcast, but cannot
                # split it into per-receiver versions.
                bad = [r for r in replacements if not r.is_atomic_broadcast]
                if bad:
                    raise ValueError(
                        f"strategy for {pid} tried to de-atomise a broadcast-"
                        f"channel message into point-to-point sends: {bad[0]!r}"
                    )
            out.extend(replacements)
        out.extend(strat.inject(pid, view))
        for msg in out:
            if msg.src != pid:
                raise ValueError(
                    f"strategy for {pid} forged a message from {msg.src}; "
                    "spoofed sender ids are prevented by the channel model"
                )
        return out

    @staticmethod
    def none() -> "Adversary":
        """The failure-free adversary."""
        return Adversary(faulty=())
