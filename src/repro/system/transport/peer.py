"""One outgoing peer link: dial, handshake, retransmit, backpressure.

Each live node keeps one :class:`PeerLink` per remote peer.  The link
owns a bounded send queue and a writer task:

* **Handshake** — on every (re)connect the dialer sends its HELLO
  (node id, wire version, instance id) and waits for the listener's
  HELLO back; the connection then runs at the *negotiated* wire version
  (newest both sides speak — :func:`repro.system.transport.wire.negotiate`),
  so a version-1 peer still interoperates, it just never sees causal
  stamps.  An unsupported version or wrong instance permanently fails
  the link (such a peer will never become right).
* **Reconnect** — connection refusal or loss triggers capped exponential
  backoff (``delay = min(base * 2**attempt, cap)``); the attempt counter
  resets after a successful handshake.  The frame being written when the
  connection died is retransmitted first — frames are only dropped from
  the queue after a successful ``drain()``.  The receiver deduplicates
  by the per-link sequence number, so retransmission is exactly-once at
  the protocol layer.
* **Backpressure** — ``send()`` awaits when the queue holds
  ``queue_limit`` frames, propagating slowness to the producing
  protocol loop instead of buffering without bound.

The queue holds *records* (plain tuples), not encoded bytes: encoding
happens at write time, once the connection's negotiated version is
known.  Payload safety is unchanged — record builders defensively copy
payloads at enqueue time.

Timings use the event loop's monotonic clock only (never the wall
clock), and the backoff schedule is a fixed deterministic ramp — links
carry no randomness of their own.

Beyond the six link counters, each link records transport telemetry the
node folds into its registry: bytes written (``bytes_sent``), the
deepest the send queue ever got (``queue_depth_peak``), and per-frame
queue-wait times (``queue_wait_samples``, seconds from enqueue to first
write attempt — exported as the ``net.live.queue_wait_us`` histogram).
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Awaitable, Callable, Optional

from . import wire

__all__ = ["LinkStats", "PeerLink"]

#: (reader, writer) pair as returned by asyncio.open_connection.
Dialer = Callable[[], Awaitable[tuple[Any, Any]]]


class LinkStats:
    """Counters and samples one link maintains.

    The fields named in :data:`COUNTER_FIELDS` are plain monotonic
    counters — :meth:`as_dict` exposes exactly those, and the node sums
    them across links into ``net.live.*`` counters.  ``queue_depth_peak``
    and ``queue_wait_samples`` are *not* counters (a peak maxes, samples
    concatenate) and are folded explicitly.
    """

    COUNTER_FIELDS = (
        "frames_sent",
        "retransmits",
        "reconnects",
        "handshakes",
        "backpressure_waits",
        "chaos_closes",
        "bytes_sent",
    )

    __slots__ = COUNTER_FIELDS + ("queue_depth_peak", "queue_wait_samples")

    def __init__(self) -> None:
        self.frames_sent = 0
        self.retransmits = 0
        self.reconnects = 0
        self.handshakes = 0
        self.backpressure_waits = 0
        self.chaos_closes = 0
        self.bytes_sent = 0
        self.queue_depth_peak = 0
        self.queue_wait_samples: list[float] = []

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.COUNTER_FIELDS}


class PeerLink:
    """Reliable, ordered, deduplicatable frame stream to one peer."""

    def __init__(
        self,
        self_id: int,
        peer_id: int,
        dial: Dialer,
        *,
        instance: str,
        queue_limit: int = 256,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_dial_failures: int = 120,
        drain_grace: float = 5.0,
        chaos_close_after: Optional[int] = None,
    ) -> None:
        self.self_id = int(self_id)
        self.peer_id = int(peer_id)
        self.dial = dial
        self.instance = str(instance)
        self.queue_limit = int(queue_limit)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.max_dial_failures = int(max_dial_failures)
        #: How long a *disconnected* writer keeps redialling after
        #: close() while frames are still undelivered.  Without the
        #: grace, a node exiting during a peer's reconnect window could
        #: abandon its queued DECIDED announcement and leave that peer
        #: waiting forever.
        self.drain_grace = float(drain_grace)
        #: After this many successfully written frames, the link aborts
        #: its own socket once — the fault-injection hook the reconnect
        #: tests (and the disconnect-survival acceptance run) flip on.
        self.chaos_close_after = chaos_close_after
        self.stats = LinkStats()
        #: The version this connection runs at, set by each handshake
        #: (stays at our newest until a peer negotiates it down).
        self.wire_version = wire.WIRE_VERSION
        self._queue: asyncio.Queue[Optional[tuple[tuple, float]]] = (
            asyncio.Queue(maxsize=self.queue_limit)
        )
        self._next_seq = 0
        self._writer_task: Optional[asyncio.Task[None]] = None
        self._failure: Optional[BaseException] = None
        self._closed = False
        self._closing = asyncio.Event()
        self._close_deadline: Optional[float] = None

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn the writer task (idempotent)."""
        if self._writer_task is None:
            self._writer_task = asyncio.get_running_loop().create_task(
                self._writer_loop(), name=f"peerlink-{self.self_id}->{self.peer_id}"
            )

    async def close(self) -> None:
        """Flush nothing further; stop the writer after the queue drains.

        A *connected* writer drains the queue before exiting.  A writer
        stuck in the dial/backoff path with nothing left to deliver
        returns immediately: the peer it is redialling has typically
        exited for good (the cluster is past its decision), so waiting
        out the full reconnect ramp would stall teardown for minutes.
        If frames *are* still undelivered — e.g. a DECIDED announcement
        queued while the connection was down — the writer keeps
        redialling for ``drain_grace`` seconds before giving up, so the
        last frames of a run are not silently dropped.
        """
        if self._closed:
            return
        self._closed = True
        self._closing.set()
        await self._queue.put(None)
        if self._writer_task is not None:
            try:
                await self._writer_task
            except asyncio.CancelledError:
                pass

    def abort(self) -> None:
        """Tear the link down immediately (run teardown path)."""
        self._closed = True
        if self._writer_task is not None:
            self._writer_task.cancel()

    @property
    def failed(self) -> Optional[BaseException]:
        """The permanent failure that killed this link, if any."""
        return self._failure

    # ------------------------------------------------------------- sending
    def next_seq(self) -> int:
        """Allocate the next per-link sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    async def send_message(self, msg: Any, stamp: Optional[tuple] = None) -> None:
        """Queue one protocol message, optionally with its causal stamp
        (dropped automatically on connections negotiated down to v1)."""
        await self._put(wire.message_record(msg, self.next_seq(), stamp))

    async def send_round(self, round: int, decided: bool) -> None:
        await self._put((wire.ROUND, self.next_seq(), int(round), bool(decided)))

    async def send_decided(self) -> None:
        await self._put((wire.DECIDED, self.next_seq(), self.self_id))

    async def _put(self, record: tuple) -> None:
        if self._failure is not None:
            raise wire.WireError(
                f"link to node {self.peer_id} failed permanently: "
                f"{self._failure}"
            ) from self._failure
        if self._queue.full():
            self.stats.backpressure_waits += 1
        await self._queue.put(
            (record, asyncio.get_running_loop().time())
        )
        depth = self._queue.qsize()
        if depth > self.stats.queue_depth_peak:
            self.stats.queue_depth_peak = depth

    # -------------------------------------------------------- writer task
    async def _writer_loop(self) -> None:
        loop = asyncio.get_running_loop()
        attempt = 0
        pending: Optional[tuple] = None
        frames_written = 0
        chaos_armed = self.chaos_close_after is not None
        while True:
            try:
                reader, writer = await self.dial()
            except (ConnectionError, OSError):
                attempt += 1
                if attempt > self.max_dial_failures:
                    self._failure = ConnectionError(
                        f"node {self.peer_id} unreachable after "
                        f"{attempt - 1} attempts"
                    )
                    return
                if await self._backoff_or_closing(attempt, pending):
                    return
                continue
            try:
                await self._handshake(reader, writer)
            except (wire.WireError, ConnectionError, OSError, EOFError) as exc:
                writer.close()
                if isinstance(exc, wire.WireError):
                    self._failure = exc  # wrong version/instance: permanent
                    return
                attempt += 1
                if attempt > self.max_dial_failures:
                    # A peer that accepts but never completes the
                    # handshake counts against the same budget as one
                    # that refuses outright.
                    self._failure = ConnectionError(
                        f"node {self.peer_id} never completed a handshake "
                        f"in {attempt - 1} attempts"
                    )
                    return
                if await self._backoff_or_closing(attempt, pending):
                    return
                continue
            if self.stats.handshakes:
                self.stats.reconnects += 1
            attempt = 0
            self.stats.handshakes += 1
            try:
                while True:
                    if pending is None:
                        item = await self._queue.get()
                        if item is None:
                            writer.close()
                            try:
                                await writer.wait_closed()
                            except (ConnectionError, OSError):
                                pass
                            return
                        pending, enqueued_at = item
                        self.stats.queue_wait_samples.append(
                            max(0.0, loop.time() - enqueued_at)
                        )
                    else:
                        # First iteration after a reconnect: the frame in
                        # flight when the connection died goes out again.
                        self.stats.retransmits += 1
                    if chaos_armed and frames_written >= int(
                        self.chaos_close_after or 0
                    ):
                        # Fault injection: drop the connection (graceful
                        # FIN, so drained frames still arrive) and force
                        # the reconnect path; `pending` rides over it.
                        chaos_armed = False
                        self.stats.chaos_closes += 1
                        writer.close()
                        raise ConnectionResetError("chaos: forced close")
                    frame = wire.encode_for_version(pending, self.wire_version)
                    writer.write(frame)
                    await writer.drain()
                    self.stats.frames_sent += 1
                    self.stats.bytes_sent += len(frame)
                    frames_written += 1
                    pending = None
            except (ConnectionError, OSError, EOFError):
                # Connection died mid-stream: whatever was being written
                # stays in `pending` and goes out first after reconnect.
                writer.close()
                attempt += 1
                if await self._backoff_or_closing(attempt, pending):
                    return

    async def _backoff_or_closing(
        self, attempt: int, pending: Optional[tuple]
    ) -> bool:
        """Back off before the next dial; True if the writer should stop.

        close() interrupts the ramp, but a closing writer that still
        holds undelivered frames (``pending`` or anything queued beyond
        the close() sentinel) keeps redialling until ``drain_grace``
        runs out — dropping the tail of a run (a DECIDED announcement,
        the last round marker) would strand peers that are still
        waiting on it.
        """
        delay = self._backoff(attempt)
        if not self._closing.is_set():
            try:
                await asyncio.wait_for(self._closing.wait(), timeout=delay)
                # close() arrived mid-backoff; fall through to the
                # drain-grace decision below.
            except asyncio.TimeoutError:
                return False
        if pending is None and self._queue.qsize() <= 1:
            # Nothing left but the close() sentinel: stop immediately.
            return True
        loop = asyncio.get_running_loop()
        if self._close_deadline is None:
            self._close_deadline = loop.time() + self.drain_grace
        remaining = self._close_deadline - loop.time()
        if remaining <= 0:
            return True
        await asyncio.sleep(min(delay, remaining))
        return False

    async def _handshake(self, reader: Any, writer: Any) -> None:
        writer.write(wire.encode_hello(self.self_id, self.instance))
        await writer.drain()
        head = await reader.readexactly(4)
        (length,) = struct.unpack("!I", head)
        if length > wire.MAX_FRAME_BYTES:
            raise wire.WireError(f"oversized HELLO frame ({length} bytes)")
        record = wire.decode_body(await reader.readexactly(length))
        if record[0] != wire.HELLO:
            raise wire.WireError(f"expected HELLO, got {record[0]!r}")
        wire.check_hello(
            record, instance=self.instance, expected_id=self.peer_id
        )
        self.wire_version = wire.negotiate(wire.hello_version(record))

    def _backoff(self, attempt: int) -> float:
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)
