"""The deterministic in-process backend: a thin scheduler adapter.

``SimTransport`` constructs :class:`~repro.system.scheduler.SynchronousScheduler`
/ :class:`~repro.system.scheduler.AsyncScheduler` with *exactly* the
arguments the runner historically passed them and runs to completion.
There is deliberately nothing else here: every determinism guarantee in
the tree — DST replay tokens, the sweep ``decisions_digest``,
probes-on/off bit-identity, causal tracing — is a property of the
schedulers, and this adapter preserves it by construction.  The
``rng`` handed in is the run's master generator, already positioned by
the caller; this backend consumes it in the same order the schedulers
always have.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..adversary import Adversary
from ..process import AsyncProcess, SyncProcess
from ..scheduler import (
    AsyncScheduler,
    DeliveryPolicy,
    RunResult,
    SynchronousScheduler,
)
from ..topology import Topology
from ...obs.probes import Probe
from .base import Transport

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """Deterministic simulator backend (the default)."""

    name = "sim"
    deterministic = True

    def run_sync(
        self,
        processes: Sequence[SyncProcess],
        f: int,
        *,
        adversary: Optional[Adversary] = None,
        rng: Optional[np.random.Generator] = None,
        max_rounds: int = 10_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        topology: Optional[Topology] = None,
        probes: Sequence[Probe] = (),
        seed: int = 0,
    ) -> RunResult:
        sched = SynchronousScheduler(
            processes,
            f,
            adversary,
            rng=rng,
            max_rounds=max_rounds,
            sign=sign,
            topology=topology,
            probes=probes,
        )
        return sched.run()

    def run_async(
        self,
        processes: Sequence[AsyncProcess],
        f: int,
        *,
        adversary: Optional[Adversary] = None,
        policy: Optional[DeliveryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        max_steps: int = 1_000_000,
        probes: Sequence[Probe] = (),
        seed: int = 0,
    ) -> RunResult:
        sched = AsyncScheduler(
            processes,
            f,
            adversary,
            policy=policy,
            rng=rng,
            max_steps=max_steps,
            probes=probes,
        )
        return sched.run()
