"""The transport abstraction: one protocol surface, pluggable backends.

A :class:`Transport` executes protocol processes — the same
:class:`~repro.system.process.SyncProcess` / ``AsyncProcess`` objects,
driving the same :class:`~repro.system.process.Context` surface — over
some message-moving substrate and returns the usual
:class:`~repro.system.scheduler.RunResult`.  Two backends ship:

``"sim"``
    :class:`~repro.system.transport.sim.SimTransport` — a thin adapter
    over the in-process :class:`~repro.system.scheduler.SynchronousScheduler`
    / ``AsyncScheduler``.  Deterministic and bit-identical to driving the
    schedulers directly: DST replay, causal tracing, probes, and the
    sweep decision digests all run through it unchanged.

``"live-tcp"`` / ``"live-uds"``
    :class:`~repro.system.transport.live.LiveTransport` — real asyncio
    nodes speaking the length-prefixed wire protocol of
    :mod:`repro.system.transport.wire` over loopback TCP or Unix-domain
    sockets, with peer handshake, reconnect, and per-link backpressure.
    Honest executions only (a live network has no rushing adversary).

Protocol code (``core/``) selects a backend by name through
:func:`get_transport`; the registry is the construction-time validation
surface for ``RunSpec.transport``.  Backends register lazily so that
importing this module stays cheap and cycle-free.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from importlib import import_module
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..adversary import Adversary
    from ..process import AsyncProcess, SyncProcess
    from ..scheduler import DeliveryPolicy, RunResult
    from ..topology import Topology
    from ...obs.probes import Probe

__all__ = [
    "Transport",
    "TransportError",
    "get_transport",
    "register_transport",
    "transport_names",
]


class TransportError(RuntimeError):
    """A transport backend could not execute the requested run."""


class Transport(ABC):
    """One message-moving backend capable of executing protocol processes.

    Implementations receive fully constructed process objects (the
    protocol layer owns process construction — including signature
    schemes and per-algorithm parameters) and drive them to decisions.
    ``rng`` is the run's master generator, already positioned exactly as
    the legacy entry points left it, so the deterministic backend stays
    bit-identical; non-deterministic backends derive per-node seeds from
    ``seed`` instead.
    """

    #: Registry name of this backend (``"sim"``, ``"live-tcp"``, ...).
    name: str = ""
    #: True when two runs of the same spec produce identical decisions.
    deterministic: bool = False

    @abstractmethod
    def run_sync(
        self,
        processes: Sequence["SyncProcess"],
        f: int,
        *,
        adversary: Optional["Adversary"] = None,
        rng: Optional["np.random.Generator"] = None,
        max_rounds: int = 10_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        topology: Optional["Topology"] = None,
        probes: Sequence["Probe"] = (),
        seed: int = 0,
    ) -> "RunResult":
        """Execute lockstep synchronous rounds until decision (or cap)."""

    @abstractmethod
    def run_async(
        self,
        processes: Sequence["AsyncProcess"],
        f: int,
        *,
        adversary: Optional["Adversary"] = None,
        policy: Optional["DeliveryPolicy"] = None,
        rng: Optional["np.random.Generator"] = None,
        max_steps: int = 1_000_000,
        probes: Sequence["Probe"] = (),
        seed: int = 0,
    ) -> "RunResult":
        """Execute event-driven asynchronous delivery until decision."""


#: name -> zero-argument factory returning a ready Transport instance.
_LOADERS: dict[str, Callable[[], Transport]] = {}


def register_transport(name: str, loader: Callable[[], Transport]) -> None:
    """Register a backend factory under ``name`` (idempotent overwrite).

    ``loader`` is called lazily, once per :func:`get_transport` call, so
    registering never imports the backend module.
    """
    _LOADERS[name] = loader


def transport_names() -> tuple[str, ...]:
    """Registered backend names, sorted — ``RunSpec.transport`` choices."""
    return tuple(sorted(_LOADERS))


def get_transport(name: str) -> Transport:
    """Instantiate the backend registered under ``name``.

    Raises ``ValueError`` (not ``KeyError``) on unknown names so callers
    validating user input get a message with the available choices.
    """
    loader = _LOADERS.get(name)
    if loader is None:
        raise ValueError(
            f"unknown transport {name!r}; choices {transport_names()}"
        )
    return loader()


def _lazy(module: str, attr: str, **kwargs: Any) -> Callable[[], Transport]:
    def load() -> Transport:
        backend_cls = getattr(import_module(module), attr)
        backend: Transport = backend_cls(**kwargs)
        return backend

    return load


register_transport("sim", _lazy("repro.system.transport.sim", "SimTransport"))
register_transport(
    "live-tcp", _lazy("repro.system.transport.live", "LiveTransport", kind="tcp")
)
register_transport(
    "live-uds", _lazy("repro.system.transport.live", "LiveTransport", kind="uds")
)
