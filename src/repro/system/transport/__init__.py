"""Transport backends: one protocol surface, sim + live execution.

The public surface is the registry in :mod:`repro.system.transport.base`
— protocol code selects a backend by name (``"sim"``, ``"live-tcp"``,
``"live-uds"``) through :func:`get_transport` and never imports the
backend modules directly.  The wire protocol, peer links, and node
drivers under this package are implementation details of the live
backends.
"""

from .base import (
    Transport,
    TransportError,
    get_transport,
    register_transport,
    transport_names,
)

__all__ = [
    "Transport",
    "TransportError",
    "get_transport",
    "register_transport",
    "transport_names",
]
