"""Length-prefixed, versioned wire protocol for live transports.

Frame layout (everything big-endian)::

    +----------------+----------------------------------------+
    | length: u32    | body: pickled record (length bytes)    |
    +----------------+----------------------------------------+

The body is one *record* — a plain tuple whose first element is the
record type:

``HELLO``
    ``(HELLO, node_id, wire_version, instance_id)`` — exchanged once per
    connection, both directions, before anything else.  The version is
    *negotiated*: each side advertises the newest version it speaks and
    the connection runs at ``min`` of the two (:func:`negotiate`), so a
    version-1 peer can still talk to a version-2 node.  A version
    outside :data:`SUPPORTED_VERSIONS` — or an instance mismatch —
    aborts the connection (:class:`WireError`).
``MSG``
    version 1: ``(MSG, link_seq, src, dst, tag, payload, round)``;
    version 2 appends a *causal stamp*:
    ``(MSG, link_seq, src, dst, tag, payload, round, stamp)`` where
    ``stamp`` is ``(origin_eid, lamport, clock)`` — the sender-local
    event id, Lamport timestamp, and vector clock of the send event —
    or ``None`` when causal tracing is off.  ``link_seq`` is the
    per-link monotonic sequence number used for receiver-side
    deduplication across reconnects.
``ROUND``
    ``(ROUND, link_seq, round, decided)`` — synchronous round barrier
    marker: the sender finished emitting its round-``round`` traffic on
    this link (per-link FIFO makes the marker a happens-after fence).
``DECIDED``
    ``(DECIDED, link_seq, node_id)`` — asynchronous termination marker.

Payloads go through :func:`repro.system.messages.defensive_copy` before
encoding so a sender mutating a queued object can never corrupt an
in-flight frame, and rely on the XPT002 lint contract (payloads are
plain picklable data — no lambdas, processes, contexts, or RNGs).
Pickle protocol 4 matches :func:`~repro.system.messages.canonical_bytes`.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Optional

from ..messages import ALL, Message, defensive_copy

__all__ = [
    "DECIDED",
    "HELLO",
    "MAX_FRAME_BYTES",
    "MSG",
    "ROUND",
    "SUPPORTED_VERSIONS",
    "WIRE_VERSION",
    "WireError",
    "check_hello",
    "decode_body",
    "decode_message",
    "encode_decided",
    "encode_for_version",
    "encode_hello",
    "encode_message",
    "encode_record",
    "encode_round",
    "frame",
    "hello_version",
    "is_atomic",
    "message_record",
    "message_stamp",
    "negotiate",
    "read_frames",
]

#: Newest protocol version this build speaks; advertised in every HELLO.
WIRE_VERSION = 2

#: Every version this build can *run* a connection at.  Version 1 frames
#: carry no causal stamp; version 2 MSG records append one.
SUPPORTED_VERSIONS = (1, 2)

#: Upper bound on one frame body — a corrupt length prefix must not make
#: the receiver allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct("!I")

HELLO = "hello"
MSG = "msg"
ROUND = "round"
DECIDED = "decided"

_RECORD_TYPES = frozenset({HELLO, MSG, ROUND, DECIDED})


class WireError(ValueError):
    """Malformed frame, oversized frame, or handshake mismatch."""


# --------------------------------------------------------------- encoding


def encode_record(record: tuple) -> bytes:
    """Frame one record: length prefix + pickled body."""
    body = pickle.dumps(record, protocol=4)
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap"
        )
    return _LEN.pack(len(body)) + body


def encode_hello(node_id: int, instance: str, version: int = WIRE_VERSION) -> bytes:
    return encode_record((HELLO, int(node_id), int(version), str(instance)))


def message_record(
    msg: Message, link_seq: int, stamp: Optional[tuple] = None
) -> tuple:
    """The (version-2) MSG record for one protocol message.

    The payload is defensively copied *here*, at enqueue time, so a
    sender mutating a queued object can never corrupt the frame a link
    encodes later (links encode at write time, once the connection's
    negotiated version is known).
    """
    return (
        MSG,
        int(link_seq),
        int(msg.src),
        int(msg.dst),
        str(msg.tag),
        defensive_copy(msg.payload),
        msg.round,
        stamp,
    )


def encode_message(
    msg: Message,
    link_seq: int,
    stamp: Optional[tuple] = None,
    version: int = WIRE_VERSION,
) -> bytes:
    """Encode one protocol message; the payload is defensively copied."""
    return encode_for_version(message_record(msg, link_seq, stamp), version)


def encode_round(link_seq: int, round: int, decided: bool) -> bytes:
    return encode_record((ROUND, int(link_seq), int(round), bool(decided)))


def encode_decided(link_seq: int, node_id: int) -> bytes:
    return encode_record((DECIDED, int(link_seq), int(node_id)))


def encode_for_version(record: tuple, version: int) -> bytes:
    """Encode a record at a negotiated wire version.

    Only MSG records differ across versions: version 1 strips the causal
    stamp (a v1 peer would reject the 8-tuple as malformed).
    """
    if record[0] == MSG and int(version) < 2 and len(record) == 8:
        record = record[:7]
    return encode_record(record)


def frame(body: bytes) -> bytes:
    """Attach the length prefix to an already-pickled body (tests)."""
    return _LEN.pack(len(body)) + body


# --------------------------------------------------------------- decoding


def decode_body(body: bytes) -> tuple:
    """Unpickle and structurally validate one frame body."""
    try:
        record = pickle.loads(body)
    except Exception as exc:
        raise WireError(f"undecodable frame body: {exc}") from exc
    if not isinstance(record, tuple) or not record:
        raise WireError(f"frame body is not a record tuple: {record!r}")
    kind = record[0]
    if kind not in _RECORD_TYPES:
        raise WireError(f"unknown record type {kind!r}")
    if kind == HELLO and len(record) != 4:
        raise WireError(f"malformed HELLO record: {record!r}")
    if kind == MSG and len(record) not in (7, 8):
        # 7 = version-1 frame (no stamp), 8 = version-2 frame.
        raise WireError(f"malformed MSG record: {record!r}")
    if kind == ROUND and len(record) != 4:
        raise WireError(f"malformed ROUND record: {record!r}")
    if kind == DECIDED and len(record) != 3:
        raise WireError(f"malformed DECIDED record: {record!r}")
    return record


def decode_message(record: tuple) -> tuple[int, Message]:
    """``(link_seq, Message)`` from a decoded MSG record (either version)."""
    _, link_seq, src, dst, tag, payload, round_ = record[:7]
    return int(link_seq), Message(
        int(src), int(dst), str(tag), payload, round=round_
    )


def message_stamp(record: tuple) -> Optional[tuple]:
    """The ``(origin_eid, lamport, clock)`` causal stamp of a decoded MSG
    record — None for version-1 frames and unstamped version-2 frames."""
    if len(record) < 8 or record[7] is None:
        return None
    origin_eid, lamport, clock = record[7]
    return int(origin_eid), int(lamport), tuple(int(c) for c in clock)


def hello_version(record: tuple) -> int:
    """The wire version a decoded HELLO advertises."""
    return int(record[2])


def negotiate(peer_version: int) -> int:
    """The version a connection runs at: newest both sides speak."""
    return min(WIRE_VERSION, int(peer_version))


def check_hello(
    record: tuple,
    *,
    instance: str,
    expected_id: Optional[int] = None,
) -> int:
    """Validate a decoded HELLO; returns the peer's node id.

    A peer may advertise any member of :data:`SUPPORTED_VERSIONS` (the
    connection then runs at :func:`negotiate` of the two).  Raises
    :class:`WireError` on an unsupported version, instance mismatch, or
    (when ``expected_id`` is given) an unexpected peer identity — the
    connection must be dropped in every case.
    """
    _, node_id, version, peer_instance = record
    if int(version) not in SUPPORTED_VERSIONS:
        raise WireError(
            f"wire version mismatch: peer speaks {version}, "
            f"we speak {SUPPORTED_VERSIONS}"
        )
    if str(peer_instance) != instance:
        raise WireError(
            f"instance mismatch: peer is running {peer_instance!r}, "
            f"we are running {instance!r}"
        )
    if expected_id is not None and int(node_id) != int(expected_id):
        raise WireError(
            f"peer identified as node {node_id}, expected {expected_id}"
        )
    return int(node_id)


def is_atomic(msg: Message) -> bool:
    """True for channel-level broadcast envelopes (``dst == ALL``)."""
    return msg.dst == ALL


async def read_frames(reader: Any) -> Any:
    """Async generator of decoded records from an ``asyncio.StreamReader``.

    Terminates cleanly on EOF or connection loss (a truncated trailing
    frame counts as connection loss — the sender will retransmit it
    after reconnecting); raises :class:`WireError` on oversized frames.
    """
    while True:
        try:
            head = await reader.readexactly(_LEN.size)
        except (EOFError, ConnectionError):
            return
        (length,) = _LEN.unpack(head)
        if length > MAX_FRAME_BYTES:
            raise WireError(
                f"announced frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte cap"
            )
        try:
            body = await reader.readexactly(length)
        except (EOFError, ConnectionError):
            return  # body truncated by connection loss: sender retransmits
        yield decode_body(body)
