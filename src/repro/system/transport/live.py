"""Live backend: real asyncio nodes over loopback TCP or Unix sockets.

Each :class:`LiveNode` owns one protocol process, one listening socket,
and one outgoing :class:`~repro.system.transport.peer.PeerLink` per
peer, and drives the process through the exact same
:class:`~repro.system.process.Context` surface the simulator uses — the
protocol code cannot tell the backends apart.  Execution models:

* **Synchronous** — lockstep rounds over an asynchronous network via
  round-barrier markers: after emitting its round-``r`` traffic a node
  sends ``ROUND(r, decided)`` on every link; per-link FIFO order makes
  the marker a fence, so once every peer's marker for round ``r`` has
  arrived, the full round-``r`` inbox has too, and round ``r + 1`` may
  start.  This preserves the synchronous abstraction ("every message
  sent in round r is delivered at the start of round r+1") without a
  global clock.
* **Asynchronous** — event-driven delivery in real arrival order; a
  node announces ``DECIDED`` once its process decides and stops when
  every peer has announced.

The live backend executes *honest* runs only: the simulator's rushing
adversary, delivery policies, and transcript determinism intrinsically
require the in-process backend (which stays the deterministic one).
Requesting an adversarial live run raises
:class:`~repro.system.transport.base.TransportError`.

Both backends surface the same ``net.*`` metrics; the live one adds
``net.live.*`` counters (handshakes, reconnects, retransmits, dedup
drops, backpressure waits, bytes, wire vs effective frame deliveries)
plus a send-queue wait histogram and depth-peak gauge.

When a :class:`~repro.obs.causal.CausalCollector` is installed
(ambient, per process), every node stamps its sends and deliveries: the
send event's ``(eid, lamport, clock)`` rides on the version-2 MSG frame
and the receiver merges it via ``on_deliver_remote``, so N per-node
trails stitch into one cross-process happens-before graph
(:mod:`repro.obs.fleet`).  With the default null collector all of this
is skipped — the hot path only checks ``collector.enabled``.
"""

from __future__ import annotations

import asyncio
import hashlib
import os
import struct
import tempfile
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ...obs.causal import get_causal_collector
from ...obs.metrics import MetricsRegistry, active_registry
from ...obs.probes import Probe, ProbeView
from ..adversary import Adversary
from ..messages import ALL, Message, canonical_bytes
from ..network import NetworkStats
from ..process import AsyncProcess, Context, SyncProcess
from ..scheduler import RunResult, _fold_network_stats
from ..topology import Topology
from . import wire
from .base import Transport, TransportError
from .peer import LinkStats, PeerLink

__all__ = ["LiveNode", "LiveTransport", "NodeAddress", "node_seeds"]


@dataclass(frozen=True)
class NodeAddress:
    """Where one node listens: loopback TCP or a Unix-domain socket."""

    node_id: int
    kind: str  # "tcp" | "uds"
    host: str = "127.0.0.1"
    port: int = 0
    path: str = ""

    def dialer(self) -> Callable[[], Any]:
        """Zero-argument coroutine factory opening a connection here."""
        if self.kind == "tcp":
            host, port = self.host, self.port

            def dial_tcp() -> Any:
                return asyncio.open_connection(host, port)

            return dial_tcp
        path = self.path

        def dial_uds() -> Any:
            return asyncio.open_unix_connection(path)

        return dial_uds

    def as_dict(self) -> dict[str, Any]:
        return {
            "id": self.node_id,
            "kind": self.kind,
            "host": self.host,
            "port": self.port,
            "path": self.path,
        }

    @staticmethod
    def from_dict(doc: dict[str, Any]) -> "NodeAddress":
        return NodeAddress(
            node_id=int(doc["id"]),
            kind=str(doc["kind"]),
            host=str(doc.get("host", "127.0.0.1")),
            port=int(doc.get("port", 0)),
            path=str(doc.get("path", "")),
        )


def node_seeds(seed: int, n: int) -> list[int]:
    """Per-node context seeds derived from the master seed.

    Every node of a cluster derives the identical list locally, so
    subprocess nodes need only the master seed from the topology file.
    """
    rng = np.random.default_rng(seed)
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n)]


class LiveNode:
    """One consensus node: a process, a listener, and n-1 peer links."""

    def __init__(
        self,
        node_id: int,
        n: int,
        f: int,
        process: Any,
        address: NodeAddress,
        *,
        instance: str,
        seed: int = 0,
        max_rounds: int = 10_000,
        max_steps: int = 1_000_000,
        queue_limit: int = 256,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        chaos_drop_peer: Optional[int] = None,
        chaos_drop_after: int = 0,
    ) -> None:
        self.node_id = int(node_id)
        self.n = int(n)
        self.f = int(f)
        self.process = process
        self.address = address
        self.instance = str(instance)
        self.seed = int(seed)
        self.max_rounds = int(max_rounds)
        self.max_steps = int(max_steps)
        self.queue_limit = int(queue_limit)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        #: Force-close the link to this peer once, after that many frames
        #: — the disconnect-survival knob (see PeerLink.chaos_close_after).
        self.chaos_drop_peer = chaos_drop_peer
        self.chaos_drop_after = int(chaos_drop_after)

        ctx_seed = node_seeds(self.seed, self.n)[self.node_id]
        self.ctx = Context(
            self.node_id, self.n, self.f, np.random.default_rng(ctx_seed)
        )
        self.stats = NetworkStats()
        self.rounds_done = 0
        self.completed = False
        self.dupes_dropped = 0
        #: Frames arriving on the wire, *including* retransmitted
        #: duplicates — vs ``frames_received``, which counts only the
        #: effective (post-dedup) deliveries.  Invariant:
        #: ``wire_frames_received == frames_received + dupes_dropped``.
        self.wire_frames_received = 0
        self.frames_received = 0
        #: Ambient causal collector, re-captured at run() start.  The
        #: null default keeps every stamp site a single attribute check.
        self.collector = get_causal_collector()

        self._links: dict[int, PeerLink] = {}
        self._server: Any = None
        self._server_conns: list[Any] = []
        self._serve_tasks: list[Any] = []
        # Receive state, guarded by _cond (single event loop, no threads).
        # Message buffers hold (Message, meta) pairs where meta describes
        # the delivery's causal provenance: ("local", send_eid) for
        # self-deliveries, ("remote", (origin_eid, lamport, clock)) for
        # stamped frames, None for unstamped (v1) frames or tracing off.
        self._cond: asyncio.Condition = asyncio.Condition()
        self._last_seq: dict[int, int] = {}
        self._pending_msgs: dict[int, list[tuple[Message, Any]]] = {}
        self._round_msgs: dict[int, dict[int, list[tuple[Message, Any]]]] = {}
        self._peer_round: dict[int, int] = {}
        self._peer_decided: dict[int, bool] = {}
        self._inq: asyncio.Queue[tuple[str, Any]] = asyncio.Queue()

    # ------------------------------------------------------------ lifecycle
    async def start_server(self) -> NodeAddress:
        """Bind the listener; returns the (possibly port-resolved) address."""
        if self.address.kind == "tcp":
            self._server = await asyncio.start_server(
                self._serve_conn, host=self.address.host, port=self.address.port
            )
            port = self._server.sockets[0].getsockname()[1]
            self.address = NodeAddress(
                self.node_id, "tcp", host=self.address.host, port=int(port)
            )
        elif self.address.kind == "uds":
            self._server = await asyncio.start_unix_server(
                self._serve_conn, path=self.address.path
            )
        else:
            raise TransportError(f"unknown address kind {self.address.kind!r}")
        return self.address

    def connect_peers(self, addresses: dict[int, NodeAddress]) -> None:
        """Create (but do not yet dial) one outgoing link per peer."""
        for peer_id in range(self.n):
            if peer_id == self.node_id:
                continue
            chaos = (
                self.chaos_drop_after
                if self.chaos_drop_peer == peer_id
                else None
            )
            self._links[peer_id] = PeerLink(
                self.node_id,
                peer_id,
                addresses[peer_id].dialer(),
                instance=self.instance,
                queue_limit=self.queue_limit,
                backoff_base=self.backoff_base,
                backoff_cap=self.backoff_cap,
                chaos_close_after=chaos,
            )

    async def shutdown(self) -> None:
        for peer_id in sorted(self._links):
            self._links[peer_id].abort()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except (ConnectionError, OSError):
                pass
        for writer in self._server_conns:
            writer.close()
        # Drain the handler tasks now (they wake on the EOF the close
        # above produced) so loop teardown finds nothing to cancel.
        if self._serve_tasks:
            await asyncio.gather(*self._serve_tasks, return_exceptions=True)

    # ------------------------------------------------------- incoming side
    async def _serve_conn(self, reader: Any, writer: Any) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._serve_tasks.append(task)
        try:
            head = await reader.readexactly(4)
            (length,) = struct.unpack("!I", head)
            if length > wire.MAX_FRAME_BYTES:
                raise wire.WireError("oversized HELLO")
            hello = wire.decode_body(await reader.readexactly(length))
            if hello[0] != wire.HELLO:
                raise wire.WireError(f"expected HELLO, got {hello[0]!r}")
            peer_id = wire.check_hello(hello, instance=self.instance)
            writer.write(wire.encode_hello(self.node_id, self.instance))
            await writer.drain()
        except (wire.WireError, ConnectionError, OSError, EOFError):
            writer.close()
            return
        self._server_conns.append(writer)
        try:
            async for record in wire.read_frames(reader):
                await self._on_record(peer_id, record)
        except (wire.WireError, ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def _on_record(self, peer_id: int, record: tuple) -> None:
        self.wire_frames_received += 1
        seq = int(record[1])
        if seq <= self._last_seq.get(peer_id, -1):
            self.dupes_dropped += 1  # retransmit after reconnect
            return
        self._last_seq[peer_id] = seq
        self.frames_received += 1
        kind = record[0]
        if kind == wire.MSG:
            _, msg = wire.decode_message(record)
            stamp = wire.message_stamp(record)
            meta = ("remote", stamp) if stamp is not None else None
            async with self._cond:
                self._pending_msgs.setdefault(peer_id, []).append((msg, meta))
            await self._inq.put(("msg", (msg, meta)))
        elif kind == wire.ROUND:
            _, _, round_, decided = record
            async with self._cond:
                bucket = self._round_msgs.setdefault(int(round_), {})
                bucket[peer_id] = self._pending_msgs.pop(peer_id, [])
                self._peer_round[peer_id] = int(round_)
                if bool(decided):
                    self._peer_decided[peer_id] = True
                self._cond.notify_all()
        elif kind == wire.DECIDED:
            async with self._cond:
                self._peer_decided[peer_id] = True
                self._cond.notify_all()
            await self._inq.put(("decided", peer_id))

    # ------------------------------------------------------- outgoing side
    async def _flush_outbox(self, round_: Optional[int] = None) -> None:
        msgs = self.ctx.outbox
        self.ctx.outbox = []
        collector = self.collector
        for msg in msgs:
            self.stats.record_send(msg)
            stamp = None
            send_eid: Optional[int] = None
            if collector.enabled:
                # One send event per message, like the simulator — an
                # atomic broadcast fans its single stamp to every link.
                # The payload digest lets the post-hoc broadcast-
                # integrity probe compare what each receiver was sent.
                digest = hashlib.sha256(
                    canonical_bytes(msg.payload)
                ).hexdigest()[:16]
                send_eid = collector.on_send(
                    msg.src, msg.dst, msg.tag,
                    time=round_, seq=msg.seq, round=msg.round, digest=digest,
                )
                stamp = collector.stamp(send_eid)
            if msg.dst == ALL:
                for peer_id in sorted(self._links):
                    await self._links[peer_id].send_message(msg, stamp=stamp)
                await self._deliver_local(msg, round_, send_eid)
            elif msg.dst == self.node_id:
                await self._deliver_local(msg, round_, send_eid)
            else:
                await self._links[msg.dst].send_message(msg, stamp=stamp)

    async def _deliver_local(
        self, msg: Message, round_: Optional[int], send_eid: Optional[int]
    ) -> None:
        meta = ("local", send_eid) if send_eid is not None else None
        if round_ is not None:
            bucket = self._round_msgs.setdefault(round_, {})
            bucket.setdefault(self.node_id, []).append((msg, meta))
        else:
            await self._inq.put(("msg", (msg, meta)))

    # ------------------------------------------------------------- driving
    async def run(self) -> RunResult:
        """Drive the process to decision; returns this node's RunResult."""
        self.collector = get_causal_collector()
        for peer_id in sorted(self._links):
            self._links[peer_id].start()
        try:
            if isinstance(self.process, SyncProcess):
                await self._run_sync()
            elif isinstance(self.process, AsyncProcess):
                await self._run_async()
            else:
                raise TransportError(
                    f"process {type(self.process).__name__} is neither "
                    "SyncProcess nor AsyncProcess"
                )
        finally:
            self.process.on_stop(self.ctx)
            for peer_id in sorted(self._links):
                await self._links[peer_id].close()
        return self._result()

    async def _run_sync(self) -> None:
        proc = self.process
        inbox: dict[int, list[tuple[str, Any]]] = {}
        for r in range(self.max_rounds):
            self.rounds_done = r
            self.ctx.outbox = []
            if not self.ctx.halted:
                proc.on_round(self.ctx, r, inbox)
            await self._flush_outbox(round_=r)
            decided = self.ctx.decided
            for peer_id in sorted(self._links):
                await self._links[peer_id].send_round(r, decided)
            # Barrier: every peer's round-r marker (hence all its round-r
            # traffic, by per-link FIFO) must arrive before round r+1.
            async with self._cond:
                await self._cond.wait_for(
                    lambda: all(
                        self._peer_round.get(p, -1) >= r
                        or self._links[p].failed is not None
                        for p in self._links
                    )
                )
                if any(
                    self._links[p].failed is not None for p in self._links
                ):
                    raise TransportError(
                        "a peer link failed permanently mid-run"
                    )
                arrived = self._round_msgs.pop(r, {})
                all_decided = decided and all(
                    self._peer_decided.get(p, False) for p in self._links
                )
            inbox = {}
            for src in sorted(arrived):
                entries = []
                for msg, meta in arrived[src]:
                    self._deliver_one(msg, meta, r)
                    entries.append((msg.tag, msg.payload))
                inbox[src] = entries
            if all_decided:
                self.rounds_done = r + 1
                self.completed = True
                return

    def _deliver_one(
        self, msg: Message, meta: Any, time_: Optional[int]
    ) -> None:
        """Count one effective delivery and stamp its causal event.

        Deliveries are stamped at *consumption* (when the message enters
        the process's inbox), so retransmitted duplicates — dropped in
        ``_on_record`` — never produce a deliver event or double-count
        the delivery stats.
        """
        self.stats.record_delivery(msg)
        collector = self.collector
        if not collector.enabled:
            return
        if meta is None:
            # Unstamped frame (v1 peer, or sender traced nothing): keep
            # program order faithful with a cause-less deliver event.
            collector.on_deliver(self.node_id, None, time=time_)
        elif meta[0] == "local":
            collector.on_deliver(self.node_id, meta[1], time=time_)
        else:
            origin_eid, lamport, clock = meta[1]
            collector.on_deliver_remote(
                self.node_id, msg.src, origin_eid, lamport, clock,
                src=msg.src, tag=msg.tag, time=time_,
            )

    async def _run_async(self) -> None:
        proc = self.process
        self.process.on_start(self.ctx)
        await self._flush_outbox()
        announced = False
        steps = 0
        while steps < self.max_steps:
            if self.ctx.decided and not announced:
                announced = True
                for peer_id in sorted(self._links):
                    await self._links[peer_id].send_decided()
            if announced and all(
                self._peer_decided.get(p, False) for p in self._links
            ):
                self.completed = True
                break
            try:
                kind, payload = await asyncio.wait_for(
                    self._inq.get(), timeout=1.0
                )
            except asyncio.TimeoutError:
                # Idle for a whole second: make sure we are not waiting
                # on a peer that can never answer.  A permanently failed
                # link surfaces as an error (mirroring the sync barrier)
                # rather than a silent hang on the queue; otherwise
                # re-announce DECIDED to peers that have not echoed one
                # back, in case the original announcement was lost to a
                # connection that died and recovered.
                if any(
                    link.failed is not None for link in self._links.values()
                ):
                    raise TransportError(
                        "a peer link failed permanently mid-run"
                    ) from None
                if announced:
                    for peer_id in sorted(self._links):
                        if not self._peer_decided.get(peer_id, False):
                            await self._links[peer_id].send_decided()
                continue
            if kind == "decided":
                continue
            msg, meta = payload
            steps += 1
            self.rounds_done = steps
            self._deliver_one(msg, meta, steps)
            if self.ctx.halted:
                continue
            proc.on_message(self.ctx, msg.src, msg.tag, msg.payload)
            await self._flush_outbox()

    def _result(self) -> RunResult:
        decisions = (
            {self.node_id: self.ctx.decision} if self.ctx.decided else {}
        )
        registry = MetricsRegistry()
        _fold_network_stats(registry, self.stats)
        self._fold_live_metrics(registry)
        return RunResult(
            decisions=decisions,
            rounds=self.rounds_done,
            stats=self.stats,
            contexts={self.node_id: self.ctx},
            faulty=frozenset(),
            completed=self.completed,
            metrics=registry,
        )

    def _fold_live_metrics(self, registry: MetricsRegistry) -> None:
        totals = {name: 0 for name in LinkStats.COUNTER_FIELDS}
        depth_peak = 0
        wait_samples: list[float] = []
        for peer_id in sorted(self._links):
            stats = self._links[peer_id].stats
            for name, value in stats.as_dict().items():
                totals[name] += value
            depth_peak = max(depth_peak, stats.queue_depth_peak)
            wait_samples.extend(stats.queue_wait_samples)
        for name in sorted(totals):
            registry.counter(f"net.live.{name}").value = totals[name]
        registry.counter("net.live.dupes_dropped").value = self.dupes_dropped
        registry.counter("net.live.wire_frames_received").value = (
            self.wire_frames_received
        )
        registry.counter("net.live.frames_received").value = (
            self.frames_received
        )
        if depth_peak:
            registry.set_gauge("net.live.queue_depth_peak", depth_peak)
        for sample in wait_samples:
            registry.observe("net.live.queue_wait_us", sample * 1e6)


class LiveTransport(Transport):
    """In-process cluster of :class:`LiveNode` objects on one event loop.

    ``run(spec)`` uses this backend for ``transport="live-tcp"`` /
    ``"live-uds"``: every node gets a real socket on loopback (or a Unix
    socket in a private temp directory) and the run completes when all
    nodes decide.  Subprocess-per-node deployments use the same
    :class:`LiveNode` through ``python -m repro node`` instead.
    """

    deterministic = False

    def __init__(
        self,
        kind: str = "tcp",
        *,
        run_timeout: float = 120.0,
        queue_limit: int = 256,
        chaos_drop_link: Optional[tuple[int, int]] = None,
        chaos_drop_after: int = 8,
    ) -> None:
        if kind not in ("tcp", "uds"):
            raise ValueError(f"unknown live transport kind {kind!r}")
        self.kind = kind
        self.name = f"live-{kind}"
        self.run_timeout = float(run_timeout)
        self.queue_limit = int(queue_limit)
        #: ``(src, dst)``: force-close src's link to dst once mid-run.
        self.chaos_drop_link = chaos_drop_link
        self.chaos_drop_after = int(chaos_drop_after)

    # --------------------------------------------------------------- entry
    def run_sync(
        self,
        processes: Sequence[SyncProcess],
        f: int,
        *,
        adversary: Optional[Adversary] = None,
        rng: Optional[np.random.Generator] = None,
        max_rounds: int = 10_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        topology: Optional[Topology] = None,
        probes: Sequence[Probe] = (),
        seed: int = 0,
    ) -> RunResult:
        self._check_honest(adversary, len(processes))
        self._check_topology(topology, len(processes))
        return self._execute(
            list(processes), f, probes=probes, seed=seed, max_rounds=max_rounds
        )

    def run_async(
        self,
        processes: Sequence[AsyncProcess],
        f: int,
        *,
        adversary: Optional[Adversary] = None,
        policy: Optional[Any] = None,
        rng: Optional[np.random.Generator] = None,
        max_steps: int = 1_000_000,
        probes: Sequence[Probe] = (),
        seed: int = 0,
    ) -> RunResult:
        self._check_honest(adversary, len(processes))
        if policy is not None:
            raise TransportError(
                "delivery policies are a simulator concept; the live "
                "backend delivers in real arrival order"
            )
        return self._execute(
            list(processes), f, probes=probes, seed=seed, max_steps=max_steps
        )

    # ------------------------------------------------------------ internals
    def _check_honest(self, adversary: Optional[Adversary], n: int) -> None:
        if adversary is not None and (
            adversary.faulty or adversary.custom_processes
        ):
            raise TransportError(
                "the live backend executes honest runs only; adversarial "
                "schedules and corruptions require the deterministic "
                "simulator (transport='sim')"
            )

    def _check_topology(self, topology: Optional[Topology], n: int) -> None:
        if topology is None:
            return
        complete = all(
            topology.allows(i, j)
            for i in range(n)
            for j in range(n)
            if i != j
        )
        if not complete:
            raise TransportError(
                "the live backend wires a complete graph; incomplete "
                "topologies require the simulator (transport='sim')"
            )

    def _execute(
        self,
        processes: list[Any],
        f: int,
        *,
        probes: Sequence[Probe],
        seed: int,
        max_rounds: int = 10_000,
        max_steps: int = 1_000_000,
    ) -> RunResult:
        n = len(processes)
        instance = f"inproc-{self.kind}-{seed}-{n}"
        try:
            results = asyncio.run(
                self._cluster(
                    processes, f, n, instance,
                    seed=seed, max_rounds=max_rounds, max_steps=max_steps,
                )
            )
        except RuntimeError as exc:
            if "running event loop" in str(exc):
                raise TransportError(
                    "LiveTransport cannot be entered from inside a "
                    "running asyncio event loop"
                ) from exc
            raise
        return self._merge(results, processes, f, probes)

    async def _cluster(
        self,
        processes: list[Any],
        f: int,
        n: int,
        instance: str,
        *,
        seed: int,
        max_rounds: int,
        max_steps: int,
    ) -> list[RunResult]:
        tmpdir: Optional[tempfile.TemporaryDirectory] = None
        if self.kind == "uds":
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-uds-")
        nodes: list[LiveNode] = []
        try:
            for pid in range(n):
                if self.kind == "tcp":
                    addr = NodeAddress(pid, "tcp", host="127.0.0.1", port=0)
                else:
                    assert tmpdir is not None
                    addr = NodeAddress(
                        pid, "uds", path=os.path.join(tmpdir.name, f"n{pid}.sock")
                    )
                chaos_peer: Optional[int] = None
                if self.chaos_drop_link is not None and (
                    self.chaos_drop_link[0] == pid
                ):
                    chaos_peer = self.chaos_drop_link[1]
                nodes.append(
                    LiveNode(
                        pid, n, f, processes[pid], addr,
                        instance=instance, seed=seed,
                        max_rounds=max_rounds, max_steps=max_steps,
                        queue_limit=self.queue_limit,
                        chaos_drop_peer=chaos_peer,
                        chaos_drop_after=self.chaos_drop_after,
                    )
                )
            addresses: dict[int, NodeAddress] = {}
            for node in nodes:
                addresses[node.node_id] = await node.start_server()
            for node in nodes:
                node.connect_peers(addresses)
            gathered = asyncio.gather(*(node.run() for node in nodes))
            try:
                return list(
                    await asyncio.wait_for(gathered, timeout=self.run_timeout)
                )
            except asyncio.TimeoutError:
                # Incomplete run: report whatever state the nodes reached.
                return [node._result() for node in nodes]
        finally:
            for node in nodes:
                await node.shutdown()
            if tmpdir is not None:
                tmpdir.cleanup()

    def _merge(
        self,
        results: list[RunResult],
        processes: list[Any],
        f: int,
        probes: Sequence[Probe],
    ) -> RunResult:
        n = len(processes)
        decisions: dict[int, Any] = {}
        contexts: dict[int, Context] = {}
        stats = NetworkStats()
        rounds = 0
        completed = bool(results)
        registry = active_registry() or MetricsRegistry()
        for result in results:
            decisions.update(result.decisions)
            contexts.update(result.contexts)
            rounds = max(rounds, result.rounds)
            completed = completed and result.completed
            stats.messages_sent += result.stats.messages_sent
            stats.messages_delivered += result.stats.messages_delivered
            stats.bytes_estimate += result.stats.bytes_estimate
            for tag in sorted(result.stats.per_tag):
                stats.per_tag[tag] = (
                    stats.per_tag.get(tag, 0) + result.stats.per_tag[tag]
                )
            for tag in sorted(result.stats.per_tag_delivered):
                stats.per_tag_delivered[tag] = (
                    stats.per_tag_delivered.get(tag, 0)
                    + result.stats.per_tag_delivered[tag]
                )
            for name, metric in result.metrics.snapshot().items():
                if not name.startswith("net.live."):
                    continue
                kind = metric.get("type")
                if kind == "counter":
                    registry.inc(name, int(metric["value"]))
                elif kind == "gauge" and metric.get("updates"):
                    # Peaks max across nodes rather than summing.
                    gauge = registry.gauge(name)
                    if not gauge.updates or metric["value"] > gauge.value:
                        gauge.set(metric["value"])
                elif kind == "histogram" and metric.get("count"):
                    # The per-node registry is in-process: merge the
                    # exact samples, not the snapshot's summary stats.
                    for sample in result.metrics.histogram(name).samples:
                        registry.observe(name, sample)
        _fold_network_stats(registry, stats)
        probe_reports = ()
        if probes:
            proc_map = {pid: processes[pid] for pid in range(n)}
            view = ProbeView(n, f, contexts, proc_map, frozenset())
            for probe in probes:
                probe.attach(view)
            for probe in probes:
                probe.on_finish(view, rounds)
            probe_reports = tuple(probe.report() for probe in probes)
        return RunResult(
            decisions=decisions,
            rounds=rounds,
            stats=stats,
            contexts=contexts,
            faulty=frozenset(),
            completed=completed,
            metrics=registry,
            probes=probe_reports,
        )
