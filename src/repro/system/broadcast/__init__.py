"""Broadcast protocols: OM(f)/EIG, authenticated Dolev–Strong, Bracha RBC."""

from .bracha import ECHO, INIT, READY, BrachaState
from .dolev_strong import DolevStrongState, ds_total_rounds
from .interface import BroadcastDefault, majority
from .om import EIGState, eig_total_rounds

__all__ = [
    "BrachaState",
    "BroadcastDefault",
    "DolevStrongState",
    "ECHO",
    "EIGState",
    "INIT",
    "READY",
    "ds_total_rounds",
    "eig_total_rounds",
    "majority",
]
