"""Broadcast protocols: OM(f)/EIG, authenticated Dolev–Strong, Bracha RBC.

Protocol code constructs machines through
:func:`~repro.system.broadcast.interface.make_broadcast`; the concrete
``*State`` classes and round-count helpers remain importable for tests
and embeddings that poke at machine internals.
"""

from .bracha import ECHO, INIT, READY, BrachaState
from .dolev_strong import DolevStrongState, ds_total_rounds
from .interface import (
    BROADCAST_KINDS,
    BroadcastDefault,
    broadcast_rounds,
    majority,
    make_broadcast,
)
from .om import EIGState, eig_total_rounds

__all__ = [
    "BROADCAST_KINDS",
    "BrachaState",
    "BroadcastDefault",
    "DolevStrongState",
    "ECHO",
    "EIGState",
    "INIT",
    "READY",
    "broadcast_rounds",
    "ds_total_rounds",
    "eig_total_rounds",
    "majority",
    "make_broadcast",
]
