"""Oral-messages Byzantine broadcast — OM(f) via exponential information
gathering (Lamport, Shostak & Pease 1982, the paper's reference [12]).

One instance disseminates one sender's ("commander's") value to all
processes such that all correct processes agree on the outcome, and the
outcome equals the sender's value when the sender is correct.  Requires
``n >= 3f + 1`` and runs ``f + 1`` communication rounds; message complexity
is exponential in ``f`` (that is inherent to unauthenticated OM — use
:mod:`repro.system.broadcast.dolev_strong` for larger ``f``).

EIG structure
-------------
Values are stored in a tree indexed by *paths* — tuples of distinct process
ids starting with the commander.  ``tree[(c, i1, ..., ik)]`` is "the value
``ik`` said that ``i(k-1)`` said ... that the commander said".

* Round 0: the commander sends ``((c,), v)`` to everyone.
* Round ``r`` (1..f): each process relays every path of length ``r`` it
  received in the previous round and does not itself appear on, appending
  its own id.
* After round ``f + 1`` deliveries, each process decides by recursive
  strict majority over the tree (:meth:`EIGState.decide`), with missing or
  malformed entries treated as the protocol default.

The machine validates every incoming relay: the path must start at the
commander, consist of distinct ids, have the sender as its last hop, and
have the length dictated by the round — so Byzantine processes cannot
inject values into parts of the tree they do not control.
"""

from __future__ import annotations

from typing import Any, Iterable

from ...obs import metrics as _obs
from .interface import BroadcastDefault, majority

__all__ = ["EIGState", "eig_total_rounds"]

Path = tuple[int, ...]


def eig_total_rounds(f: int) -> int:
    """Scheduler rounds an EIG instance occupies: sends in rounds 0..f,
    final deliveries land in round ``f + 1``."""
    return f + 2


class EIGState:
    """Per-process state of one OM(f) broadcast instance.

    Parameters
    ----------
    n, f:
        System parameters (``n >= 3f + 1`` for correctness).
    commander:
        The broadcasting process id.
    pid:
        The hosting process id.
    default:
        Value decided when the (necessarily faulty) commander cannot be
        attributed a single value.
    """

    def __init__(
        self, n: int, f: int, commander: int, pid: int, default: Any = BroadcastDefault
    ) -> None:
        # Function-level import — see BrachaState.__init__ for why.
        from ...core.bounds import rbc_min_n

        if n < rbc_min_n(f):
            raise ValueError(f"OM(f) requires n >= 3f+1, got n={n}, f={f}")
        if not (0 <= commander < n and 0 <= pid < n):
            raise ValueError("commander/pid out of range")
        self.n, self.f = n, f
        self.commander = commander
        self.pid = pid
        self.default = default
        self.tree: dict[Path, Any] = {}
        self._decided: bool = False
        self._decision: Any = None

    # ------------------------------------------------------------- sending
    def messages_for_round(
        self, r: int, value_if_commander: Any = None
    ) -> list[tuple[int, tuple[Path, Any]]]:
        """Outgoing ``(dst, (path, value))`` pairs for scheduler round ``r``.

        Round 0 is the commander's initial send; rounds ``1..f`` are
        relays of the previous round's paths.
        """
        out: list[tuple[int, tuple[Path, Any]]] = []
        if r == 0:
            if self.pid == self.commander:
                path = (self.commander,)
                for dst in range(self.n):
                    out.append((dst, (path, value_if_commander)))
            return out
        if r > self.f:
            return out
        for path, value in self.tree.items():
            if len(path) != r or self.pid in path:
                continue
            new_path = path + (self.pid,)
            for dst in range(self.n):
                out.append((dst, (new_path, value)))
        if out:
            _obs.inc("bcast.om.relays_sent", len(out))
        return out

    # ----------------------------------------------------------- receiving
    def receive(self, r: int, src: int, payload: tuple[Path, Any]) -> None:
        """Store one relayed ``(path, value)`` delivered in round ``r``.

        Malformed relays (wrong length, wrong last hop, repeated ids, not
        rooted at the commander) are discarded — a correct process never
        produces them, so they can only come from Byzantine senders.
        First write wins, so duplicates cannot overwrite.
        """
        try:
            path, value = payload
            path = tuple(int(x) for x in path)
        except (TypeError, ValueError):
            _obs.inc("bcast.om.relays_rejected")
            return
        if (
            len(path) != r
            or not path
            or path[0] != self.commander
            or path[-1] != src
            or len(set(path)) != len(path)
            or any(not 0 <= x < self.n for x in path)
        ):
            _obs.inc("bcast.om.relays_rejected")
            return
        if path not in self.tree:
            self.tree[path] = value
            _obs.inc("bcast.om.relays_stored")

    # ------------------------------------------------------------ deciding
    def decide(self) -> Any:
        """Recursive-majority resolution of the EIG tree (run once, after
        all ``f + 1`` delivery rounds)."""
        if not self._decided:
            self._decision = self._resolve((self.commander,))
            self._decided = True
            _obs.inc("bcast.om.decisions")
        return self._decision

    def _resolve(self, path: Path) -> Any:
        stored = self.tree.get(path, self.default)
        if len(path) == self.f + 1:
            return stored
        children = [
            self._resolve(path + (j,)) for j in range(self.n) if j not in path
        ]
        if not children:  # pragma: no cover - n > f+1 always gives children
            return stored
        return majority(children, default=self.default)


def run_eig_instances(
    states: dict[int, "EIGState"],
    rounds_inbox: Iterable[tuple[int, int, int, tuple[Path, Any]]],
) -> None:  # pragma: no cover - convenience for interactive debugging
    """Feed ``(round, instance, src, payload)`` records into EIG states."""
    for r, inst, src, payload in rounds_inbox:
        states[inst].receive(r, src, payload)
