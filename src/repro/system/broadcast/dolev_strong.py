"""Authenticated Byzantine broadcast (Dolev & Strong 1983).

With (simulated) unforgeable signatures, broadcast needs only ``f + 1``
rounds and polynomially many messages, and tolerates any ``f < n`` for
agreement/validity of the broadcast itself.  We include it as the
polynomial-cost alternative to OM(f) for larger ``f`` — the consensus
layer still requires ``n >= 3f + 1`` for its own reasons (the paper's
Lemma 10).

Protocol (one instance, sender ``s``):

* Round 0: ``s`` signs its value and sends ``(v, [sig_s])`` to everyone.
* Round ``r`` (1..f): when a process first *accepts* a value in round
  ``r-1`` (valid chain: distinct signers, first is ``s``, length ``>= r``),
  it appends its own signature and relays to everyone.
* After round ``f + 1`` deliveries: if exactly one value was accepted,
  decide it; otherwise decide the default (sender provably faulty).

The signature chain makes equivocation self-defeating: to make value
``v'`` appear at a correct process in the final round, ``f + 1`` signers
must have vouched for it — at least one correct, who would have relayed it
to everyone in time.
"""

from __future__ import annotations

from typing import Any

from ...obs import metrics as _obs
from ..crypto import Signature, SignatureScheme
from ..messages import canonical_bytes
from .interface import BroadcastDefault

__all__ = ["DolevStrongState", "ds_total_rounds"]

Chain = tuple[Signature, ...]


def ds_total_rounds(f: int) -> int:
    """Scheduler rounds an instance occupies (sends 0..f, last inbox f+1)."""
    return f + 2


class DolevStrongState:
    """Per-process state of one authenticated-broadcast instance.

    Parameters
    ----------
    scheme:
        The run's :class:`~repro.system.crypto.SignatureScheme` (used for
        verification; correct processes sign through it as themselves).
    instance:
        Instance label mixed into every signed payload, so signatures from
        parallel broadcasts cannot be replayed across instances.
    """

    def __init__(
        self,
        n: int,
        f: int,
        sender: int,
        pid: int,
        scheme: SignatureScheme,
        instance: Any = 0,
        default: Any = BroadcastDefault,
    ) -> None:
        self.n, self.f = n, f
        self.sender = sender
        self.pid = pid
        self.scheme = scheme
        self.instance = instance
        self.default = default
        self.accepted: dict[bytes, Any] = {}
        self._chains: dict[bytes, Chain] = {}
        self._newly_accepted: list[bytes] = []

    # ----------------------------------------------------------- utilities
    def _signed_obj(self, value: Any) -> Any:
        return ("ds", self.instance, self.sender, value)

    def _valid_chain(self, value: Any, chain: Chain, min_len: int) -> bool:
        if len(chain) < min_len:
            return False
        signers = [sig.signer for sig in chain]
        if len(set(signers)) != len(signers):
            return False
        if not signers or signers[0] != self.sender:
            return False
        obj = self._signed_obj(value)
        return all(self.scheme.verify(obj, sig) for sig in chain)

    # ------------------------------------------------------------- sending
    def messages_for_round(
        self, r: int, value_if_sender: Any = None
    ) -> list[tuple[int, tuple[Any, Chain]]]:
        """Outgoing ``(dst, (value, chain))`` pairs for round ``r``."""
        out: list[tuple[int, tuple[Any, Chain]]] = []
        if r == 0:
            if self.pid == self.sender:
                sig = self.scheme.sign(self.pid, self._signed_obj(value_if_sender))
                for dst in range(self.n):
                    out.append((dst, (value_if_sender, (sig,))))
            return out
        if r > self.f:
            return out
        # Relay everything newly accepted last round, with our signature.
        for key in self._newly_accepted:
            value = self.accepted[key]
            chain = self._chains[key]
            if any(sig.signer == self.pid for sig in chain):
                continue
            sig = self.scheme.sign(self.pid, self._signed_obj(value))
            new_chain = chain + (sig,)
            for dst in range(self.n):
                out.append((dst, (value, new_chain)))
        self._newly_accepted = []
        if out:
            _obs.inc("bcast.ds.relays_sent", len(out))
        return out

    # ----------------------------------------------------------- receiving
    def receive(self, r: int, src: int, payload: tuple[Any, Chain]) -> None:
        """Validate and record a relayed value delivered in round ``r``."""
        try:
            value, chain = payload
            chain = tuple(chain)
        except (TypeError, ValueError):
            _obs.inc("bcast.ds.rejected")
            return
        if not all(isinstance(s, Signature) for s in chain):
            _obs.inc("bcast.ds.rejected")
            return
        if not self._valid_chain(value, chain, min_len=r):
            _obs.inc("bcast.ds.rejected")
            return
        key = canonical_bytes(value)
        if key in self.accepted:
            return
        self.accepted[key] = value
        self._chains[key] = chain
        self._newly_accepted.append(key)
        _obs.inc("bcast.ds.accepted")

    # ------------------------------------------------------------ deciding
    def decide(self) -> Any:
        """Final extraction: the unique accepted value, else the default."""
        if len(self.accepted) == 1:
            return next(iter(self.accepted.values()))
        return self.default
