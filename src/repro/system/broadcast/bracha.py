"""Bracha's asynchronous reliable broadcast (Bracha 1987, paper ref [4]).

The asynchronous algorithms of §10 (Relaxed Verified Averaging) rely on
reliable broadcast: even with a Byzantine sender, all correct processes
that deliver a value for an instance deliver the *same* value, and if any
correct process delivers, every correct process eventually does
(totality).  Requires ``n >= 3f + 1`` — which is exactly why the paper's
asynchronous results also assume ``n >= 3f + 1``.

Protocol per instance (sender ``s``, value ``v``):

* sender sends ``INIT(v)`` to all;
* on first ``INIT(v)`` from ``s``: send ``ECHO(v)`` to all;
* on ``ceil((n+f+1)/2)`` ``ECHO(v)`` or ``f+1`` ``READY(v)`` (first time):
  send ``READY(v)`` to all;
* on ``2f+1`` ``READY(v)``: deliver ``v``.

The machine is message-driven: :meth:`on_message` returns the messages to
send, and sets :attr:`delivered_value` when delivery happens.  Duplicate
phase messages from the same process are counted once (Byzantine processes
cannot inflate quorums by repetition).
"""

from __future__ import annotations

from typing import Any, Optional

from ...obs import metrics as _obs
from ..messages import canonical_bytes, defensive_copy

__all__ = ["BrachaState", "INIT", "ECHO", "READY"]

INIT, ECHO, READY = "init", "echo", "ready"


class BrachaState:
    """Per-process state of one reliable-broadcast instance."""

    def __init__(self, n: int, f: int, sender: int, pid: int) -> None:
        # Function-level import: core.__init__ imports the averaging
        # module, which imports this one — a module-level import of
        # core.bounds here would close that cycle.
        from ...core.bounds import bracha_echo_quorum, bracha_ready_quorum, rbc_min_n

        if n < rbc_min_n(f):
            raise ValueError(f"Bracha RBC requires n >= 3f+1, got n={n}, f={f}")
        self.n, self.f = n, f
        self.sender = sender
        self.pid = pid
        self.echo_threshold = bracha_echo_quorum(n, f)
        self.ready_threshold = bracha_ready_quorum(f)
        self._echoed = False
        self._readied = False
        self._echoes: dict[bytes, set[int]] = {}
        self._readys: dict[bytes, set[int]] = {}
        self._values: dict[bytes, Any] = {}
        self.delivered_value: Optional[Any] = None
        self.delivered = False

    # ------------------------------------------------------------- sending
    def start(self, value: Any = None) -> list[tuple[int, tuple[str, Any]]]:
        """Sender's initial ``INIT`` burst (empty for non-senders)."""
        if self.pid != self.sender:
            return []
        return [(dst, (INIT, value)) for dst in range(self.n)]

    # ----------------------------------------------------------- receiving
    def on_message(
        self, src: int, payload: tuple[str, Any]
    ) -> list[tuple[int, tuple[str, Any]]]:
        """Process one phase message; returns the messages to send."""
        try:
            phase, value = payload
        except (TypeError, ValueError):
            _obs.inc("bcast.bracha.malformed")
            return []
        out: list[tuple[int, tuple[str, Any]]] = []
        key = canonical_bytes(value)
        if phase in (INIT, ECHO, READY):
            _obs.inc(f"bcast.bracha.{phase}")

        if phase == INIT:
            if src == self.sender and not self._echoed:
                self._echoed = True
                out.extend((dst, (ECHO, value)) for dst in range(self.n))
        elif phase == ECHO:
            # Retained past this handler while `value` is also forwarded:
            # store a private copy so a sender-side mutation of the live
            # payload cannot rewrite what we later deliver.
            self._values.setdefault(key, defensive_copy(value))
            voters = self._echoes.setdefault(key, set())
            voters.add(src)
            if len(voters) >= self.echo_threshold and not self._readied:
                self._readied = True
                out.extend((dst, (READY, value)) for dst in range(self.n))
        elif phase == READY:
            self._values.setdefault(key, defensive_copy(value))
            voters = self._readys.setdefault(key, set())
            voters.add(src)
            if len(voters) >= self.f + 1 and not self._readied:
                self._readied = True
                out.extend((dst, (READY, value)) for dst in range(self.n))
            if len(voters) >= self.ready_threshold and not self.delivered:
                self.delivered = True
                self.delivered_value = self._values[key]
                _obs.inc("bcast.bracha.delivered")
        return out
