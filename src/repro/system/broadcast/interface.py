"""Shared pieces of the broadcast protocol implementations.

All three broadcast protocols here (OM/EIG, Dolev–Strong, Bracha) are
implemented as *embeddable state machines*: a consensus process hosts one
machine per broadcast instance (e.g. one per input being disseminated) and
forwards the relevant rounds/messages.  The machines never touch the
network directly — they return ``(dst, payload)`` pairs or accept inbox
entries — which keeps them unit-testable without a scheduler and lets the
consensus layer multiplex ``n`` simultaneous instances over one tag
namespace.

Properties provided (under ``n >= 3f + 1``):

* **Validity** — if the sender (commander) is correct with value ``v``,
  every correct process outputs ``v``.
* **Agreement** — all correct processes output the same value, even for a
  Byzantine sender.
* (Bracha adds **Totality**: if one correct process delivers, all do.)
"""

from __future__ import annotations

from typing import Any, Optional

__all__ = [
    "BROADCAST_KINDS",
    "BroadcastDefault",
    "broadcast_rounds",
    "majority",
    "make_broadcast",
]

#: Broadcast primitives constructible through :func:`make_broadcast` —
#: the construction-time vocabulary of ``RunSpec.broadcast`` (which also
#: accepts ``"atomic"``, a channel primitive with no state machine).
BROADCAST_KINDS = ("eig", "dolev-strong", "bracha")

#: Sentinel used as the default decision when a Byzantine sender's value
#: cannot be pinned down.  Protocol embeddings usually replace it with a
#: domain default (the paper never needs the default's actual value — a
#: detectably-faulty sender's input may be discarded or replaced).
BroadcastDefault = None


def majority(values: list[Any], default: Any = BroadcastDefault) -> Any:
    """Strict majority of ``values`` (by canonical equality), else default.

    NumPy arrays and nested tuples are compared via their canonical byte
    serialisation so that numerically identical vectors vote together.
    """
    from ..messages import canonical_bytes

    counts: dict[bytes, tuple[int, Any]] = {}
    for v in values:
        key = canonical_bytes(v)
        cnt, _ = counts.get(key, (0, v))
        counts[key] = (cnt + 1, v)
    if not counts:
        return default
    best_cnt, best_val = max(counts.values(), key=lambda t: t[0])
    if 2 * best_cnt > len(values):
        return best_val
    return default


def broadcast_rounds(kind: str, f: int) -> int:
    """Scheduler rounds one instance of ``kind`` occupies (sync kinds).

    Bracha is asynchronous — it has message phases, not lockstep rounds
    — so asking for its round count is a ``ValueError``.
    """
    if kind == "eig":
        from .om import eig_total_rounds

        return eig_total_rounds(f)
    if kind == "dolev-strong":
        from .dolev_strong import ds_total_rounds

        return ds_total_rounds(f)
    if kind == "bracha":
        raise ValueError("bracha is asynchronous; it has no round count")
    raise ValueError(f"unknown broadcast kind {kind!r}; choices {BROADCAST_KINDS}")


def make_broadcast(
    kind: str,
    n: int,
    f: int,
    sender: int,
    pid: int,
    *,
    scheme: Any = None,
    instance: Optional[Any] = None,
    default: Any = BroadcastDefault,
) -> Any:
    """Construct one broadcast state machine — the single entry surface.

    Protocol code selects a primitive by name instead of importing the
    concrete ``*State`` classes (whose constructors are implementation
    detail and whose modules sit behind the XPT003 seam allowlist):

    ``"eig"``
        :class:`~repro.system.broadcast.om.EIGState` — unauthenticated
        OM(f); ``scheme`` must be omitted.
    ``"dolev-strong"``
        :class:`~repro.system.broadcast.dolev_strong.DolevStrongState`
        — authenticated; requires a
        :class:`~repro.system.crypto.SignatureScheme`.  ``instance``
        defaults to ``sender`` (the convention of every current caller:
        one instance per commander).
    ``"bracha"``
        :class:`~repro.system.broadcast.bracha.BrachaState` — async
        reliable broadcast; takes neither scheme nor default.
    """
    if kind == "eig":
        if scheme is not None:
            raise ValueError("eig broadcast is unauthenticated; scheme must be None")
        from .om import EIGState

        return EIGState(n, f, sender, pid, default=default)
    if kind == "dolev-strong":
        if scheme is None:
            raise ValueError("dolev-strong broadcast requires a SignatureScheme")
        from .dolev_strong import DolevStrongState

        return DolevStrongState(
            n, f, sender, pid, scheme,
            instance=sender if instance is None else instance,
            default=default,
        )
    if kind == "bracha":
        if scheme is not None:
            raise ValueError("bracha broadcast is unauthenticated; scheme must be None")
        from .bracha import BrachaState

        return BrachaState(n, f, sender, pid)
    raise ValueError(f"unknown broadcast kind {kind!r}; choices {BROADCAST_KINDS}")
