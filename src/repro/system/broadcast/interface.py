"""Shared pieces of the broadcast protocol implementations.

All three broadcast protocols here (OM/EIG, Dolev–Strong, Bracha) are
implemented as *embeddable state machines*: a consensus process hosts one
machine per broadcast instance (e.g. one per input being disseminated) and
forwards the relevant rounds/messages.  The machines never touch the
network directly — they return ``(dst, payload)`` pairs or accept inbox
entries — which keeps them unit-testable without a scheduler and lets the
consensus layer multiplex ``n`` simultaneous instances over one tag
namespace.

Properties provided (under ``n >= 3f + 1``):

* **Validity** — if the sender (commander) is correct with value ``v``,
  every correct process outputs ``v``.
* **Agreement** — all correct processes output the same value, even for a
  Byzantine sender.
* (Bracha adds **Totality**: if one correct process delivers, all do.)
"""

from __future__ import annotations

from typing import Any

__all__ = ["BroadcastDefault", "majority"]

#: Sentinel used as the default decision when a Byzantine sender's value
#: cannot be pinned down.  Protocol embeddings usually replace it with a
#: domain default (the paper never needs the default's actual value — a
#: detectably-faulty sender's input may be discarded or replaced).
BroadcastDefault = None


def majority(values: list[Any], default: Any = BroadcastDefault) -> Any:
    """Strict majority of ``values`` (by canonical equality), else default.

    NumPy arrays and nested tuples are compared via their canonical byte
    serialisation so that numerically identical vectors vote together.
    """
    from ..messages import canonical_bytes

    counts: dict[bytes, tuple[int, Any]] = {}
    for v in values:
        key = canonical_bytes(v)
        cnt, _ = counts.get(key, (0, v))
        counts[key] = (cnt + 1, v)
    if not counts:
        return default
    best_cnt, best_val = max(counts.values(), key=lambda t: t[0])
    if 2 * best_cnt > len(values):
        return best_val
    return default
