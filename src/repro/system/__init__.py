"""Distributed-system simulation substrate.

A complete-graph message-passing system with up to ``f`` Byzantine
processes: process abstractions, FIFO network, synchronous (lockstep) and
asynchronous (adversarially scheduled) executors, a library of Byzantine
strategies, simulated signatures, and the three broadcast protocols the
consensus algorithms are built on.
"""

from .adversary import (
    Adversary,
    AdversaryView,
    ByzantineStrategy,
    CrashStrategy,
    DuplicateStrategy,
    EquivocateStrategy,
    HonestStrategy,
    MutateStrategy,
    SilentStrategy,
)
from .crypto import Signature, SignatureScheme
from .ids import ProcessId, Round, validate_system_size
from .messages import ALL, Message, canonical_bytes
from .network import Network, NetworkStats
from .process import AsyncProcess, Context, Inbox, SyncProcess
from .topology import (
    Topology,
    complete_topology,
    erdos_renyi_topology,
    random_regular_topology,
    ring_lattice_topology,
    wheel_of_cliques_topology,
)
from .scheduler import (
    AsyncScheduler,
    DelayPolicy,
    DeliveryPolicy,
    FifoPolicy,
    RandomPolicy,
    RunResult,
    SynchronousScheduler,
)

__all__ = [
    "ALL",
    "Adversary",
    "AdversaryView",
    "AsyncProcess",
    "AsyncScheduler",
    "ByzantineStrategy",
    "Context",
    "CrashStrategy",
    "DelayPolicy",
    "DeliveryPolicy",
    "DuplicateStrategy",
    "EquivocateStrategy",
    "FifoPolicy",
    "HonestStrategy",
    "Inbox",
    "Message",
    "MutateStrategy",
    "Network",
    "NetworkStats",
    "ProcessId",
    "RandomPolicy",
    "Round",
    "RunResult",
    "Signature",
    "SignatureScheme",
    "SilentStrategy",
    "SyncProcess",
    "SynchronousScheduler",
    "Topology",
    "canonical_bytes",
    "complete_topology",
    "erdos_renyi_topology",
    "random_regular_topology",
    "ring_lattice_topology",
    "validate_system_size",
    "wheel_of_cliques_topology",
]
