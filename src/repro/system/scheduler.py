"""Execution engines: lockstep synchronous rounds and adversarial async.

:class:`SynchronousScheduler`
    Runs :class:`~repro.system.process.SyncProcess` objects in rounds.
    Every message sent in round ``r`` arrives at the start of round
    ``r+1``.  Correct processes act first each round; the (rushing)
    adversary then transforms the faulty processes' traffic with full
    knowledge of the correct messages.

:class:`AsyncScheduler`
    Event-driven delivery, one message at a time, in an order chosen by a
    :class:`DeliveryPolicy`.  The built-in policies are seeded-random
    (fair with probability 1), global-FIFO, and :class:`DelayPolicy`
    (starve chosen victims as long as anything else is deliverable — the
    strongest schedule that is still *eventually* fair, which is what the
    asynchronous model permits).

Both return a :class:`RunResult` carrying decisions, transcript statistics
and the per-process contexts for post-hoc assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..obs import metrics as _obs
from ..obs.causal import get_causal_collector, use_causal_collector
from ..obs.metrics import MetricsRegistry, active_registry, use_registry
from ..obs.probes import Probe, ProbeReport, ProbeView
from ..obs.perf import NULL_PHASE, get_profiler
from ..obs.tracer import NULL_SPAN, get_tracer, trace_span
from .adversary import Adversary, AdversaryView
from .ids import validate_system_size
from .messages import Message
from .network import Network, NetworkStats
from .process import AsyncProcess, Context, SyncProcess

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import Topology

__all__ = [
    "RunResult",
    "SynchronousScheduler",
    "DeliveryPolicy",
    "RandomPolicy",
    "FifoPolicy",
    "DelayPolicy",
    "AsyncScheduler",
]


@dataclass
class RunResult:
    """Outcome of one execution.

    Attributes
    ----------
    decisions:
        pid -> decided value, for every process that decided (faulty
        processes running honest logic may appear here too; filter with
        ``correct_decisions``).
    rounds:
        Rounds executed (synchronous) or delivery steps (asynchronous).
    stats:
        Network transcript statistics.
    contexts:
        pid -> Context (exposes per-process state for assertions).
    faulty:
        The adversary's corruption set.
    completed:
        False when the run hit its round/step cap before all correct
        processes decided.
    metrics:
        The run's :class:`~repro.obs.metrics.MetricsRegistry` — network
        counters (``net.messages_sent``, ``net.bytes_estimate``, per-tag
        send/delivery counts), scheduler counters, and whatever the
        protocol/geometry layers recorded during the run (e.g.
        ``geometry.delta_star.seconds``).  Use ``metrics.snapshot()`` for
        a plain-data view.
    probes:
        One :class:`~repro.obs.probes.ProbeReport` per installed probe
        (empty when the run carried no probes).
    causal:
        The run's :class:`~repro.obs.causal.CausalCollector` when causal
        collection was enabled, else ``None``.
    """

    decisions: dict[int, Any]
    rounds: int
    stats: NetworkStats
    contexts: dict[int, Context]
    faulty: frozenset[int]
    completed: bool
    #: (round-or-step, message) pairs when recording was requested.
    transcript: Optional[list[tuple[int, Message]]] = None
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    probes: tuple[ProbeReport, ...] = ()
    causal: Optional[Any] = None

    @property
    def probe_violations(self) -> int:
        """Total invariant violations recorded across all probes."""
        return sum(len(report.violations) for report in self.probes)

    @property
    def correct_decisions(self) -> dict[int, Any]:
        """Decisions of the non-faulty processes only."""
        return {pid: v for pid, v in self.decisions.items() if pid not in self.faulty}


def _fold_network_stats(registry: MetricsRegistry, stats: NetworkStats) -> None:
    """Mirror the transcript statistics into the run's metric namespace."""
    registry.counter("net.messages_sent").value = stats.messages_sent
    registry.counter("net.messages_delivered").value = stats.messages_delivered
    registry.counter("net.bytes_estimate").value = stats.bytes_estimate
    for tag, count in stats.per_tag.items():
        registry.counter(f"net.sent.{tag}").value = count
    for tag, count in stats.per_tag_delivered.items():
        registry.counter(f"net.delivered.{tag}").value = count


def _make_contexts(
    n: int, f: int, rng: np.random.Generator
) -> dict[int, Context]:
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return {
        pid: Context(pid, n, f, np.random.default_rng(int(seeds[pid])))
        for pid in range(n)
    }


class SynchronousScheduler:
    """Lockstep-round executor with a rushing Byzantine adversary."""

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        f: int,
        adversary: Optional[Adversary] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        max_rounds: int = 10_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        topology: Optional["Topology"] = None,
        record_transcript: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        probes: Sequence[Probe] = (),
        collector: Optional[Any] = None,
    ):
        n = len(processes)
        validate_system_size(n, f)
        adversary = adversary or Adversary.none()
        if len(adversary.faulty) > f:
            raise ValueError(
                f"adversary corrupts {len(adversary.faulty)} > f={f} processes"
            )
        if topology is not None and topology.n != n:
            raise ValueError(
                f"topology has {topology.n} nodes for {n} processes"
            )
        self.n, self.f = n, f
        self.adversary = adversary
        self.processes: dict[int, SyncProcess] = {}
        for pid, proc in enumerate(processes):
            custom = adversary.custom_processes.get(pid)
            self.processes[pid] = custom if custom is not None else proc
        self.rng = rng or np.random.default_rng(0)
        self.max_rounds = int(max_rounds)
        self.sign = sign
        self.topology = topology
        self.record_transcript = bool(record_transcript)
        self.metrics = (
            metrics
            if metrics is not None
            else (active_registry() or MetricsRegistry())
        )
        self.probes = tuple(probes)
        self.collector = collector
        self.network = Network(n)
        self.contexts = _make_contexts(n, f, self.rng)
        self._adv_rng = np.random.default_rng(int(self.rng.integers(0, 2**63 - 1)))

    def run(self) -> RunResult:
        """Execute rounds until every correct process has decided (or cap)."""
        if self.collector is None:
            self.collector = get_causal_collector()
        self.network.collector = self.collector
        with use_causal_collector(self.collector), use_registry(
            self.metrics
        ) as reg, trace_span("sched.sync.run", n=self.n, f=self.f):
            return self._run(reg)

    def _run(self, reg: MetricsRegistry) -> RunResult:
        transcript: Optional[list[tuple[int, Message]]] = (
            [] if self.record_transcript else None
        )
        inboxes: dict[int, dict[int, list[tuple[str, Any]]]] = {
            pid: {} for pid in range(self.n)
        }
        completed = False
        rounds_done = 0
        collector = self.collector
        probe_view = (
            ProbeView(self.n, self.f, self.contexts, self.processes,
                      self.adversary.faulty)
            if self.probes else None
        )
        if probe_view is not None:
            for probe in self.probes:
                probe.attach(probe_view)
        prof = get_profiler()
        for r in range(self.max_rounds):
            rounds_done = r
            if collector.enabled:
                collector.now = r
            round_span = trace_span("sched.sync.round", round=r)
            round_phase = (
                prof.phase("sched.round") if prof.enabled else NULL_PHASE
            )
            with round_span, round_phase:
                correct_ids = [
                    p for p in range(self.n) if not self.adversary.is_faulty(p)
                ]
                faulty_ids = [
                    p for p in range(self.n) if self.adversary.is_faulty(p)
                ]

                # 1. Correct processes act on this round's inbox.
                for pid in correct_ids:
                    ctx = self.contexts[pid]
                    if ctx.halted:
                        continue
                    ctx.outbox = []
                    self.processes[pid].on_round(ctx, r, inboxes[pid])
                correct_msgs: list[Message] = []
                for pid in correct_ids:
                    correct_msgs.extend(self.contexts[pid].outbox)

                # 2. Faulty processes act; the rushing adversary transforms
                #    their traffic with the correct messages in view.
                view = AdversaryView(
                    round=r,
                    n=self.n,
                    f=self.f,
                    rng=self._adv_rng,
                    correct_outbox=tuple(correct_msgs),
                    sign=self.sign,
                )
                faulty_msgs: list[Message] = []
                for pid in faulty_ids:
                    ctx = self.contexts[pid]
                    if ctx.halted:
                        continue
                    ctx.outbox = []
                    self.processes[pid].on_round(ctx, r, inboxes[pid])
                    honest_count = len(ctx.outbox)
                    transformed = self.adversary.transform_outbox(
                        pid, ctx.outbox, view
                    )
                    faulty_msgs.extend(transformed)
                    reg.inc("sched.adversary.messages_in", honest_count)
                    reg.inc("sched.adversary.messages_out", len(transformed))

                # 3. Deliver everything for the next round (per-link FIFO).
                #    In incomplete graphs there is no channel across missing
                #    edges: those messages are dropped at submission — for
                #    Byzantine senders too (they cannot conjure wires).
                for msg in correct_msgs + faulty_msgs:
                    if (
                        self.topology is not None
                        and not msg.is_atomic_broadcast
                        and not self.topology.allows(msg.src, msg.dst)
                    ):
                        reg.inc("sched.sync.topology_drops")
                        continue
                    if transcript is not None:
                        transcript.append((r, msg))
                    self.network.submit(msg)
                reg.inc("sched.sync.rounds")
                round_span.tag(
                    sends=len(correct_msgs) + len(faulty_msgs),
                    adversary_sends=len(faulty_msgs),
                )
                inboxes = {pid: {} for pid in range(self.n)}
                for msg in self.network.drain_all():
                    send_eid = (
                        collector.pop_send(msg.src, msg.dst)
                        if collector.enabled else None
                    )
                    if msg.is_atomic_broadcast:
                        targets: Sequence[int] = (
                            range(self.n)
                            if self.topology is None
                            else (*self.topology.neighbors(msg.src), msg.src)
                        )
                    else:
                        targets = (msg.dst,)
                    for dst in targets:
                        if collector.enabled:
                            collector.on_deliver(dst, send_eid, time=r)
                        inboxes[dst].setdefault(msg.src, []).append(
                            (msg.tag, msg.payload)
                        )

                if probe_view is not None:
                    for probe in self.probes:
                        probe.on_boundary(probe_view, r)
                if all(
                    self.contexts[pid].decided or self.contexts[pid].halted
                    for pid in correct_ids
                ):
                    completed = True
                    rounds_done = r + 1
                    break

        for pid, proc in self.processes.items():
            proc.on_stop(self.contexts[pid])
        if probe_view is not None:
            for probe in self.probes:
                probe.on_finish(probe_view, rounds_done)
        decisions = {
            pid: ctx.decision for pid, ctx in self.contexts.items() if ctx.decided
        }
        _fold_network_stats(reg, self.network.stats)
        return RunResult(
            decisions=decisions,
            rounds=rounds_done,
            stats=self.network.stats,
            contexts=self.contexts,
            faulty=self.adversary.faulty,
            completed=completed,
            transcript=transcript,
            metrics=reg,
            probes=tuple(probe.report() for probe in self.probes),
            causal=self.collector if self.collector.enabled else None,
        )


# ---------------------------------------------------------------------------
# asynchronous execution
# ---------------------------------------------------------------------------


class DeliveryPolicy:
    """Chooses which pending link delivers next."""

    def choose(
        self, links: Sequence[tuple[int, int]], network: Network, rng: np.random.Generator
    ) -> tuple[int, int]:
        raise NotImplementedError


class RandomPolicy(DeliveryPolicy):
    """Uniformly random pending link (fair with probability 1)."""

    def choose(self, links, network, rng):
        return links[int(rng.integers(0, len(links)))]


class FifoPolicy(DeliveryPolicy):
    """Deliver the globally oldest message (by sender sequence number)."""

    def choose(self, links, network, rng):
        def age(link):
            msg = network.peek(link)
            return (msg.seq, link)

        return min(links, key=age)


class DelayPolicy(DeliveryPolicy):
    """Starve messages *to* the victim set while anything else is pending.

    Still eventually fair — victims' messages are delivered once nothing
    else remains — so this is a legal asynchronous schedule, and the worst
    one for convergence-style protocols.
    """

    def __init__(self, victims: Sequence[int], fallback: Optional[DeliveryPolicy] = None):
        self.victims = frozenset(int(v) for v in victims)
        self.fallback = fallback or RandomPolicy()
        #: Victim links skipped over the policy's lifetime (also mirrored
        #: to the ambient metrics registry as ``sched.policy.starved_links``).
        self.starved_links = 0

    def choose(self, links, network, rng):
        preferred = [lk for lk in links if lk[1] not in self.victims]
        if preferred and len(preferred) < len(links):
            starved = len(links) - len(preferred)
            self.starved_links += starved
            _obs.inc("sched.policy.starved_links", starved)
        pool = preferred if preferred else list(links)
        return self.fallback.choose(pool, network, rng)


class AsyncScheduler:
    """Event-driven executor: deliver one message per step, policy-ordered."""

    def __init__(
        self,
        processes: Sequence[AsyncProcess],
        f: int,
        adversary: Optional[Adversary] = None,
        *,
        policy: Optional[DeliveryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        max_steps: int = 1_000_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        stop_when_correct_decided: bool = True,
        record_transcript: bool = False,
        metrics: Optional[MetricsRegistry] = None,
        probes: Sequence[Probe] = (),
        probe_interval: int = 25,
        collector: Optional[Any] = None,
    ):
        n = len(processes)
        validate_system_size(n, f)
        adversary = adversary or Adversary.none()
        if len(adversary.faulty) > f:
            raise ValueError(
                f"adversary corrupts {len(adversary.faulty)} > f={f} processes"
            )
        self.n, self.f = n, f
        self.adversary = adversary
        self.processes: dict[int, AsyncProcess] = {}
        for pid, proc in enumerate(processes):
            custom = adversary.custom_processes.get(pid)
            self.processes[pid] = custom if custom is not None else proc
        self.policy = policy or RandomPolicy()
        self.rng = rng or np.random.default_rng(0)
        self.max_steps = int(max_steps)
        self.sign = sign
        self.stop_when_correct_decided = stop_when_correct_decided
        self.record_transcript = bool(record_transcript)
        self.metrics = (
            metrics
            if metrics is not None
            else (active_registry() or MetricsRegistry())
        )
        self.probes = tuple(probes)
        self.probe_interval = max(1, int(probe_interval))
        self.collector = collector
        self.network = Network(n)
        self.contexts = _make_contexts(n, f, self.rng)
        self._adv_rng = np.random.default_rng(int(self.rng.integers(0, 2**63 - 1)))

    def _flush_outbox(self, pid: int) -> None:
        ctx = self.contexts[pid]
        msgs = ctx.outbox
        ctx.outbox = []
        if self.adversary.is_faulty(pid):
            view = AdversaryView(
                round=None,
                n=self.n,
                f=self.f,
                rng=self._adv_rng,
                sign=self.sign,
            )
            honest_count = len(msgs)
            msgs = self.adversary.transform_outbox(pid, msgs, view)
            self.metrics.inc("sched.adversary.messages_in", honest_count)
            self.metrics.inc("sched.adversary.messages_out", len(msgs))
        for msg in msgs:
            self.network.submit(msg)

    def run(self) -> RunResult:
        """Deliver messages until all correct processes decide (or cap)."""
        if self.collector is None:
            self.collector = get_causal_collector()
        self.network.collector = self.collector
        with use_causal_collector(self.collector), use_registry(
            self.metrics
        ) as reg, trace_span(
            "sched.async.run",
            n=self.n,
            f=self.f,
            policy=type(self.policy).__name__,
        ):
            return self._run(reg)

    def _run(self, reg: MetricsRegistry) -> RunResult:
        transcript: Optional[list[tuple[int, Message]]] = (
            [] if self.record_transcript else None
        )
        queue_gauge = reg.gauge(
            f"sched.async.queue_depth.{type(self.policy).__name__}"
        )
        collector = self.collector
        if collector.enabled:
            collector.now = 0
        probe_view = (
            ProbeView(self.n, self.f, self.contexts, self.processes,
                      self.adversary.faulty)
            if self.probes else None
        )
        if probe_view is not None:
            for probe in self.probes:
                probe.attach(probe_view)
        for pid in range(self.n):
            self.processes[pid].on_start(self.contexts[pid])
            self._flush_outbox(pid)

        correct_ids = [p for p in range(self.n) if not self.adversary.is_faulty(p)]
        steps = 0
        completed = False
        prof = get_profiler()
        while steps < self.max_steps:
            if self.stop_when_correct_decided and all(
                self.contexts[p].decided for p in correct_ids
            ):
                completed = True
                break
            links = self.network.pending_links()
            if not links:
                completed = all(self.contexts[p].decided for p in correct_ids)
                break
            queue_gauge.set(self.network.pending_count())
            link = self.policy.choose(links, self.network, self.rng)
            msg = self.network.pop(link)
            steps += 1
            send_eid = None
            if collector.enabled:
                collector.now = steps
                send_eid = collector.pop_send(msg.src, msg.dst)
            if transcript is not None:
                transcript.append((steps, msg))
            tracer = get_tracer()
            step_span = (
                tracer.span("sched.async.step", step=steps, src=msg.src,
                            dst=msg.dst, tag=msg.tag)
                if tracer.enabled
                else NULL_SPAN
            )
            step_phase = (
                prof.phase("sched.step") if prof.enabled else NULL_PHASE
            )
            with step_span, step_phase:
                targets = range(self.n) if msg.is_atomic_broadcast else (msg.dst,)
                for dst in targets:
                    ctx = self.contexts[dst]
                    if ctx.halted:
                        continue
                    if collector.enabled:
                        collector.on_deliver(dst, send_eid, time=steps)
                    self.processes[dst].on_message(
                        ctx, msg.src, msg.tag, msg.payload
                    )
                    self._flush_outbox(dst)
            if probe_view is not None and steps % self.probe_interval == 0:
                for probe in self.probes:
                    probe.on_boundary(probe_view, steps)

        for pid, proc in self.processes.items():
            proc.on_stop(self.contexts[pid])
        if probe_view is not None:
            for probe in self.probes:
                probe.on_finish(probe_view, steps)
        decisions = {
            pid: ctx.decision for pid, ctx in self.contexts.items() if ctx.decided
        }
        reg.counter("sched.async.steps").value = steps
        reg.counter("sched.async.undelivered").value = self.network.pending_count()
        _fold_network_stats(reg, self.network.stats)
        return RunResult(
            decisions=decisions,
            rounds=steps,
            stats=self.network.stats,
            contexts=self.contexts,
            faulty=self.adversary.faulty,
            completed=completed,
            transcript=transcript,
            metrics=reg,
            probes=tuple(probe.report() for probe in self.probes),
            causal=self.collector if self.collector.enabled else None,
        )
