"""Execution engines: lockstep synchronous rounds and adversarial async.

:class:`SynchronousScheduler`
    Runs :class:`~repro.system.process.SyncProcess` objects in rounds.
    Every message sent in round ``r`` arrives at the start of round
    ``r+1``.  Correct processes act first each round; the (rushing)
    adversary then transforms the faulty processes' traffic with full
    knowledge of the correct messages.

:class:`AsyncScheduler`
    Event-driven delivery, one message at a time, in an order chosen by a
    :class:`DeliveryPolicy`.  The built-in policies are seeded-random
    (fair with probability 1), global-FIFO, and :class:`DelayPolicy`
    (starve chosen victims as long as anything else is deliverable — the
    strongest schedule that is still *eventually* fair, which is what the
    asynchronous model permits).

Both return a :class:`RunResult` carrying decisions, transcript statistics
and the per-process contexts for post-hoc assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from .adversary import Adversary, AdversaryView
from .ids import validate_system_size
from .messages import Message
from .network import Network, NetworkStats
from .process import AsyncProcess, Context, SyncProcess

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .topology import Topology

__all__ = [
    "RunResult",
    "SynchronousScheduler",
    "DeliveryPolicy",
    "RandomPolicy",
    "FifoPolicy",
    "DelayPolicy",
    "AsyncScheduler",
]


@dataclass
class RunResult:
    """Outcome of one execution.

    Attributes
    ----------
    decisions:
        pid -> decided value, for every process that decided (faulty
        processes running honest logic may appear here too; filter with
        ``correct_decisions``).
    rounds:
        Rounds executed (synchronous) or delivery steps (asynchronous).
    stats:
        Network transcript statistics.
    contexts:
        pid -> Context (exposes per-process state for assertions).
    faulty:
        The adversary's corruption set.
    completed:
        False when the run hit its round/step cap before all correct
        processes decided.
    """

    decisions: dict[int, Any]
    rounds: int
    stats: NetworkStats
    contexts: dict[int, Context]
    faulty: frozenset[int]
    completed: bool
    #: (round-or-step, message) pairs when recording was requested.
    transcript: Optional[list[tuple[int, Message]]] = None

    @property
    def correct_decisions(self) -> dict[int, Any]:
        """Decisions of the non-faulty processes only."""
        return {pid: v for pid, v in self.decisions.items() if pid not in self.faulty}


def _make_contexts(
    n: int, f: int, rng: np.random.Generator
) -> dict[int, Context]:
    seeds = rng.integers(0, 2**63 - 1, size=n)
    return {
        pid: Context(pid, n, f, np.random.default_rng(int(seeds[pid])))
        for pid in range(n)
    }


class SynchronousScheduler:
    """Lockstep-round executor with a rushing Byzantine adversary."""

    def __init__(
        self,
        processes: Sequence[SyncProcess],
        f: int,
        adversary: Optional[Adversary] = None,
        *,
        rng: Optional[np.random.Generator] = None,
        max_rounds: int = 10_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        topology: Optional["Topology"] = None,
        record_transcript: bool = False,
    ):
        n = len(processes)
        validate_system_size(n, f)
        adversary = adversary or Adversary.none()
        if len(adversary.faulty) > f:
            raise ValueError(
                f"adversary corrupts {len(adversary.faulty)} > f={f} processes"
            )
        if topology is not None and topology.n != n:
            raise ValueError(
                f"topology has {topology.n} nodes for {n} processes"
            )
        self.n, self.f = n, f
        self.adversary = adversary
        self.processes: dict[int, SyncProcess] = {}
        for pid, proc in enumerate(processes):
            custom = adversary.custom_processes.get(pid)
            self.processes[pid] = custom if custom is not None else proc
        self.rng = rng or np.random.default_rng(0)
        self.max_rounds = int(max_rounds)
        self.sign = sign
        self.topology = topology
        self.record_transcript = bool(record_transcript)
        self.network = Network(n)
        self.contexts = _make_contexts(n, f, self.rng)
        self._adv_rng = np.random.default_rng(int(self.rng.integers(0, 2**63 - 1)))

    def run(self) -> RunResult:
        """Execute rounds until every correct process has decided (or cap)."""
        transcript: Optional[list[tuple[int, Message]]] = (
            [] if self.record_transcript else None
        )
        inboxes: dict[int, dict[int, list[tuple[str, Any]]]] = {
            pid: {} for pid in range(self.n)
        }
        completed = False
        rounds_done = 0
        for r in range(self.max_rounds):
            rounds_done = r
            correct_ids = [p for p in range(self.n) if not self.adversary.is_faulty(p)]
            faulty_ids = [p for p in range(self.n) if self.adversary.is_faulty(p)]

            # 1. Correct processes act on this round's inbox.
            for pid in correct_ids:
                ctx = self.contexts[pid]
                if ctx.halted:
                    continue
                ctx.outbox = []
                self.processes[pid].on_round(ctx, r, inboxes[pid])
            correct_msgs: list[Message] = []
            for pid in correct_ids:
                correct_msgs.extend(self.contexts[pid].outbox)

            # 2. Faulty processes act; the rushing adversary transforms
            #    their traffic with the correct messages in view.
            view = AdversaryView(
                round=r,
                n=self.n,
                f=self.f,
                rng=self._adv_rng,
                correct_outbox=tuple(correct_msgs),
                sign=self.sign,
            )
            faulty_msgs: list[Message] = []
            for pid in faulty_ids:
                ctx = self.contexts[pid]
                if ctx.halted:
                    continue
                ctx.outbox = []
                self.processes[pid].on_round(ctx, r, inboxes[pid])
                faulty_msgs.extend(
                    self.adversary.transform_outbox(pid, ctx.outbox, view)
                )

            # 3. Deliver everything for the next round (per-link FIFO).
            #    In incomplete graphs there is no channel across missing
            #    edges: those messages are dropped at submission — for
            #    Byzantine senders too (they cannot conjure wires).
            for msg in correct_msgs + faulty_msgs:
                if (
                    self.topology is not None
                    and not msg.is_atomic_broadcast
                    and not self.topology.allows(msg.src, msg.dst)
                ):
                    continue
                if transcript is not None:
                    transcript.append((r, msg))
                self.network.submit(msg)
            inboxes = {pid: {} for pid in range(self.n)}
            for msg in self.network.drain_all():
                if msg.is_atomic_broadcast:
                    targets: Sequence[int] = (
                        range(self.n)
                        if self.topology is None
                        else (*self.topology.neighbors(msg.src), msg.src)
                    )
                else:
                    targets = (msg.dst,)
                for dst in targets:
                    inboxes[dst].setdefault(msg.src, []).append(
                        (msg.tag, msg.payload)
                    )

            if all(
                self.contexts[pid].decided or self.contexts[pid].halted
                for pid in correct_ids
            ):
                completed = True
                rounds_done = r + 1
                break

        for pid, proc in self.processes.items():
            proc.on_stop(self.contexts[pid])
        decisions = {
            pid: ctx.decision for pid, ctx in self.contexts.items() if ctx.decided
        }
        return RunResult(
            decisions=decisions,
            rounds=rounds_done,
            stats=self.network.stats,
            contexts=self.contexts,
            faulty=self.adversary.faulty,
            completed=completed,
            transcript=transcript,
        )


# ---------------------------------------------------------------------------
# asynchronous execution
# ---------------------------------------------------------------------------


class DeliveryPolicy:
    """Chooses which pending link delivers next."""

    def choose(
        self, links: Sequence[tuple[int, int]], network: Network, rng: np.random.Generator
    ) -> tuple[int, int]:
        raise NotImplementedError


class RandomPolicy(DeliveryPolicy):
    """Uniformly random pending link (fair with probability 1)."""

    def choose(self, links, network, rng):
        return links[int(rng.integers(0, len(links)))]


class FifoPolicy(DeliveryPolicy):
    """Deliver the globally oldest message (by sender sequence number)."""

    def choose(self, links, network, rng):
        def age(link):
            msg = network.peek(link)
            return (msg.seq, link)

        return min(links, key=age)


class DelayPolicy(DeliveryPolicy):
    """Starve messages *to* the victim set while anything else is pending.

    Still eventually fair — victims' messages are delivered once nothing
    else remains — so this is a legal asynchronous schedule, and the worst
    one for convergence-style protocols.
    """

    def __init__(self, victims: Sequence[int], fallback: Optional[DeliveryPolicy] = None):
        self.victims = frozenset(int(v) for v in victims)
        self.fallback = fallback or RandomPolicy()

    def choose(self, links, network, rng):
        preferred = [lk for lk in links if lk[1] not in self.victims]
        pool = preferred if preferred else list(links)
        return self.fallback.choose(pool, network, rng)


class AsyncScheduler:
    """Event-driven executor: deliver one message per step, policy-ordered."""

    def __init__(
        self,
        processes: Sequence[AsyncProcess],
        f: int,
        adversary: Optional[Adversary] = None,
        *,
        policy: Optional[DeliveryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        max_steps: int = 1_000_000,
        sign: Optional[Callable[[int, Any], Any]] = None,
        stop_when_correct_decided: bool = True,
        record_transcript: bool = False,
    ):
        n = len(processes)
        validate_system_size(n, f)
        adversary = adversary or Adversary.none()
        if len(adversary.faulty) > f:
            raise ValueError(
                f"adversary corrupts {len(adversary.faulty)} > f={f} processes"
            )
        self.n, self.f = n, f
        self.adversary = adversary
        self.processes: dict[int, AsyncProcess] = {}
        for pid, proc in enumerate(processes):
            custom = adversary.custom_processes.get(pid)
            self.processes[pid] = custom if custom is not None else proc
        self.policy = policy or RandomPolicy()
        self.rng = rng or np.random.default_rng(0)
        self.max_steps = int(max_steps)
        self.sign = sign
        self.stop_when_correct_decided = stop_when_correct_decided
        self.record_transcript = bool(record_transcript)
        self.network = Network(n)
        self.contexts = _make_contexts(n, f, self.rng)
        self._adv_rng = np.random.default_rng(int(self.rng.integers(0, 2**63 - 1)))

    def _flush_outbox(self, pid: int) -> None:
        ctx = self.contexts[pid]
        msgs = ctx.outbox
        ctx.outbox = []
        if self.adversary.is_faulty(pid):
            view = AdversaryView(
                round=None,
                n=self.n,
                f=self.f,
                rng=self._adv_rng,
                sign=self.sign,
            )
            msgs = self.adversary.transform_outbox(pid, msgs, view)
        for msg in msgs:
            self.network.submit(msg)

    def run(self) -> RunResult:
        """Deliver messages until all correct processes decide (or cap)."""
        transcript: Optional[list[tuple[int, Message]]] = (
            [] if self.record_transcript else None
        )
        for pid in range(self.n):
            self.processes[pid].on_start(self.contexts[pid])
            self._flush_outbox(pid)

        correct_ids = [p for p in range(self.n) if not self.adversary.is_faulty(p)]
        steps = 0
        completed = False
        while steps < self.max_steps:
            if self.stop_when_correct_decided and all(
                self.contexts[p].decided for p in correct_ids
            ):
                completed = True
                break
            links = self.network.pending_links()
            if not links:
                completed = all(self.contexts[p].decided for p in correct_ids)
                break
            link = self.policy.choose(links, self.network, self.rng)
            msg = self.network.pop(link)
            steps += 1
            if transcript is not None:
                transcript.append((steps, msg))
            targets = range(self.n) if msg.is_atomic_broadcast else (msg.dst,)
            for dst in targets:
                ctx = self.contexts[dst]
                if ctx.halted:
                    continue
                self.processes[dst].on_message(ctx, msg.src, msg.tag, msg.payload)
                self._flush_outbox(dst)

        for pid, proc in self.processes.items():
            proc.on_stop(self.contexts[pid])
        decisions = {
            pid: ctx.decision for pid, ctx in self.contexts.items() if ctx.decided
        }
        return RunResult(
            decisions=decisions,
            rounds=steps,
            stats=self.network.stats,
            contexts=self.contexts,
            faulty=self.adversary.faulty,
            completed=completed,
            transcript=transcript,
        )
