"""Process identifiers and small shared types for the simulator.

Processes are identified by dense integer ids ``0 .. n-1``, matching the
paper's "processes 1..n" (0-based here).  The type aliases keep signatures
readable without inventing wrapper classes the hot paths would pay for.
"""

from __future__ import annotations

from typing import NewType

__all__ = ["ProcessId", "Round", "validate_system_size"]

ProcessId = NewType("ProcessId", int)
Round = NewType("Round", int)


def validate_system_size(n: int, f: int) -> None:
    """Validate a system of ``n`` processes with up to ``f`` Byzantine.

    The paper assumes ``n >= 2`` (consensus is trivial for one process)
    and ``0 <= f < n``.
    """
    if n < 2:
        raise ValueError(f"need at least 2 processes, got n={n}")
    if not 0 <= f < n:
        raise ValueError(f"need 0 <= f < n, got n={n}, f={f}")
