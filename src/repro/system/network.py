"""The complete-graph message transport with per-link FIFO order.

The paper's model: "a complete network ... a reliable communication channel
from every process to each of the remaining processes."  The network never
loses, duplicates, or corrupts messages; all misbehaviour comes from
Byzantine *processes* and (in the asynchronous model) from adversarial
*delivery timing*.  :class:`Network` is therefore a buffer that preserves
per-link FIFO order and collects transcript statistics; the scheduler
decides *when* each buffered message is delivered.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, Optional

from ..obs.causal import NULL_COLLECTOR
from .messages import Message

__all__ = ["Network", "NetworkStats"]


@dataclass
class NetworkStats:
    """Aggregate transcript statistics for one execution.

    ``per_tag`` counts *sends* and ``per_tag_delivered`` counts
    *deliveries*; they differ when the run ends with messages still
    buffered (async runs stopped at decision) or when the scheduler drops
    traffic at submission (missing topology edges).
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_estimate: int = 0
    per_tag: dict[str, int] = field(default_factory=dict)
    per_tag_delivered: dict[str, int] = field(default_factory=dict)

    def record_send(self, msg: Message) -> None:
        self.messages_sent += 1
        self.bytes_estimate += msg.estimated_size()
        self.per_tag[msg.tag] = self.per_tag.get(msg.tag, 0) + 1

    def record_delivery(self, msg: Message) -> None:
        self.messages_delivered += 1
        self.per_tag_delivered[msg.tag] = (
            self.per_tag_delivered.get(msg.tag, 0) + 1
        )

    def as_dict(self) -> dict:
        """Plain-data view (merged into ``RunResult.metrics``)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bytes_estimate": self.bytes_estimate,
            "per_tag": dict(self.per_tag),
            "per_tag_delivered": dict(self.per_tag_delivered),
        }


class Network:
    """FIFO buffers for every ordered pair of processes."""

    def __init__(self, n: int):
        self.n = int(n)
        self._links: dict[tuple[int, int], Deque[Message]] = defaultdict(deque)
        self.stats = NetworkStats()
        #: Causal collector stamping sends (schedulers install theirs at
        #: run start; the shared null object keeps the default free).
        self.collector = NULL_COLLECTOR

    def submit(self, msg: Message) -> None:
        """Accept a message into the (src, dst) link buffer.

        ``dst = ALL`` (atomic broadcast) occupies its own logical link per
        sender; the scheduler fans it out to every process on delivery.
        """
        if not 0 <= msg.src < self.n:
            raise ValueError(f"message endpoints out of range: {msg!r}")
        if not (msg.is_atomic_broadcast or 0 <= msg.dst < self.n):
            raise ValueError(f"message endpoints out of range: {msg!r}")
        self._links[(msg.src, msg.dst)].append(msg)
        self.stats.record_send(msg)
        collector = self.collector
        if collector.enabled:
            collector.on_send(msg.src, msg.dst, msg.tag, seq=msg.seq,
                              round=msg.round)

    def pending_links(self) -> list[tuple[int, int]]:
        """Links with at least one undelivered message (deterministic order)."""
        return sorted(link for link, q in self._links.items() if q)

    def peek(self, link: tuple[int, int]) -> Optional[Message]:
        """Head-of-line message on a link, without removing it."""
        q = self._links.get(link)
        return q[0] if q else None

    def pop(self, link: tuple[int, int]) -> Message:
        """Deliver (remove) the head-of-line message on a link."""
        q = self._links.get(link)
        if not q:
            raise KeyError(f"no pending message on link {link}")
        msg = q.popleft()
        self.stats.record_delivery(msg)
        return msg

    def pending_count(self) -> int:
        """Total undelivered messages."""
        return sum(len(q) for q in self._links.values())

    def drain_all(self) -> Iterator[Message]:
        """Deliver everything, link by link (synchronous round flush)."""
        for link in self.pending_links():
            q = self._links[link]
            while q:
                msg = q.popleft()
                self.stats.record_delivery(msg)
                yield msg
