"""Message envelopes exchanged through the simulated network.

A message is an immutable envelope ``(src, dst, tag, payload)`` plus
bookkeeping (send sequence number, logical round for synchronous
executions).  Payloads are ordinary Python objects; protocols define their
own payload structures (e.g. EIG relay tuples, Bracha phase records).

``canonical_bytes`` provides a deterministic serialisation used by the
simulated signature scheme — NumPy arrays are serialised via shape+dtype+
data bytes so that numerically identical vectors sign identically.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = ["ALL", "Message", "canonical_bytes"]


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic byte serialisation for signing/hashing.

    Converts NumPy arrays (at any nesting depth inside tuples/lists/dicts)
    to a canonical ``(shape, dtype, bytes)`` form, then pickles with
    protocol 4 — stable for the value types protocols exchange here.
    """

    def canon(x: Any) -> Any:
        if isinstance(x, np.ndarray):
            return ("__ndarray__", x.shape, str(x.dtype), x.tobytes())
        if isinstance(x, np.generic):
            return ("__npscalar__", str(x.dtype), x.item())
        if isinstance(x, dict):
            return ("__dict__", tuple(sorted((canon(k), canon(v)) for k, v in x.items())))
        if isinstance(x, (list, tuple)):
            return tuple(canon(v) for v in x)
        return x

    return pickle.dumps(canon(obj), protocol=4)


#: Destination sentinel for channel-level atomic broadcast: the network
#: delivers one identical copy to every process.  Models the paper's
#: footnote 3 ("when the underlying network is a reliable broadcast
#: channel") — equivocation is physically impossible on such a channel.
ALL = -1


@dataclass(frozen=True)
class Message:
    """One envelope in flight.

    Attributes
    ----------
    src, dst:
        Sender and receiver process ids; ``dst = ALL`` (-1) is a
        channel-level atomic broadcast.
    tag:
        Protocol-level tag (e.g. ``"eig"``, ``"echo"``, ``"rva"``), letting
        multiple sub-protocols multiplex one network.
    payload:
        Arbitrary protocol data.
    round:
        Logical round for synchronous executions (None in async runs).
    seq:
        Per-sender send sequence number; preserves per-link FIFO order.
    """

    src: int
    dst: int
    tag: str
    payload: Any
    round: Optional[int] = None
    seq: int = field(default=0, compare=False)

    @property
    def is_atomic_broadcast(self) -> bool:
        """True when this envelope is a channel-level broadcast."""
        return self.dst == ALL

    def __repr__(self) -> str:  # compact transcript-friendly form
        r = f", r={self.round}" if self.round is not None else ""
        return f"Msg({self.src}->{self.dst} {self.tag}{r})"
