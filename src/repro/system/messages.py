"""Message envelopes exchanged through the simulated network.

A message is an immutable envelope ``(src, dst, tag, payload)`` plus
bookkeeping (send sequence number, logical round for synchronous
executions).  Payloads are ordinary Python objects; protocols define their
own payload structures (e.g. EIG relay tuples, Bracha phase records).

``canonical_bytes`` provides a deterministic serialisation used by the
simulated signature scheme — NumPy arrays are serialised via shape+dtype+
data bytes so that numerically identical vectors sign identically.
"""

from __future__ import annotations

import copy
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

__all__ = [
    "ALL",
    "Message",
    "canonical_bytes",
    "defensive_copy",
    "estimate_bytes",
]


#: Assumed wire cost of fixed-width fields (ids, seq, round, framing).
_ENVELOPE_BYTES = 24
_SCALAR_BYTES = 8


def estimate_bytes(obj: Any) -> int:
    """Cheap wire-size estimate of a payload object, in bytes.

    Deliberately *not* ``len(pickle.dumps(...))`` — this runs on every
    ``Network.submit`` so it must stay allocation-light.  Scalars count 8
    bytes, strings/bytes their length, NumPy arrays their buffer size,
    containers the sum of their items plus a small per-item overhead.
    """
    if obj is None or isinstance(obj, (int, float, bool, np.generic)):
        return _SCALAR_BYTES
    if isinstance(obj, (str, bytes)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (tuple, list, set, frozenset)):
        return 2 + sum(estimate_bytes(v) for v in obj)
    if isinstance(obj, dict):
        return 2 + sum(
            estimate_bytes(k) + estimate_bytes(v) for k, v in obj.items()
        )
    # Unknown protocol object (e.g. a Signature dataclass): fall back to
    # its instance dict when present, else one scalar slot.
    d = getattr(obj, "__dict__", None)
    if d:
        return estimate_bytes(d)
    return _SCALAR_BYTES


_IMMUTABLE = (int, float, bool, str, bytes, frozenset, type(None))


def defensive_copy(obj: Any) -> Any:
    """Deep copy of a payload that a handler retains past its own return.

    A handler that both *stores* an in-flight payload and *forwards* it
    (or returns it to the caller) aliases one object into two lifetimes:
    a mutation through either reference silently corrupts the other — in
    a Byzantine-fault simulator that can masquerade as equivocation.
    Retained payloads must go through this helper (enforced by the HYG002
    lint rule).  Immutable scalars are returned as-is.
    """
    if isinstance(obj, _IMMUTABLE):
        return obj
    return copy.deepcopy(obj)


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic byte serialisation for signing/hashing.

    Converts NumPy arrays (at any nesting depth inside tuples/lists/dicts)
    to a canonical ``(shape, dtype, bytes)`` form, then pickles with
    protocol 4 — stable for the value types protocols exchange here.
    """

    def canon(x: Any) -> Any:
        if isinstance(x, np.ndarray):
            return ("__ndarray__", x.shape, str(x.dtype), x.tobytes())
        if isinstance(x, np.generic):
            return ("__npscalar__", str(x.dtype), x.item())
        if isinstance(x, dict):
            return ("__dict__", tuple(sorted((canon(k), canon(v)) for k, v in x.items())))
        if isinstance(x, (list, tuple)):
            return tuple(canon(v) for v in x)
        return x

    return pickle.dumps(canon(obj), protocol=4)


#: Destination sentinel for channel-level atomic broadcast: the network
#: delivers one identical copy to every process.  Models the paper's
#: footnote 3 ("when the underlying network is a reliable broadcast
#: channel") — equivocation is physically impossible on such a channel.
ALL = -1


@dataclass(frozen=True)
class Message:
    """One envelope in flight.

    Attributes
    ----------
    src, dst:
        Sender and receiver process ids; ``dst = ALL`` (-1) is a
        channel-level atomic broadcast.
    tag:
        Protocol-level tag (e.g. ``"eig"``, ``"echo"``, ``"rva"``), letting
        multiple sub-protocols multiplex one network.
    payload:
        Arbitrary protocol data.
    round:
        Logical round for synchronous executions (None in async runs).
    seq:
        Per-sender send sequence number; preserves per-link FIFO order.
    """

    src: int
    dst: int
    tag: str
    payload: Any
    round: Optional[int] = None
    seq: int = field(default=0, compare=False)

    @property
    def is_atomic_broadcast(self) -> bool:
        """True when this envelope is a channel-level broadcast."""
        return self.dst == ALL

    def estimated_size(self) -> int:
        """Wire-size estimate: envelope + tag + payload (bytes)."""
        return _ENVELOPE_BYTES + len(self.tag) + estimate_bytes(self.payload)

    def __repr__(self) -> str:  # compact transcript-friendly form
        r = f", r={self.round}" if self.round is not None else ""
        return f"Msg({self.src}->{self.dst} {self.tag}{r})"
