"""Network topologies for incomplete-graph executions.

The paper's §2 points at iterative Byzantine vector consensus in
*incomplete* graphs (Vaidya, ICDCN 2014): processes only exchange values
with graph neighbours.  :class:`Topology` wraps a networkx graph with the
validation and queries the schedulers and iterative algorithms need, plus
generators for the topologies the benchmarks sweep.

In the simulator, a topology is a property of the *network*: there simply
is no channel between non-adjacent processes, so messages addressed
across a missing edge are dropped (for correct and Byzantine senders
alike — a Byzantine process cannot conjure wires).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

__all__ = [
    "Topology",
    "complete_topology",
    "ring_lattice_topology",
    "random_regular_topology",
    "erdos_renyi_topology",
    "wheel_of_cliques_topology",
]


class Topology:
    """An undirected communication graph over processes ``0..n-1``."""

    def __init__(self, graph: nx.Graph):
        n = graph.number_of_nodes()
        if set(graph.nodes) != set(range(n)):
            raise ValueError("topology nodes must be exactly 0..n-1")
        if any(graph.has_edge(v, v) for v in graph.nodes):
            raise ValueError("self-loops are implicit; remove them from the graph")
        self.graph = graph
        self.n = n

    # ----------------------------------------------------------------- query
    def neighbors(self, pid: int) -> tuple[int, ...]:
        """Sorted neighbour ids of ``pid`` (excluding ``pid`` itself)."""
        return tuple(sorted(self.graph.neighbors(pid)))

    def degree(self, pid: int) -> int:
        return self.graph.degree[pid]

    def min_degree(self) -> int:
        return min(dict(self.graph.degree).values())

    def allows(self, src: int, dst: int) -> bool:
        """True when a channel exists (self-delivery always allowed)."""
        return src == dst or self.graph.has_edge(src, dst)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    def diameter(self) -> int:
        return nx.diameter(self.graph)

    # ----------------------------------------------------- feasibility hints
    def supports_iterative_bvc(self, d: int, f: int) -> bool:
        """Degree condition for the Γ-based iterative *update* to be live.

        Each process needs its closed neighbourhood to contain at least
        ``(d+1)f + 1`` values so that ``Γ(neighbourhood multiset)`` is
        guaranteed nonempty by Tverberg.  This guarantees every step is
        well-defined and safe; it does **not** by itself guarantee
        ε-agreement against equivocating Byzantine neighbours on sparse
        graphs — the exact convergence characterisation is the open
        necessary-vs-sufficient gap of Vaidya 2014, and the benchmark
        `bench_iterative.py` makes that gap visible empirically.
        """
        # Function-level import: core.__init__ reaches back into
        # system/ modules, so a module-level core.bounds import here
        # would close an import cycle.
        from ..core.bounds import tverberg_min_n

        return self.min_degree() + 1 >= tverberg_min_n(d, f)

    def __repr__(self) -> str:
        return (
            f"Topology(n={self.n}, edges={self.graph.number_of_edges()}, "
            f"min_deg={self.min_degree()})"
        )


# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

def complete_topology(n: int) -> Topology:
    """The paper's base model: every pair connected."""
    return Topology(nx.complete_graph(n))


def ring_lattice_topology(n: int, k: int) -> Topology:
    """Ring lattice: each node connected to its ``k`` nearest neighbours
    on each side (a classic low-diameter sparse topology)."""
    if not 1 <= k < n / 2 + 1:
        raise ValueError(f"need 1 <= k <= n/2, got k={k}, n={n}")
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(n):
        for j in range(1, k + 1):
            g.add_edge(i, (i + j) % n)
    return Topology(g)


def random_regular_topology(n: int, degree: int, seed: int = 0) -> Topology:
    """Random ``degree``-regular graph (retries until connected)."""
    if degree >= n:
        raise ValueError(f"degree {degree} must be < n={n}")
    for attempt in range(50):
        g = nx.random_regular_graph(degree, n, seed=seed + attempt)
        if nx.is_connected(g):
            return Topology(nx.convert_node_labels_to_integers(g))
    raise RuntimeError("failed to sample a connected regular graph")


def erdos_renyi_topology(
    n: int, p: float, seed: int = 0, min_degree: Optional[int] = None
) -> Topology:
    """Erdős–Rényi graph, resampled until connected (and min-degree met)."""
    for attempt in range(200):
        g = nx.erdos_renyi_graph(n, p, seed=seed + attempt)
        if not nx.is_connected(g):
            continue
        if min_degree is not None and min(dict(g.degree).values()) < min_degree:
            continue
        return Topology(g)
    raise RuntimeError(f"no connected G(n={n}, p={p}) found; raise p")


def wheel_of_cliques_topology(num_cliques: int, clique_size: int) -> Topology:
    """Cliques arranged on a ring, adjacent cliques fully inter-connected.

    A clustered topology where local degree is high but global mixing is
    slow — the regime where iterative consensus convergence visibly pays
    for the graph diameter.
    """
    if num_cliques < 3 or clique_size < 1:
        raise ValueError("need >= 3 cliques of >= 1 node")
    n = num_cliques * clique_size
    g = nx.Graph()
    g.add_nodes_from(range(n))
    members = [
        list(range(c * clique_size, (c + 1) * clique_size))
        for c in range(num_cliques)
    ]
    for c, nodes in enumerate(members):
        for i in nodes:
            for j in nodes:
                if i < j:
                    g.add_edge(i, j)
        for i in nodes:
            for j in members[(c + 1) % num_cliques]:
                g.add_edge(i, j)
    return Topology(g)
