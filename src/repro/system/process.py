"""Process abstractions and the execution contexts handed to them.

Two execution models, matching the paper's two settings:

* **Synchronous** (§6.1, §7.1, §9): computation proceeds in lockstep
  rounds; every message sent in round ``r`` is delivered at the start of
  round ``r + 1``.  Protocol code subclasses :class:`SyncProcess` and
  implements :meth:`SyncProcess.on_round`.
* **Asynchronous** (§6.2, §7.2, §10): messages are delivered one at a time
  in an order chosen by the scheduler (adversarially, if desired), with no
  timing guarantees.  Protocol code subclasses :class:`AsyncProcess`.

Processes interact with the world only through a :class:`Context` —
sending, deciding, reading their id/parameters, and drawing randomness from
a per-process seeded generator.  Byzantine behaviour is injected by
*wrapping the context* (see :mod:`repro.system.adversary`): the faulty
process may run the correct protocol logic while its outgoing messages are
dropped, mutated, or equivocated — or may be replaced wholesale by a custom
process.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from .messages import Message

__all__ = ["Context", "SyncProcess", "AsyncProcess", "Inbox"]

#: Round inbox type: src pid -> list of (tag, payload) received this round.
Inbox = Mapping[int, Sequence[tuple[str, Any]]]


class Context:
    """Capabilities of one process during an execution.

    Created by the scheduler; one per process.  Messages are not sent
    directly — they are queued in :attr:`outbox` and collected by the
    scheduler (synchronous: at the end of the round; asynchronous: after
    each event handler returns).
    """

    def __init__(self, pid: int, n: int, f: int, rng: np.random.Generator):
        self.pid = int(pid)
        self.n = int(n)
        self.f = int(f)
        self.rng = rng
        self.outbox: list[Message] = []
        self.decision: Optional[Any] = None
        self.decided = False
        self.halted = False
        self._seq = 0

    # --------------------------------------------------------------- actions
    def send(self, dst: int, tag: str, payload: Any, round: Optional[int] = None) -> None:
        """Queue a message to ``dst``."""
        if not 0 <= dst < self.n:
            raise ValueError(f"unknown destination {dst}")
        self.outbox.append(
            Message(self.pid, dst, tag, payload, round=round, seq=self._seq)
        )
        self._seq += 1

    def broadcast(self, tag: str, payload: Any, round: Optional[int] = None) -> None:
        """Queue the same message to every process (including self).

        Self-delivery keeps protocol logic uniform — a process treats its
        own value like everyone else's, as the paper's multiset semantics
        assume.  Note this is *n point-to-point sends*: a Byzantine
        process may still equivocate across them.  For the
        broadcast-channel model use :meth:`atomic_broadcast`.
        """
        for dst in range(self.n):
            self.send(dst, tag, payload, round=round)

    def atomic_broadcast(self, tag: str, payload: Any, round: Optional[int] = None) -> None:
        """Queue one channel-level atomic broadcast (paper footnote 3).

        The network delivers an identical copy to every process; a
        Byzantine sender may alter or drop the message but cannot send
        different versions to different receivers.
        """
        from .messages import ALL, Message

        self.outbox.append(
            Message(self.pid, ALL, tag, payload, round=round, seq=self._seq)
        )
        self._seq += 1

    def decide(self, value: Any) -> None:
        """Record the irrevocable decision value."""
        if self.decided:
            raise RuntimeError(f"process {self.pid} decided twice")
        self.decision = value
        self.decided = True

    def halt(self) -> None:
        """Stop participating (terminate) after the current handler."""
        self.halted = True


class SyncProcess(ABC):
    """A process in the synchronous lockstep model."""

    @abstractmethod
    def on_round(self, ctx: Context, round: int, inbox: Inbox) -> None:
        """Handle one synchronous round.

        ``inbox`` holds everything delivered at the start of this round
        (i.e. sent in round ``round - 1``); it is empty in round 0.
        Queue outgoing messages on ``ctx``; they arrive next round.
        """

    def on_stop(self, ctx: Context) -> None:
        """Called once when the execution ends (for cleanup/assertions)."""


class AsyncProcess(ABC):
    """A process in the asynchronous event-driven model."""

    @abstractmethod
    def on_start(self, ctx: Context) -> None:
        """Called once before any delivery; queue initial messages here."""

    @abstractmethod
    def on_message(self, ctx: Context, src: int, tag: str, payload: Any) -> None:
        """Handle one delivered message."""

    def on_stop(self, ctx: Context) -> None:
        """Called once when the execution ends."""
