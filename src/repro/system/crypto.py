"""Simulated unforgeable digital signatures.

The authenticated broadcast protocol (Dolev–Strong) assumes signatures a
Byzantine process cannot forge on behalf of a correct process.  We simulate
this with keyed hashes: a :class:`SignatureScheme` holds one random secret
per process and signs by hashing ``secret || message``.  Unforgeability is
*enforced by the API*, not by cryptographic hardness: adversary code only
ever receives signing capabilities for the faulty ids (see
:meth:`SignatureScheme.signer_for`), so a forged token would require
guessing a 16-byte secret — the standard idealised-signature simulation.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from .messages import canonical_bytes

__all__ = ["Signature", "SignatureScheme"]


@dataclass(frozen=True)
class Signature:
    """A signature token: ``(signer, digest)``."""

    signer: int
    digest: bytes

    def __repr__(self) -> str:
        return f"Sig(p{self.signer}:{self.digest.hex()[:8]})"


class SignatureScheme:
    """Per-run signature oracle with one secret per process.

    Parameters
    ----------
    n:
        Number of processes.
    rng:
        Source of the per-process secrets — pass the run's seeded
        generator so executions are reproducible.
    """

    def __init__(self, n: int, rng: np.random.Generator):
        self._secrets = [rng.bytes(16) for _ in range(n)]
        self.n = n

    def sign(self, signer: int, obj: Any) -> Signature:
        """Sign ``obj`` as process ``signer``.

        Protocol code for correct processes calls this with their own id;
        adversaries must go through :meth:`signer_for`, which refuses
        non-faulty ids.
        """
        if not 0 <= signer < self.n:
            raise ValueError(f"unknown signer {signer}")
        digest = hmac.new(
            self._secrets[signer], canonical_bytes(obj), hashlib.sha256
        ).digest()
        return Signature(signer, digest)

    def verify(self, obj: Any, sig: Signature) -> bool:
        """Check that ``sig`` is a valid signature on ``obj``."""
        if not 0 <= sig.signer < self.n:
            return False
        expected = hmac.new(
            self._secrets[sig.signer], canonical_bytes(obj), hashlib.sha256
        ).digest()
        return hmac.compare_digest(expected, sig.digest)

    def signer_for(self, pids: set[int]) -> Callable[[int, Any], Signature]:
        """A signing capability restricted to the given process ids.

        This is what adversary strategies receive: they can sign anything
        as any *faulty* process but cannot produce signatures for correct
        ones — modelling unforgeability.
        """
        allowed = set(pids)

        def sign(signer: int, obj: Any) -> Signature:
            if signer not in allowed:
                raise PermissionError(
                    f"adversary cannot sign as correct process {signer}"
                )
            return self.sign(signer, obj)

        return sign
