"""Plain-text table rendering for benchmark output.

The benchmarks print paper-vs-measured rows in the same layout as the
paper's Table 1; this tiny formatter keeps them aligned without pulling
in a dependency.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "print_table"]


def _cell(x: Any) -> str:
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1e4 or 0 < abs(x) < 1e-3:
            return f"{x:.3e}"
        return f"{x:.4f}"
    return str(x)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> None:
    """Print an aligned table (benchmarks' reporting helper)."""
    print("\n" + format_table(headers, rows, title) + "\n")
