"""Decision provenance: causal cones, per-round timelines, DAG renderers.

Input is either a live :class:`~repro.obs.causal.CausalCollector` (e.g.
``RunResult.causal``) or the ``{"type": "causal"}`` record dicts produced
by :meth:`~repro.obs.causal.CausalCollector.to_records` and read back
from JSONL — so provenance questions ("why did process i decide v?")
work identically in-process and post-mortem::

    from repro.analysis.timeline import CausalGraph, render_explanation

    graph = CausalGraph.from_source(outcome.result.causal)
    print(render_explanation(graph, pid=0))

The happens-before DAG has two edge families: explicit send→deliver
edges (each deliver record carries its ``cause`` send eid) and implicit
program order (consecutive events of one pid).  The *causal cone* of an
event is everything reachable backwards through both — for a decide
event, exactly the messages (and local steps) that could have influenced
the decision, and nothing delivered elsewhere.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional, Sequence, Union

__all__ = [
    "CausalGraph",
    "causal_records",
    "cone_json",
    "render_dot",
    "render_explanation",
    "render_timeline",
]

Source = Union[Sequence[dict], Any]


def causal_records(source: Source) -> list[dict]:
    """Normalise a collector or a mixed record stream to causal records.

    Accepts a :class:`~repro.obs.causal.CausalCollector` (anything with
    ``to_records``) or any iterable of record dicts (e.g. the output of
    :func:`repro.obs.export.read_jsonl`, which may interleave span/event/
    metrics records).
    """
    if hasattr(source, "to_records"):
        return list(source.to_records())
    return [r for r in source if r.get("type") == "causal"]


class CausalGraph:
    """The happens-before DAG of one run, queryable by event id.

    Built from causal record dicts; ``eid`` values index ``self.events``
    (records are sorted by eid, and eids are dense by construction).
    """

    def __init__(self, records: Sequence[dict]):
        self.events: list[dict] = sorted(records, key=lambda r: r["eid"])
        for i, ev in enumerate(self.events):
            if ev["eid"] != i:
                raise ValueError(
                    f"causal records are not dense: position {i} has eid "
                    f"{ev['eid']} (missing or duplicated events?)"
                )
        #: pid -> eids of that process's events, in program order.
        self.by_pid: dict[int, list[int]] = defaultdict(list)
        #: eid -> index of the event within its process's program order.
        self._order: dict[int, int] = {}
        for ev in self.events:
            pids = self.by_pid[ev["pid"]]
            self._order[ev["eid"]] = len(pids)
            pids.append(ev["eid"])
        #: (send_eid, deliver_eid) cross-process edges.
        self.edges: list[tuple[int, int]] = [
            (ev["cause"], ev["eid"])
            for ev in self.events
            if ev.get("cause") is not None
        ]

    @classmethod
    def from_source(cls, source: Source) -> "CausalGraph":
        """Build from a collector or any record stream (see
        :func:`causal_records`)."""
        return cls(causal_records(source))

    def __len__(self) -> int:
        return len(self.events)

    def predecessors(self, eid: int) -> list[int]:
        """Immediate happens-before predecessors: program-order previous
        event plus (for deliveries) the causing send."""
        ev = self.events[eid]
        preds: list[int] = []
        idx = self._order[eid]
        if idx > 0:
            preds.append(self.by_pid[ev["pid"]][idx - 1])
        if ev.get("cause") is not None:
            preds.append(ev["cause"])
        return preds

    def causal_cone(self, eid: int) -> list[int]:
        """Every event that happens-before (or is) ``eid``, ascending."""
        if not 0 <= eid < len(self.events):
            raise IndexError(f"no event {eid} (have {len(self.events)})")
        seen = {eid}
        frontier = [eid]
        while frontier:
            nxt = frontier.pop()
            for prior in self.predecessors(nxt):
                if prior not in seen:
                    seen.add(prior)
                    frontier.append(prior)
        return sorted(seen)

    def decide_eid(self, pid: int) -> Optional[int]:
        """Eid of the (first) decide event of ``pid``, if any."""
        for eid in self.by_pid.get(pid, ()):
            if self.events[eid]["kind"] == "decide":
                return eid
        return None

    def decided_pids(self) -> list[int]:
        """Pids with at least one decide event, ascending."""
        return sorted(
            pid for pid in self.by_pid if self.decide_eid(pid) is not None
        )


def _label(ev: dict) -> str:
    """One-line human rendering of a causal event record."""
    kind = ev["kind"]
    if kind == "send":
        core = f"send {ev['src']}->{ev['dst'] if ev['dst'] >= 0 else 'ALL'}"
        core += f" tag={ev['tag']!r}"
    elif kind == "deliver":
        cause = ev.get("cause")
        core = f"deliver {ev['src']}->{ev['dst']} tag={ev['tag']!r}"
        if cause is not None:
            core += f" cause=e{cause}"
    else:
        core = kind
    extras = ev.get("fields") or {}
    if extras:
        core += " {" + ", ".join(f"{k}={v}" for k, v in extras.items()) + "}"
    return core


def render_timeline(
    source: Source,
    *,
    pids: Optional[Sequence[int]] = None,
    max_events_per_time: int = 40,
) -> str:
    """Per-round (sync) / per-step (async) text timeline of a run.

    Events are grouped by their scheduler ``time`` stamp; within one
    group they appear in recording order with Lamport timestamps.  Long
    groups are truncated with an ellipsis row (async floods).
    """
    graph = source if isinstance(source, CausalGraph) else CausalGraph.from_source(source)
    if not graph.events:
        return "(no causal events recorded)"
    wanted = None if pids is None else set(pids)
    by_time: dict[Any, list[dict]] = defaultdict(list)
    for ev in graph.events:
        if wanted is not None and ev["pid"] not in wanted:
            continue
        by_time[ev["time"]].append(ev)
    lines: list[str] = []
    order = sorted(by_time, key=lambda t: (t is None, t))
    for t in order:
        group = by_time[t]
        lines.append(f"t={t}  ({len(group)} events)")
        for i, ev in enumerate(group):
            if i >= max_events_per_time:
                lines.append(f"  ... ({len(group) - max_events_per_time} more)")
                break
            lines.append(
                f"  e{ev['eid']:<5} [pid {ev['pid']}] L={ev['lamport']:<4} "
                f"{_label(ev)}"
            )
    return "\n".join(lines)


def render_explanation(
    source: Source,
    pid: int,
    *,
    max_events: int = 200,
) -> str:
    """Text causal cone of ``pid``'s decision, grouped by time.

    The cone contains exactly the events that happen-before the decide
    event — only messages delivered *to* this process (directly or
    transitively) appear; deliveries at unrelated processes do not.
    """
    graph = source if isinstance(source, CausalGraph) else CausalGraph.from_source(source)
    eid = graph.decide_eid(pid)
    if eid is None:
        decided = graph.decided_pids()
        return (
            f"process {pid} recorded no decide event"
            + (f" (decided pids: {decided})" if decided else " (no decisions recorded)")
        )
    cone = graph.causal_cone(eid)
    decide = graph.events[eid]
    kinds: dict[str, int] = defaultdict(int)
    for e in cone:
        kinds[graph.events[e]["kind"]] += 1
    header = (
        f"decision of process {pid}: e{eid} at t={decide['time']} "
        f"L={decide['lamport']} clock={decide['clock']}"
    )
    if decide.get("fields"):
        header += " " + str(decide["fields"])
    counts = ", ".join(f"{k}={v}" for k, v in sorted(kinds.items()))
    lines = [
        header,
        f"causal cone: {len(cone)}/{len(graph.events)} events ({counts})",
    ]
    by_time: dict[Any, list[int]] = defaultdict(list)
    for e in cone:
        by_time[graph.events[e]["time"]].append(e)
    shown = 0
    for t in sorted(by_time, key=lambda t: (t is None, t)):
        lines.append(f"t={t}:")
        for e in by_time[t]:
            if shown >= max_events:
                lines.append(f"  ... ({len(cone) - shown} more cone events)")
                return "\n".join(lines)
            ev = graph.events[e]
            lines.append(f"  e{ev['eid']:<5} [pid {ev['pid']}] {_label(ev)}")
            shown += 1
    return "\n".join(lines)


def cone_json(source: Source, pid: int) -> dict:
    """JSON-ready causal cone of ``pid``'s decision.

    ``{"pid", "decide_eid", "cone_size", "total_events", "events",
    "edges"}`` — ``events`` is the cone's causal records, ``edges`` the
    send→deliver edges with both endpoints inside the cone.
    """
    graph = source if isinstance(source, CausalGraph) else CausalGraph.from_source(source)
    eid = graph.decide_eid(pid)
    if eid is None:
        return {
            "pid": pid,
            "decide_eid": None,
            "cone_size": 0,
            "total_events": len(graph.events),
            "events": [],
            "edges": [],
        }
    cone = graph.causal_cone(eid)
    inside = set(cone)
    return {
        "pid": pid,
        "decide_eid": eid,
        "cone_size": len(cone),
        "total_events": len(graph.events),
        "events": [graph.events[e] for e in cone],
        "edges": [[a, b] for a, b in graph.edges if a in inside and b in inside],
    }


_DOT_KIND_STYLE = {
    "send": 'shape=box',
    "deliver": 'shape=ellipse',
    "decide": 'shape=doubleoctagon, style=filled, fillcolor="#cfe8cf"',
    "iterate": 'shape=diamond',
}


def render_dot(
    source: Source,
    *,
    pid: Optional[int] = None,
) -> str:
    """Graphviz DOT of the happens-before DAG.

    With ``pid`` given, restricted to the causal cone of that process's
    decision (solid arrows: send→deliver; dashed: program order).
    Processes become horizontal ranks via per-pid clusters.
    """
    graph = source if isinstance(source, CausalGraph) else CausalGraph.from_source(source)
    if pid is not None:
        eid = graph.decide_eid(pid)
        keep = set(graph.causal_cone(eid)) if eid is not None else set()
    else:
        keep = {ev["eid"] for ev in graph.events}
    lines = [
        "digraph causal {",
        "  rankdir=LR;",
        '  node [fontsize=9, fontname="monospace"];',
    ]
    for proc in sorted(graph.by_pid):
        eids = [e for e in graph.by_pid[proc] if e in keep]
        if not eids:
            continue
        lines.append(f"  subgraph cluster_p{proc} {{")
        lines.append(f'    label="pid {proc}";')
        for e in eids:
            ev = graph.events[e]
            style = _DOT_KIND_STYLE.get(ev["kind"], "shape=ellipse")
            text = f"e{e}\\n{ev['kind']} t={ev['time']}"
            if ev["kind"] in ("send", "deliver") and ev.get("tag") is not None:
                text += f"\\n{ev['tag']}"
            lines.append(f'    e{e} [label="{text}", {style}];')
        # program-order chain (dashed)
        for a, b in zip(eids, eids[1:]):
            lines.append(f"    e{a} -> e{b} [style=dashed, color=gray];")
        lines.append("  }")
    for a, b in graph.edges:
        if a in keep and b in keep:
            lines.append(f"  e{a} -> e{b};")
    lines.append("}")
    return "\n".join(lines)
