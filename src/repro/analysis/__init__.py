"""Experiment support: workloads, metrics, tables, adversary fuzzing."""

from .fuzz import ALGORITHMS, FuzzFailure, fuzz_consensus, random_adversary
from .metrics import DeltaTrial, TrialSummary, measure_delta_star, summarize_trials
from .tables import format_table, print_table
from .transcripts import TranscriptSummary, render_transcript, summarize_transcript
from .workloads import (
    WORKLOADS,
    clustered_inputs,
    collinear_inputs,
    degenerate_inputs,
    duplicated_inputs,
    gaussian_inputs,
    make_workload,
    simplex_inputs,
    sphere_inputs,
)

__all__ = [
    "ALGORITHMS",
    "DeltaTrial",
    "FuzzFailure",
    "fuzz_consensus",
    "random_adversary",
    "TranscriptSummary",
    "TrialSummary",
    "WORKLOADS",
    "render_transcript",
    "summarize_transcript",
    "clustered_inputs",
    "collinear_inputs",
    "degenerate_inputs",
    "duplicated_inputs",
    "format_table",
    "gaussian_inputs",
    "make_workload",
    "measure_delta_star",
    "print_table",
    "simplex_inputs",
    "sphere_inputs",
    "summarize_trials",
]
