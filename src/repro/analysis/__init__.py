"""Experiment support: workloads, metrics, tables, adversary fuzzing."""

from .fuzz import ALGORITHMS, FuzzFailure, fuzz_consensus, random_adversary
from .metrics import DeltaTrial, TrialSummary, measure_delta_star, summarize_trials
from .profiling import (
    SpanStats,
    metrics_record,
    render_flame,
    render_summary,
    summarize_spans,
)
from .tables import format_table, print_table
from .transcripts import TranscriptSummary, render_transcript, summarize_transcript
from .workloads import (
    WORKLOADS,
    clustered_inputs,
    collinear_inputs,
    degenerate_inputs,
    duplicated_inputs,
    gaussian_inputs,
    make_workload,
    simplex_inputs,
    sphere_inputs,
)

__all__ = [
    "ALGORITHMS",
    "DeltaTrial",
    "FuzzFailure",
    "fuzz_consensus",
    "random_adversary",
    "TranscriptSummary",
    "TrialSummary",
    "WORKLOADS",
    "SpanStats",
    "metrics_record",
    "render_flame",
    "render_summary",
    "render_transcript",
    "summarize_spans",
    "summarize_transcript",
    "clustered_inputs",
    "collinear_inputs",
    "degenerate_inputs",
    "duplicated_inputs",
    "format_table",
    "gaussian_inputs",
    "make_workload",
    "measure_delta_star",
    "print_table",
    "simplex_inputs",
    "sphere_inputs",
    "summarize_trials",
]
