"""Experiment support: workloads, metrics, tables, adversary fuzzing."""

from .fuzz import ALGORITHMS, FuzzFailure, fuzz_consensus, random_adversary
from .metrics import DeltaTrial, TrialSummary, measure_delta_star, summarize_trials
from .profiling import (
    SpanStats,
    metrics_record,
    render_flame,
    render_hot_phases,
    render_phase_flame,
    render_summary,
    summarize_spans,
)
from .tables import format_table, print_table
from .timeline import (
    CausalGraph,
    causal_records,
    cone_json,
    render_dot,
    render_explanation,
    render_timeline,
)
from .transcripts import TranscriptSummary, render_transcript, summarize_transcript
from .workloads import (
    WORKLOADS,
    clustered_inputs,
    collinear_inputs,
    degenerate_inputs,
    duplicated_inputs,
    gaussian_inputs,
    make_workload,
    simplex_inputs,
    sphere_inputs,
)

__all__ = [
    "ALGORITHMS",
    "CausalGraph",
    "DeltaTrial",
    "FuzzFailure",
    "causal_records",
    "cone_json",
    "fuzz_consensus",
    "random_adversary",
    "render_dot",
    "render_explanation",
    "render_timeline",
    "TranscriptSummary",
    "TrialSummary",
    "WORKLOADS",
    "SpanStats",
    "metrics_record",
    "render_flame",
    "render_hot_phases",
    "render_phase_flame",
    "render_summary",
    "render_transcript",
    "summarize_spans",
    "summarize_transcript",
    "clustered_inputs",
    "collinear_inputs",
    "degenerate_inputs",
    "duplicated_inputs",
    "format_table",
    "gaussian_inputs",
    "make_workload",
    "measure_delta_star",
    "print_table",
    "simplex_inputs",
    "sphere_inputs",
    "summarize_trials",
]
