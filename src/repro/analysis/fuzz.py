"""Randomised adversary fuzzing — deprecated shim over :mod:`repro.dst`.

.. deprecated::
    The fuzz harness grew into the deterministic simulation-testing
    subsystem :mod:`repro.dst` (scenario DSL, counterexample shrinking,
    replayable seed corpus).  This module keeps the original public API —
    :func:`fuzz_consensus`, :class:`FuzzFailure`, :func:`random_adversary`,
    :data:`ALGORITHMS` — as thin wrappers so existing callers keep
    working, and emits :class:`DeprecationWarning` on use.  New code
    should call :func:`repro.dst.explore` directly and gets scenarios,
    replay tokens, and shrinking for free::

        from repro.dst import explore, shrink, replay
        violations = explore("algo", trials=200, seed=7)
        small = shrink(violations[0].scenario)
        replay(small.shrunk)         # traced, deterministic re-execution
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.runner import (
    ConsensusOutcome,
    run_algo,
    run_averaging,
    run_exact_bvc,
    run_k_relaxed,
)
from ..dst.explore import explore
from ..dst.scenarios import FaultClause, adversary_from_clauses
from ..system.adversary import Adversary

__all__ = ["FuzzFailure", "random_adversary", "fuzz_consensus", "ALGORITHMS"]


def _deprecated(api: str) -> None:
    warnings.warn(
        f"repro.analysis.fuzz.{api} is deprecated; use repro.dst "
        "(explore / shrink / replay) instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation, with everything needed to replay it.

    ``invariant`` names the first violated invariant (``"agreement"``,
    ``"validity"`` or ``"termination"``) and ``replay`` is a
    ready-to-paste shell command that deterministically reproduces the
    run, e.g. ``python -m repro replay --token dst1-...``.  Both default
    empty for backward compatibility with hand-built records.
    """

    algorithm: str
    seed: int
    n: int
    d: int
    f: int
    strategy_name: str
    agreement_ok: bool
    validity_ok: bool
    termination_ok: bool
    invariant: str = ""
    replay: str = ""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        head = (
            f"[{self.algorithm}] seed={self.seed} n={self.n} d={self.d} "
            f"f={self.f} strategy={self.strategy_name} "
            f"agreement={self.agreement_ok} validity={self.validity_ok} "
            f"termination={self.termination_ok}"
        )
        if self.invariant:
            head += f" violated={self.invariant}"
        if self.replay:
            head += f"\n  replay: {self.replay}"
        return head


def random_adversary(
    rng: np.random.Generator, n: int, f: int
) -> tuple[Adversary, str]:
    """Sample a fault pattern: random corrupt set + random strategy.

    Deprecated; :func:`repro.dst.sample_scenario` samples richer,
    serialisable fault scripts.
    """
    _deprecated("random_adversary")
    count = int(rng.integers(0, f + 1))
    pids = sorted(rng.choice(n, size=count, replace=False).tolist())
    kind = str(rng.choice(
        ["honest", "silent", "crash", "mutate", "equivocate", "duplicate"]
    ))
    scale = float(rng.uniform(0.5, 100.0))
    clauses = []
    for pid in pids:
        if kind == "crash":
            clauses.append(
                FaultClause(pid=pid, kind="silent", start=int(rng.integers(0, 3)))
            )
        elif kind in ("mutate", "equivocate"):
            clauses.append(FaultClause(pid=pid, kind=kind, param=scale))
        elif kind == "duplicate":
            clauses.append(
                FaultClause(pid=pid, kind="duplicate", param=float(rng.integers(2, 4)))
            )
        else:
            clauses.append(FaultClause(pid=pid, kind=kind))
    return adversary_from_clauses(clauses), kind


#: algorithm name -> (runner thunk).  Each thunk gets
#: (inputs, f, adversary, seed) and returns a ConsensusOutcome.
ALGORITHMS: dict[str, Callable[..., ConsensusOutcome]] = {
    "exact": lambda inputs, f, adv, seed: run_exact_bvc(
        inputs, f, adversary=adv, seed=seed
    ),
    "algo": lambda inputs, f, adv, seed: run_algo(
        inputs, f, adversary=adv, seed=seed
    ),
    "k1": lambda inputs, f, adv, seed: run_k_relaxed(
        inputs, f, 1, adversary=adv, seed=seed
    ),
    "averaging": lambda inputs, f, adv, seed: run_averaging(
        inputs, f, adversary=adv, epsilon=5e-2, seed=seed
    ),
}


def fuzz_consensus(
    algorithm: str,
    trials: int = 50,
    seed: int = 0,
    *,
    input_scale: float = 3.0,
    stop_on_first: bool = False,
) -> list[FuzzFailure]:
    """Run ``trials`` randomised executions; return every violation.

    Deprecated thin wrapper over :func:`repro.dst.explore`; see the
    module docstring.  Results stay deterministic in ``(algorithm,
    trials, seed)`` and each failure now carries the violated-invariant
    name plus a replay command.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choices {sorted(ALGORITHMS)}"
        )
    _deprecated("fuzz_consensus")
    violations = explore(
        algorithm,
        trials=trials,
        seed=seed,
        input_scale=input_scale,
        stop_on_first=stop_on_first,
    )
    failures = []
    for v in violations:
        s = v.scenario
        failures.append(
            FuzzFailure(
                algorithm=s.algorithm,
                seed=s.seed,
                n=s.n,
                d=s.d,
                f=s.f,
                strategy_name=s.strategy_label(),
                agreement_ok=v.agreement_ok,
                validity_ok=v.validity_ok,
                termination_ok=v.termination_ok,
                invariant=v.invariant,
                replay=v.replay_command,
            )
        )
    return failures
