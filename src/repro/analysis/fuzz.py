"""Randomised adversary fuzzing: invariant checking at scale.

The proofs quantify over *all* Byzantine behaviours; unit tests exercise
hand-picked ones.  This module fills the space between: it samples random
fault patterns (who is corrupt, which strategy, with random parameters),
random inputs, and random delivery schedules, runs a consensus algorithm,
and checks the problem invariants on every run.  A single surviving
violation is returned with its full seed, so it can be replayed as a
regression test.

Used by the failure-injection test suite and available to users as a
soak-testing entry point::

    from repro.analysis.fuzz import fuzz_consensus
    failures = fuzz_consensus("algo", trials=200, seed=7)
    assert not failures
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.runner import (
    ConsensusOutcome,
    run_algo,
    run_averaging,
    run_exact_bvc,
    run_k_relaxed,
)
from ..system.adversary import (
    Adversary,
    ByzantineStrategy,
    CrashStrategy,
    DuplicateStrategy,
    EquivocateStrategy,
    HonestStrategy,
    MutateStrategy,
    SilentStrategy,
)

__all__ = ["FuzzFailure", "random_adversary", "fuzz_consensus", "ALGORITHMS"]


@dataclass(frozen=True)
class FuzzFailure:
    """One invariant violation, with everything needed to replay it."""

    algorithm: str
    seed: int
    n: int
    d: int
    f: int
    strategy_name: str
    agreement_ok: bool
    validity_ok: bool
    termination_ok: bool

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"[{self.algorithm}] seed={self.seed} n={self.n} d={self.d} "
            f"f={self.f} strategy={self.strategy_name} "
            f"agreement={self.agreement_ok} validity={self.validity_ok} "
            f"termination={self.termination_ok}"
        )


def _random_value_noise(scale: float):
    """Payload mutator: add structured noise to any numeric tuple found
    in the payload (protocol-agnostic best effort)."""

    def mutate(value, rng):
        if isinstance(value, tuple):
            if all(isinstance(v, float) for v in value) and value:
                return tuple(v + float(rng.normal() * scale) for v in value)
            return tuple(mutate(v, rng) for v in value)
        return value

    return mutate


def random_adversary(
    rng: np.random.Generator, n: int, f: int
) -> tuple[Adversary, str]:
    """Sample a fault pattern: random corrupt set + random strategy."""
    count = int(rng.integers(0, f + 1))
    faulty = sorted(rng.choice(n, size=count, replace=False).tolist())
    kind = rng.choice(
        ["honest", "silent", "crash", "mutate", "equivocate", "duplicate"]
    )
    noise = _random_value_noise(float(rng.uniform(0.5, 100.0)))
    strategy: ByzantineStrategy
    if kind == "honest":
        strategy = HonestStrategy()
    elif kind == "silent":
        strategy = SilentStrategy()
    elif kind == "crash":
        strategy = CrashStrategy(int(rng.integers(0, 3)))
    elif kind == "mutate":
        strategy = MutateStrategy(lambda tag, p, r: noise(p, r))
    elif kind == "equivocate":
        strategy = EquivocateStrategy(lambda tag, p, dst, r: noise(p, r))
    else:
        strategy = DuplicateStrategy(int(rng.integers(2, 4)))
    return Adversary(faulty=faulty, strategy=strategy), str(kind)


#: algorithm name -> (runner thunk, n chooser).  Each thunk gets
#: (inputs, f, adversary, seed) and returns a ConsensusOutcome.
ALGORITHMS: dict[str, Callable[..., ConsensusOutcome]] = {
    "exact": lambda inputs, f, adv, seed: run_exact_bvc(
        inputs, f, adversary=adv, seed=seed
    ),
    "algo": lambda inputs, f, adv, seed: run_algo(
        inputs, f, adversary=adv, seed=seed
    ),
    "k1": lambda inputs, f, adv, seed: run_k_relaxed(
        inputs, f, 1, adversary=adv, seed=seed
    ),
    "averaging": lambda inputs, f, adv, seed: run_averaging(
        inputs, f, adversary=adv, epsilon=5e-2, seed=seed
    ),
}


def _system_shape(rng: np.random.Generator, algorithm: str) -> tuple[int, int, int]:
    """Sample a legal (n, d, f) for the algorithm."""
    f = 1
    if algorithm == "exact":
        d = int(rng.integers(1, 4))
        n = max(3 * f + 1, (d + 1) * f + 1) + int(rng.integers(0, 2))
    elif algorithm in ("algo", "averaging"):
        d = int(rng.integers(2, 5))
        n = max(4, d + 1)
    else:  # k1
        d = int(rng.integers(1, 6))
        n = 4 + int(rng.integers(0, 2))
    return n, d, f


def fuzz_consensus(
    algorithm: str,
    trials: int = 50,
    seed: int = 0,
    *,
    input_scale: float = 3.0,
    stop_on_first: bool = False,
) -> list[FuzzFailure]:
    """Run ``trials`` randomised executions; return every violation.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS` (``"exact"``, ``"algo"``, ``"k1"``,
        ``"averaging"``).
    trials, seed:
        Sweep size and master seed (each trial derives its own).
    input_scale:
        Standard deviation of the gaussian inputs.
    stop_on_first:
        Return immediately on the first violation (debugging mode).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choices {sorted(ALGORITHMS)}")
    runner = ALGORITHMS[algorithm]
    master = np.random.default_rng(seed)
    failures: list[FuzzFailure] = []
    for t in range(trials):
        trial_seed = int(master.integers(0, 2**31 - 1))
        rng = np.random.default_rng(trial_seed)
        n, d, f = _system_shape(rng, algorithm)
        inputs = rng.normal(scale=input_scale, size=(n, d))
        adversary, strategy_name = random_adversary(rng, n, f)
        outcome = runner(inputs, f, adversary, trial_seed)
        if not outcome.ok:
            failures.append(
                FuzzFailure(
                    algorithm=algorithm,
                    seed=trial_seed,
                    n=n,
                    d=d,
                    f=f,
                    strategy_name=strategy_name,
                    agreement_ok=outcome.report.agreement_ok,
                    validity_ok=outcome.report.validity_ok,
                    termination_ok=outcome.report.termination_ok,
                )
            )
            if stop_on_first:
                break
    return failures
