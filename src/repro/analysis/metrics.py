"""Experiment metrics: the quantities the paper's Table 1 is stated in.

The central measurement is the *normalised relaxation*

    ``ratio = δ*(S) / max_edge(honest inputs)``

which Table 1 upper-bounds by ``κ(n, f, d, p)``.  These helpers compute
the ratios, aggregate them over trial batches, and package the
paper-vs-measured comparison rows for the benchmark printers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..geometry.minimax import delta_star
from ..geometry.norms import max_edge_length, min_edge_length

__all__ = ["DeltaTrial", "measure_delta_star", "summarize_trials", "TrialSummary"]

PNorm = Union[float, int]


@dataclass(frozen=True)
class DeltaTrial:
    """One δ* measurement against its input-dependent bounds."""

    n: int
    d: int
    f: int
    p: float
    delta_star: float
    max_edge: float
    min_edge: float
    bound: float
    gap: float

    @property
    def ratio(self) -> float:
        """``δ*/max-edge`` (0 when the honest inputs coincide)."""
        return self.delta_star / self.max_edge if self.max_edge > 0 else 0.0

    @property
    def within_bound(self) -> bool:
        """Whether the paper's bound holds for this trial (strictly, up to
        solver tolerance)."""
        return self.delta_star <= self.bound + 1e-7 * max(1.0, self.bound)


def measure_delta_star(
    inputs: np.ndarray,
    faulty: Sequence[int],
    f: int,
    *,
    p: PNorm = 2,
    bound: Optional[float] = None,
) -> DeltaTrial:
    """Run the δ* solver on the full multiset, measure against a bound.

    ``faulty`` identifies which rows of ``inputs`` are Byzantine; the
    edge statistics (and, by default, the Theorem 9/12/Conjecture bound
    the caller supplies) are computed over the *honest* rows only, per
    the paper's ``E+`` definition.
    """
    inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
    n, d = inputs.shape
    faulty_set = set(int(x) for x in faulty)
    if len(faulty_set) > f:
        raise ValueError(f"|faulty|={len(faulty_set)} exceeds f={f}")
    honest = np.array([inputs[i] for i in range(n) if i not in faulty_set])
    result = delta_star(inputs, f, p=p)
    max_e = max_edge_length(honest, p)
    min_e = min_edge_length(honest, p)
    if bound is None:
        bound = math.inf
    return DeltaTrial(
        n=n,
        d=d,
        f=f,
        p=float(p),
        delta_star=result.value,
        max_edge=max_e,
        min_edge=min_e if math.isfinite(min_e) else 0.0,
        bound=float(bound),
        gap=result.gap,
    )


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate of a batch of :class:`DeltaTrial` measurements."""

    count: int
    violations: int
    max_ratio: float
    mean_ratio: float
    max_delta: float
    max_bound_utilisation: float  # max over trials of δ*/bound

    @property
    def all_within_bound(self) -> bool:
        return self.violations == 0


def summarize_trials(trials: Sequence[DeltaTrial]) -> TrialSummary:
    """Aggregate bound-compliance statistics over a batch of trials."""
    if not trials:
        raise ValueError("no trials to summarise")
    ratios = [t.ratio for t in trials]
    utils = [
        t.delta_star / t.bound if t.bound > 0 and math.isfinite(t.bound) else 0.0
        for t in trials
    ]
    return TrialSummary(
        count=len(trials),
        violations=sum(0 if t.within_bound else 1 for t in trials),
        max_ratio=max(ratios),
        mean_ratio=float(np.mean(ratios)),
        max_delta=max(t.delta_star for t in trials),
        max_bound_utilisation=max(utils),
    )
