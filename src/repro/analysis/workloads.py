"""Input-workload generators for experiments and property tests.

The paper's bounds are input-dependent (Table 1 scales with edge lengths
between non-faulty inputs), so the benchmarks sweep qualitatively
different input geometries:

* ``gaussian`` — generic position (the typical case; simplices are
  well-conditioned with high probability);
* ``sphere`` — inputs on a sphere (symmetric, near-regular simplices:
  δ*/max-edge near its worst case);
* ``clustered`` — non-faulty inputs in a tight cluster plus outliers
  (min-edge ≪ max-edge: separates Theorem 9's two bounds);
* ``degenerate`` — affinely dependent inputs (Theorem 8: δ* must be 0);
* ``collinear`` / ``duplicated`` — harsher degeneracies;
* the proof matrices from :mod:`repro.core.lower_bounds` are re-exported
  for convenience.

All generators take an explicit ``numpy.random.Generator`` — runs are
reproducible from a seed, never from global state.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

__all__ = [
    "gaussian_inputs",
    "sphere_inputs",
    "clustered_inputs",
    "degenerate_inputs",
    "collinear_inputs",
    "duplicated_inputs",
    "simplex_inputs",
    "WORKLOADS",
    "make_workload",
]


def gaussian_inputs(
    rng: np.random.Generator, n: int, d: int, scale: float = 1.0
) -> np.ndarray:
    """``n`` i.i.d. standard-normal points in ``R^d`` (generic position)."""
    return rng.normal(scale=scale, size=(n, d))


def sphere_inputs(
    rng: np.random.Generator, n: int, d: int, radius: float = 1.0
) -> np.ndarray:
    """``n`` points uniform on the ``(d-1)``-sphere of given radius."""
    x = rng.normal(size=(n, d))
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return radius * x / norms


def clustered_inputs(
    rng: np.random.Generator,
    n: int,
    d: int,
    *,
    cluster_size: Optional[int] = None,
    cluster_scale: float = 0.05,
    outlier_scale: float = 2.0,
) -> np.ndarray:
    """A tight cluster of ``cluster_size`` points plus far-flung outliers.

    Default cluster size is ``n - 1`` — one outlier, the configuration
    that maximally separates ``min-edge`` from ``max-edge`` in Theorem
    9's two bounds.
    """
    if cluster_size is None:
        cluster_size = n - 1
    if not 1 <= cluster_size <= n:
        raise ValueError(f"need 1 <= cluster_size <= n, got {cluster_size}")
    center = rng.normal(size=d)
    cluster = center + rng.normal(scale=cluster_scale, size=(cluster_size, d))
    outliers = rng.normal(scale=outlier_scale, size=(n - cluster_size, d))
    return np.vstack([cluster, outliers])


def degenerate_inputs(
    rng: np.random.Generator, n: int, d: int, rank: Optional[int] = None
) -> np.ndarray:
    """``n`` points confined to a random affine subspace of given rank.

    Default rank is ``min(n - 2, d - 1)`` — strictly affinely dependent,
    the Theorem 8 regime where δ* = 0 is achievable.
    """
    if rank is None:
        rank = max(0, min(n - 2, d - 1))
    if rank > d:
        raise ValueError(f"rank {rank} exceeds ambient dimension {d}")
    origin = rng.normal(size=d)
    basis = rng.normal(size=(rank, d)) if rank > 0 else np.zeros((0, d))
    coords = rng.normal(size=(n, rank)) if rank > 0 else np.zeros((n, 0))
    return origin + coords @ basis


def collinear_inputs(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    """``n`` points on a random line (rank-1 degeneracy)."""
    return degenerate_inputs(rng, n, d, rank=1)


def duplicated_inputs(
    rng: np.random.Generator, n: int, d: int, distinct: int = 2
) -> np.ndarray:
    """``n`` points with only ``distinct`` distinct values (multiset
    semantics stress test)."""
    if not 1 <= distinct <= n:
        raise ValueError(f"need 1 <= distinct <= n, got {distinct}")
    base = rng.normal(size=(distinct, d))
    idx = rng.integers(0, distinct, size=n)
    idx[:distinct] = np.arange(distinct)  # guarantee all appear
    return base[idx]


def simplex_inputs(
    rng: np.random.Generator, n: int, d: int, min_inradius: float = 1e-3
) -> np.ndarray:
    """``n = d + 1`` affinely independent points (a non-flat simplex).

    Rejection-samples gaussians until the simplex inradius exceeds
    ``min_inradius`` — avoids numerically sliver simplices in geometry
    benchmarks.
    """
    from ..geometry.simplex import inradius, is_affinely_independent

    if n != d + 1:
        raise ValueError(f"simplex workload needs n = d+1, got n={n}, d={d}")
    for _ in range(1000):
        pts = rng.normal(size=(n, d))
        if is_affinely_independent(pts) and inradius(pts) >= min_inradius:
            return pts
    raise RuntimeError("failed to sample a well-conditioned simplex")


#: Registry used by the benchmark sweeps.
WORKLOADS: dict[str, Callable[..., np.ndarray]] = {
    "gaussian": gaussian_inputs,
    "sphere": sphere_inputs,
    "clustered": clustered_inputs,
    "degenerate": degenerate_inputs,
    "collinear": collinear_inputs,
    "duplicated": duplicated_inputs,
}


def make_workload(
    name: str, rng: np.random.Generator, n: int, d: int, **kwargs
) -> np.ndarray:
    """Dispatch into :data:`WORKLOADS` by name."""
    if name not in WORKLOADS:
        raise ValueError(f"unknown workload {name!r}; choices: {sorted(WORKLOADS)}")
    return WORKLOADS[name](rng, n, d, **kwargs)
