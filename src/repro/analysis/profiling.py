"""Human-readable views of exported traces and phase profiles.

Two record families render here:

* **trace records** — the dict form produced by :func:`repro.obs.export
  .trace_to_records` / :func:`repro.obs.export.read_jsonl`, so these
  work identically on an in-memory tracer and on a JSONL file read back
  from disk (:func:`render_summary`, :func:`render_flame`);
* **phase snapshots** — the document produced by
  :meth:`repro.obs.perf.PhaseProfiler.snapshot` (and embedded in
  ``BENCH_perf.json`` under ``"phases"``): :func:`render_hot_phases` is
  the top-N where-did-the-time-go table, :func:`render_phase_flame` the
  indented path tree.

::

    from repro.obs import read_jsonl
    from repro.analysis.profiling import render_summary, render_flame

    records = read_jsonl("trace.jsonl")
    print(render_summary(records))
    print(render_flame(records))
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..obs.perf import rollup_phases
from .tables import format_table

__all__ = [
    "SpanStats",
    "summarize_spans",
    "render_summary",
    "render_flame",
    "render_hot_phases",
    "render_phase_flame",
    "metrics_record",
]


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total: float
    mean: float
    max: float


def _spans(records: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [r for r in records if r.get("type") == "span"]


def _duration(span: dict[str, Any]) -> float:
    t1 = span.get("t1")
    return (t1 - span["t0"]) if t1 is not None else 0.0


def metrics_record(records: Sequence[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """The metrics snapshot embedded in a trace, if any."""
    for rec in records:
        if rec.get("type") == "metrics":
            return rec["metrics"]
    return None


def summarize_spans(records: Sequence[dict[str, Any]]) -> list[SpanStats]:
    """Per-name aggregate timing, sorted by total time (descending)."""
    grouped: dict[str, list[float]] = defaultdict(list)
    for span in _spans(records):
        grouped[span["name"]].append(_duration(span))
    out = [
        SpanStats(
            name=name,
            count=len(ds),
            total=sum(ds),
            mean=sum(ds) / len(ds),
            max=max(ds),
        )
        for name, ds in grouped.items()
    ]
    return sorted(out, key=lambda s: (-s.total, s.name))


def render_summary(records: Sequence[dict[str, Any]]) -> str:
    """Text table: span timing aggregates plus headline metrics."""
    stats = summarize_spans(records)
    lines = []
    if stats:
        rows = [
            [s.name, s.count, f"{s.total:.6f}", f"{s.mean:.6f}", f"{s.max:.6f}"]
            for s in stats
        ]
        lines.append(
            format_table(
                ["span", "count", "total(s)", "mean(s)", "max(s)"],
                rows,
                title="span summary",
            )
        )
    else:
        lines.append("span summary: (no spans recorded)")
    metrics = metrics_record(records)
    if metrics:
        rows = []
        for name, m in metrics.items():
            if m.get("type") == "counter":
                rows.append([name, "counter", m["value"]])
            elif m.get("type") == "gauge":
                rows.append([name, "gauge", f"last={m['value']} max={m['max']}"])
            else:
                if m.get("count"):
                    rows.append(
                        [name, "histogram",
                         f"n={m['count']} mean={m['mean']:.6g} p99={m['p99']:.6g}"]
                    )
                else:
                    rows.append([name, "histogram", "n=0"])
        lines.append(format_table(["metric", "kind", "value"], rows,
                                  title="metrics"))
    return "\n\n".join(lines)


def render_flame(
    records: Sequence[dict[str, Any]],
    *,
    max_depth: int = 8,
    max_children: int = 25,
) -> str:
    """Indented span tree (a text 'flame graph'), durations at each node.

    Children are listed in start order; long sibling lists are truncated
    with an ellipsis row so async step floods stay readable.
    """
    spans = _spans(records)
    if not spans:
        return "(no spans recorded)"
    children: dict[Optional[int], list[dict[str, Any]]] = defaultdict(list)
    for span in spans:
        children[span.get("parent")].append(span)
    for sibs in children.values():
        sibs.sort(key=lambda s: s["t0"])

    lines: list[str] = []

    def emit(span: dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        tags = span.get("tags") or {}
        tag_str = (
            " {" + ", ".join(f"{k}={v}" for k, v in tags.items()) + "}"
            if tags
            else ""
        )
        lines.append(f"{indent}{span['name']}  {_duration(span):.6f}s{tag_str}")
        if depth + 1 > max_depth:
            return
        kids = children.get(span["id"], [])
        for i, kid in enumerate(kids):
            if i >= max_children:
                lines.append(
                    f"{indent}  ... ({len(kids) - max_children} more children)"
                )
                break
            emit(kid, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# phase-profile renderers (PhaseProfiler.snapshot / BENCH_perf documents)
# ---------------------------------------------------------------------------


def render_hot_phases(
    snapshot: Mapping[str, Any], *, top: int = 10
) -> str:
    """Top-N phases by *self* time: wall attributed to a phase name and
    not to any deeper phase — the honest where-did-the-time-go table."""
    rollup = rollup_phases(dict(snapshot))
    if not rollup:
        return "hot phases: (no phases recorded)"
    grand_total = sum(r["self_seconds"] for r in rollup.values()) or 1.0
    ranked = sorted(rollup.items(), key=lambda kv: -kv[1]["self_seconds"])
    rows = [
        [
            name,
            row["count"],
            f"{row['self_seconds']:.6f}",
            f"{100.0 * row['self_seconds'] / grand_total:.1f}%",
            f"{row['wall_seconds']:.6f}",
            f"{row['cpu_seconds']:.6f}",
        ]
        for name, row in ranked[:top]
    ]
    table = format_table(
        ["phase", "count", "self(s)", "self%", "total(s)", "cpu(s)"],
        rows,
        title=f"hot phases (top {min(top, len(ranked))} of {len(ranked)})",
    )
    cache: Mapping[str, Any] = snapshot.get("cache", {})
    if not cache:
        return table
    cache_rows = []
    for kernel, entry in sorted(cache.items()):
        lookups = entry["hits"] + entry["misses"]
        rate = entry["hits"] / lookups if lookups else 0.0
        cache_rows.append(
            [kernel, entry["hits"], entry["misses"], f"{100.0 * rate:.1f}%"]
        )
    return table + "\n\n" + format_table(
        ["kernel", "hits", "misses", "hit rate"],
        cache_rows,
        title="geometry cache",
    )


def render_phase_flame(snapshot: Mapping[str, Any]) -> str:
    """Indented phase-path tree with wall time and counts at each node.

    Unlike :func:`render_flame` (one line per span instance), each line
    here is an *aggregate* over every traversal of that path, so a
    million async steps stay one line.
    """
    phases: Mapping[str, Any] = snapshot.get("phases", {})
    if not phases:
        return "(no phases recorded)"
    children: dict[Optional[str], list[str]] = defaultdict(list)
    for path, entry in phases.items():
        children[entry.get("parent")].append(path)
    for sibs in children.values():
        sibs.sort(key=lambda p: -float(phases[p]["wall_seconds"]))

    lines: list[str] = []

    def emit(path: str, depth: int) -> None:
        entry = phases[path]
        indent = "  " * depth
        lines.append(
            f"{indent}{entry['name']}  {entry['wall_seconds']:.6f}s"
            f"  x{entry['count']}"
        )
        for kid in children.get(path, []):
            emit(kid, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
