"""Human-readable views of exported traces: span summaries and flame trees.

Input is the record-dict form produced by :func:`repro.obs.export
.trace_to_records` / :func:`repro.obs.export.read_jsonl`, so these work
identically on an in-memory tracer and on a JSONL file read back from
disk::

    from repro.obs import read_jsonl
    from repro.analysis.profiling import render_summary, render_flame

    records = read_jsonl("trace.jsonl")
    print(render_summary(records))
    print(render_flame(records))
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from .tables import format_table

__all__ = [
    "SpanStats",
    "summarize_spans",
    "render_summary",
    "render_flame",
    "metrics_record",
]


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing of all spans sharing one name."""

    name: str
    count: int
    total: float
    mean: float
    max: float


def _spans(records: Sequence[dict[str, Any]]) -> list[dict[str, Any]]:
    return [r for r in records if r.get("type") == "span"]


def _duration(span: dict[str, Any]) -> float:
    t1 = span.get("t1")
    return (t1 - span["t0"]) if t1 is not None else 0.0


def metrics_record(records: Sequence[dict[str, Any]]) -> Optional[dict[str, Any]]:
    """The metrics snapshot embedded in a trace, if any."""
    for rec in records:
        if rec.get("type") == "metrics":
            return rec["metrics"]
    return None


def summarize_spans(records: Sequence[dict[str, Any]]) -> list[SpanStats]:
    """Per-name aggregate timing, sorted by total time (descending)."""
    grouped: dict[str, list[float]] = defaultdict(list)
    for span in _spans(records):
        grouped[span["name"]].append(_duration(span))
    out = [
        SpanStats(
            name=name,
            count=len(ds),
            total=sum(ds),
            mean=sum(ds) / len(ds),
            max=max(ds),
        )
        for name, ds in grouped.items()
    ]
    return sorted(out, key=lambda s: (-s.total, s.name))


def render_summary(records: Sequence[dict[str, Any]]) -> str:
    """Text table: span timing aggregates plus headline metrics."""
    stats = summarize_spans(records)
    lines = []
    if stats:
        rows = [
            [s.name, s.count, f"{s.total:.6f}", f"{s.mean:.6f}", f"{s.max:.6f}"]
            for s in stats
        ]
        lines.append(
            format_table(
                ["span", "count", "total(s)", "mean(s)", "max(s)"],
                rows,
                title="span summary",
            )
        )
    else:
        lines.append("span summary: (no spans recorded)")
    metrics = metrics_record(records)
    if metrics:
        rows = []
        for name, m in metrics.items():
            if m.get("type") == "counter":
                rows.append([name, "counter", m["value"]])
            elif m.get("type") == "gauge":
                rows.append([name, "gauge", f"last={m['value']} max={m['max']}"])
            else:
                if m.get("count"):
                    rows.append(
                        [name, "histogram",
                         f"n={m['count']} mean={m['mean']:.6g} p99={m['p99']:.6g}"]
                    )
                else:
                    rows.append([name, "histogram", "n=0"])
        lines.append(format_table(["metric", "kind", "value"], rows,
                                  title="metrics"))
    return "\n\n".join(lines)


def render_flame(
    records: Sequence[dict[str, Any]],
    *,
    max_depth: int = 8,
    max_children: int = 25,
) -> str:
    """Indented span tree (a text 'flame graph'), durations at each node.

    Children are listed in start order; long sibling lists are truncated
    with an ellipsis row so async step floods stay readable.
    """
    spans = _spans(records)
    if not spans:
        return "(no spans recorded)"
    children: dict[Optional[int], list[dict[str, Any]]] = defaultdict(list)
    for span in spans:
        children[span.get("parent")].append(span)
    for sibs in children.values():
        sibs.sort(key=lambda s: s["t0"])

    lines: list[str] = []

    def emit(span: dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        tags = span.get("tags") or {}
        tag_str = (
            " {" + ", ".join(f"{k}={v}" for k, v in tags.items()) + "}"
            if tags
            else ""
        )
        lines.append(f"{indent}{span['name']}  {_duration(span):.6f}s{tag_str}")
        if depth + 1 > max_depth:
            return
        kids = children.get(span["id"], [])
        for i, kid in enumerate(kids):
            if i >= max_children:
                lines.append(
                    f"{indent}  ... ({len(kids) - max_children} more children)"
                )
                break
            emit(kid, depth + 1)

    for root in children.get(None, []):
        emit(root, 0)
    return "\n".join(lines)
