"""Transcript analysis: post-hoc inspection of recorded executions.

Schedulers accept ``record_transcript=True`` and attach the full
``(round-or-step, Message)`` sequence to the :class:`~repro.system
.scheduler.RunResult`.  These helpers turn that raw stream into the
summaries protocol debugging actually needs: per-round message counts,
per-tag breakdowns, per-sender activity, and a compact text rendering.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Optional, Sequence

from ..system.messages import Message

__all__ = ["TranscriptSummary", "summarize_transcript", "render_transcript"]


@dataclass(frozen=True)
class TranscriptSummary:
    """Aggregate view of one recorded execution."""

    total_messages: int
    rounds: int
    per_round: dict[int, int]
    per_tag: dict[str, int]
    per_sender: dict[int, int]
    faulty_share: float  # fraction of traffic originated by faulty ids

    def busiest_round(self) -> Optional[int]:
        """Round with the most traffic (None for an empty transcript)."""
        if not self.per_round:
            return None
        return max(self.per_round, key=lambda r: (self.per_round[r], -r))


def summarize_transcript(
    transcript: Sequence[tuple[int, Message]],
    faulty: Sequence[int] = (),
) -> TranscriptSummary:
    """Aggregate a recorded transcript."""
    per_round: Counter = Counter()
    per_tag: Counter = Counter()
    per_sender: Counter = Counter()
    faulty_set = set(faulty)
    faulty_msgs = 0
    for r, msg in transcript:
        per_round[r] += 1
        per_tag[msg.tag] += 1
        per_sender[msg.src] += 1
        if msg.src in faulty_set:
            faulty_msgs += 1
    total = len(transcript)
    return TranscriptSummary(
        total_messages=total,
        rounds=len(per_round),
        per_round=dict(per_round),
        per_tag=dict(per_tag),
        per_sender=dict(per_sender),
        faulty_share=faulty_msgs / total if total else 0.0,
    )


def render_transcript(
    transcript: Sequence[tuple[int, Message]],
    *,
    max_rows: int = 40,
) -> str:
    """Human-readable rendering of (a prefix of) a transcript."""
    lines = []
    grouped: dict[int, list[Message]] = defaultdict(list)
    for r, msg in transcript:
        grouped[r].append(msg)
    emitted = 0
    for r in sorted(grouped):
        lines.append(f"round/step {r}: {len(grouped[r])} message(s)")
        for msg in grouped[r]:
            if emitted >= max_rows:
                lines.append(f"  ... ({len(transcript) - emitted} more)")
                return "\n".join(lines)
            dst = "ALL" if msg.is_atomic_broadcast else str(msg.dst)
            lines.append(f"  {msg.src} -> {dst}  [{msg.tag}]")
            emitted += 1
    return "\n".join(lines)
