"""Unit tests for the Context capability object and process lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system.process import AsyncProcess, Context, SyncProcess
from repro.system.scheduler import AsyncScheduler, SynchronousScheduler


def make_ctx(pid=0, n=4, f=1):
    return Context(pid, n, f, np.random.default_rng(0))


class TestContext:
    def test_send_queues(self):
        ctx = make_ctx()
        ctx.send(1, "t", "payload", round=2)
        assert len(ctx.outbox) == 1
        msg = ctx.outbox[0]
        assert (msg.src, msg.dst, msg.tag, msg.payload, msg.round) == (
            0, 1, "t", "payload", 2
        )

    def test_send_validates_dst(self):
        ctx = make_ctx()
        with pytest.raises(ValueError):
            ctx.send(7, "t", None)
        with pytest.raises(ValueError):
            ctx.send(-2, "t", None)

    def test_broadcast_hits_everyone_including_self(self):
        ctx = make_ctx()
        ctx.broadcast("t", 42)
        assert sorted(m.dst for m in ctx.outbox) == [0, 1, 2, 3]

    def test_seq_monotone(self):
        ctx = make_ctx()
        ctx.send(1, "a", None)
        ctx.send(2, "b", None)
        ctx.atomic_broadcast("c", None)
        seqs = [m.seq for m in ctx.outbox]
        assert seqs == sorted(seqs) and len(set(seqs)) == 3

    def test_decide_once(self):
        ctx = make_ctx()
        ctx.decide("v")
        assert ctx.decided and ctx.decision == "v"
        with pytest.raises(RuntimeError):
            ctx.decide("w")

    def test_halt_flag(self):
        ctx = make_ctx()
        assert not ctx.halted
        ctx.halt()
        assert ctx.halted

    def test_per_process_rng_independent(self):
        c1 = Context(0, 2, 0, np.random.default_rng(1))
        c2 = Context(1, 2, 0, np.random.default_rng(2))
        assert c1.rng.integers(0, 10**9) != c2.rng.integers(0, 10**9)


class HaltEarly(SyncProcess):
    """Halts in round 1 without deciding."""

    def on_round(self, ctx, r, inbox):
        if r == 0:
            ctx.broadcast("x", ctx.pid, round=0)
        else:
            ctx.halt()


class TestHaltBehaviour:
    def test_halted_counts_as_done_sync(self):
        res = SynchronousScheduler([HaltEarly() for _ in range(3)], f=0).run()
        assert res.completed
        assert res.decisions == {}

    def test_halted_async_ignores_messages(self):
        class HaltOnFirst(AsyncProcess):
            def on_start(self, ctx):
                ctx.broadcast("x", ctx.pid)
                self.seen = 0

            def on_message(self, ctx, src, tag, payload):
                self.seen += 1
                ctx.halt()

        procs = [HaltOnFirst() for _ in range(3)]
        sched = AsyncScheduler(procs, f=0, stop_when_correct_decided=False)
        sched.run()
        # each process handled exactly one message before halting
        assert all(p.seen == 1 for p in procs)


class TestOnStopHook:
    def test_called_once_per_process(self):
        calls = []

        class P(SyncProcess):
            def on_round(self, ctx, r, inbox):
                ctx.decide(r)

            def on_stop(self, ctx):
                calls.append(ctx.pid)

        SynchronousScheduler([P() for _ in range(3)], f=0).run()
        assert sorted(calls) == [0, 1, 2]
