"""Tests for the synchronous and asynchronous execution engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system.adversary import Adversary, SilentStrategy
from repro.system.process import AsyncProcess, SyncProcess
from repro.system.scheduler import (
    AsyncScheduler,
    DelayPolicy,
    FifoPolicy,
    RandomPolicy,
    SynchronousScheduler,
)


class EchoOnce(SyncProcess):
    """Round 0: broadcast own pid; round 1: decide the sorted inbox."""

    def on_round(self, ctx, r, inbox):
        if r == 0:
            ctx.broadcast("hello", ctx.pid, round=0)
        elif r == 1:
            got = sorted(
                payload for entries in inbox.values() for _, payload in entries
            )
            ctx.decide(tuple(got))


class Counter(AsyncProcess):
    """Broadcast a token; decide after receiving n tokens."""

    def on_start(self, ctx):
        ctx.broadcast("tok", ctx.pid)
        self.got = set()

    def on_message(self, ctx, src, tag, payload):
        self.got.add(payload)
        if len(self.got) >= ctx.n - ctx.f and not ctx.decided:
            ctx.decide(len(self.got))


class TestSynchronousScheduler:
    def test_lockstep_delivery(self):
        procs = [EchoOnce() for _ in range(4)]
        res = SynchronousScheduler(procs, f=0).run()
        assert res.completed
        assert all(v == (0, 1, 2, 3) for v in res.decisions.values())
        assert res.rounds == 2

    def test_silent_fault_excluded(self):
        procs = [EchoOnce() for _ in range(4)]
        adv = Adversary(faulty=[3], strategy=SilentStrategy())
        res = SynchronousScheduler(procs, f=1, adversary=adv).run()
        assert all(res.decisions[p] == (0, 1, 2) for p in (0, 1, 2))

    def test_correct_decisions_filters_faulty(self):
        procs = [EchoOnce() for _ in range(4)]
        adv = Adversary(faulty=[0])
        res = SynchronousScheduler(procs, f=1, adversary=adv).run()
        assert 0 not in res.correct_decisions
        assert set(res.correct_decisions) == {1, 2, 3}

    def test_adversary_exceeding_f_rejected(self):
        procs = [EchoOnce() for _ in range(4)]
        with pytest.raises(ValueError):
            SynchronousScheduler(procs, f=1, adversary=Adversary(faulty=[0, 1]))

    def test_max_rounds_incomplete(self):
        class Forever(SyncProcess):
            def on_round(self, ctx, r, inbox):
                ctx.broadcast("spin", r, round=r)

        res = SynchronousScheduler([Forever() for _ in range(3)], f=0, max_rounds=5).run()
        assert not res.completed
        assert res.rounds == 4  # 0..4 executed

    def test_double_decide_raises(self):
        class Bad(SyncProcess):
            def on_round(self, ctx, r, inbox):
                ctx.decide(1)
                ctx.decide(2)

        with pytest.raises(RuntimeError):
            SynchronousScheduler([Bad(), Bad()], f=0).run()

    def test_rushing_adversary_sees_correct_messages(self):
        seen = {}

        class Rusher(SyncProcess):
            def on_round(self, ctx, r, inbox):
                ctx.decide(0)

        from repro.system.adversary import ByzantineStrategy

        class Peek(ByzantineStrategy):
            def transform(self, m, view):
                seen["correct_msgs"] = len(view.correct_outbox)
                return [m]

        class Talker(SyncProcess):
            def on_round(self, ctx, r, inbox):
                ctx.broadcast("x", 1, round=r)
                if r == 1:
                    ctx.decide(0)

        procs = [Talker() for _ in range(3)]
        adv = Adversary(faulty=[2], strategy=Peek())
        SynchronousScheduler(procs, f=1, adversary=adv).run()
        # two correct processes each broadcast to 3 → 6 messages visible
        assert seen["correct_msgs"] == 6


class TestAsyncScheduler:
    @pytest.mark.parametrize("policy", [RandomPolicy(), FifoPolicy()])
    def test_all_decide(self, policy):
        procs = [Counter() for _ in range(4)]
        res = AsyncScheduler(procs, f=0, policy=policy).run()
        assert res.completed
        assert len(res.decisions) >= 4 - 0

    def test_silent_fault_tolerated(self):
        procs = [Counter() for _ in range(4)]
        adv = Adversary(faulty=[3], strategy=SilentStrategy())
        res = AsyncScheduler(procs, f=1, adversary=adv).run()
        assert res.completed
        assert set(res.correct_decisions) == {0, 1, 2}

    def test_delay_policy_still_completes(self):
        procs = [Counter() for _ in range(4)]
        res = AsyncScheduler(
            procs, f=1, policy=DelayPolicy(victims=[0]),
            adversary=Adversary(faulty=[3], strategy=SilentStrategy()),
        ).run()
        assert res.completed

    def test_delay_policy_prefers_non_victims(self):
        from repro.system.network import Network
        from repro.system.messages import Message

        net = Network(3)
        net.submit(Message(1, 0, "t", None))
        net.submit(Message(1, 2, "t", None))
        pol = DelayPolicy(victims=[0])
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert pol.choose(net.pending_links(), net, rng)[1] != 0
        # when only victim links remain they are chosen
        net.pop((1, 2))
        assert pol.choose(net.pending_links(), net, rng) == (1, 0)

    def test_max_steps_cap(self):
        class Chatter(AsyncProcess):
            def on_start(self, ctx):
                ctx.send((ctx.pid + 1) % ctx.n, "ping", 0)

            def on_message(self, ctx, src, tag, payload):
                ctx.send((ctx.pid + 1) % ctx.n, "ping", payload + 1)

        res = AsyncScheduler([Chatter() for _ in range(3)], f=0, max_steps=50).run()
        assert not res.completed
        assert res.rounds == 50

    def test_determinism_same_seed(self):
        r1 = AsyncScheduler(
            [Counter() for _ in range(4)], f=0, rng=np.random.default_rng(5)
        ).run()
        r2 = AsyncScheduler(
            [Counter() for _ in range(4)], f=0, rng=np.random.default_rng(5)
        ).run()
        assert r1.rounds == r2.rounds
        assert r1.decisions == r2.decisions

    def test_fifo_policy_oldest_first(self):
        from repro.system.network import Network
        from repro.system.messages import Message

        net = Network(3)
        net.submit(Message(1, 2, "t", "new", seq=7))
        net.submit(Message(0, 1, "t", "old", seq=1))
        pol = FifoPolicy()
        link = pol.choose(net.pending_links(), net, np.random.default_rng(0))
        assert link == (0, 1)


class TestAsyncSchedulerEdgeCases:
    """Corner cases surfaced while building the DST subsystem."""

    def test_pending_messages_after_all_decide(self):
        # Counter processes decide after n - f tokens; with f=1 the last
        # token is still in flight when everyone has decided.  The run
        # must stop cleanly and account for the undelivered backlog.
        procs = [Counter() for _ in range(4)]
        res = AsyncScheduler(procs, f=1, rng=np.random.default_rng(2)).run()
        assert res.completed
        undelivered = res.metrics.counter("sched.async.undelivered").value
        assert undelivered > 0

    def test_delivery_into_decided_process_is_harmless(self):
        # With early stop disabled the scheduler drains the queue into
        # processes that already decided; decisions must not change.
        procs = [Counter() for _ in range(4)]
        res = AsyncScheduler(
            procs, f=1, rng=np.random.default_rng(2),
            stop_when_correct_decided=False,
        ).run()
        assert res.completed
        assert res.metrics.counter("sched.async.undelivered").value == 0
        assert set(res.decisions) == {0, 1, 2, 3}

    def test_self_addressed_message_delivered(self):
        class SelfPing(AsyncProcess):
            def on_start(self, ctx):
                ctx.send(ctx.pid, "self", "hi")

            def on_message(self, ctx, src, tag, payload):
                if not ctx.decided:
                    ctx.decide((src, payload))

        res = AsyncScheduler([SelfPing() for _ in range(3)], f=0).run()
        assert res.completed
        assert res.decisions == {p: (p, "hi") for p in range(3)}

    def test_self_addressed_message_sync(self):
        class SelfEcho(SyncProcess):
            def on_round(self, ctx, r, inbox):
                if r == 0:
                    ctx.send(ctx.pid, "self", ctx.pid * 10, round=0)
                elif r == 1:
                    [(src, payload)] = [
                        (s, p) for s, entries in inbox.items()
                        for _, p in entries
                    ]
                    ctx.decide((src, payload))

        res = SynchronousScheduler([SelfEcho() for _ in range(3)], f=0).run()
        assert res.completed
        assert res.decisions == {p: (p, p * 10) for p in range(3)}

    def test_reordering_across_broadcast_instances(self):
        # Two back-to-back broadcast instances per process, delivered by
        # an adversarial newest-first policy that drags instance-1
        # traffic ahead of instance-0.  Per-link FIFO still holds (the
        # network pops each link oldest-first), and the protocol outcome
        # must not depend on the cross-instance interleaving.
        from repro.system.scheduler import DeliveryPolicy

        class NewestFirst(DeliveryPolicy):
            def choose(self, links, network, rng):
                return max(links, key=lambda lk: network.peek(lk).seq)

        class TwoInstances(AsyncProcess):
            def on_start(self, ctx):
                self.got = {0: set(), 1: set()}
                ctx.broadcast("inst0", ctx.pid)
                ctx.broadcast("inst1", ctx.pid)

            def on_message(self, ctx, src, tag, payload):
                inst = 0 if tag == "inst0" else 1
                self.got[inst].add(payload)
                if (
                    not ctx.decided
                    and len(self.got[0]) == ctx.n
                    and len(self.got[1]) == ctx.n
                ):
                    ctx.decide((tuple(sorted(self.got[0])),
                                tuple(sorted(self.got[1]))))

        res = AsyncScheduler(
            [TwoInstances() for _ in range(4)], f=0, policy=NewestFirst()
        ).run()
        assert res.completed
        expected = ((0, 1, 2, 3), (0, 1, 2, 3))
        assert all(v == expected for v in res.decisions.values())

    def test_per_link_fifo_survives_adversarial_link_choice(self):
        # Within one link, seq order is a network guarantee the policy
        # cannot subvert — whichever link the policy picks, pop() hands
        # out that link's oldest message.
        from repro.system.network import Network
        from repro.system.messages import Message

        net = Network(2)
        net.submit(Message(0, 1, "t", "first", seq=1))
        net.submit(Message(0, 1, "t", "second", seq=2))
        assert net.pop((0, 1)).payload == "first"
        assert net.pop((0, 1)).payload == "second"
