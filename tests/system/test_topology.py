"""Tests for network topologies and topology-restricted scheduling."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.system.process import SyncProcess
from repro.system.scheduler import SynchronousScheduler
from repro.system.topology import (
    Topology,
    complete_topology,
    erdos_renyi_topology,
    random_regular_topology,
    ring_lattice_topology,
    wheel_of_cliques_topology,
)


class TestTopology:
    def test_complete(self):
        t = complete_topology(5)
        assert t.min_degree() == 4
        assert t.neighbors(0) == (1, 2, 3, 4)
        assert t.allows(0, 3) and t.allows(2, 2)

    def test_ring_lattice(self):
        t = ring_lattice_topology(8, 2)
        assert t.min_degree() == 4
        assert t.allows(0, 1) and t.allows(0, 2)
        assert not t.allows(0, 4)

    def test_ring_lattice_validates(self):
        with pytest.raises(ValueError):
            ring_lattice_topology(6, 0)

    def test_random_regular_connected(self):
        t = random_regular_topology(10, 4, seed=3)
        assert t.is_connected()
        assert all(t.degree(i) == 4 for i in range(10))

    def test_random_regular_rejects_degree(self):
        with pytest.raises(ValueError):
            random_regular_topology(4, 5)

    def test_erdos_renyi_min_degree(self):
        t = erdos_renyi_topology(12, 0.5, seed=1, min_degree=3)
        assert t.min_degree() >= 3
        assert t.is_connected()

    def test_erdos_renyi_too_sparse(self):
        with pytest.raises(RuntimeError):
            erdos_renyi_topology(20, 0.01, seed=1)

    def test_wheel_of_cliques(self):
        t = wheel_of_cliques_topology(3, 3)
        assert t.n == 9
        assert t.is_connected()
        # inside a clique: connected; across non-adjacent cliques... with
        # 3 cliques every pair of cliques is adjacent, use 4
        t4 = wheel_of_cliques_topology(4, 2)
        assert not t4.allows(0, 4)  # clique 0 to clique 2 (opposite)

    def test_wheel_validates(self):
        with pytest.raises(ValueError):
            wheel_of_cliques_topology(2, 3)

    def test_node_labels_validated(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2, 3])
        with pytest.raises(ValueError):
            Topology(g)

    def test_self_loops_rejected(self):
        g = nx.complete_graph(3)
        g.add_edge(1, 1)
        with pytest.raises(ValueError):
            Topology(g)

    def test_supports_iterative_bvc(self):
        assert complete_topology(5).supports_iterative_bvc(1, 1)  # deg+1=5 >= 3
        assert not ring_lattice_topology(8, 1).supports_iterative_bvc(2, 1)

    def test_diameter(self):
        assert complete_topology(4).diameter() == 1
        assert ring_lattice_topology(8, 1).diameter() == 4


class Probe(SyncProcess):
    """Sends to everyone; records who it hears from."""

    def on_round(self, ctx, r, inbox):
        if r == 0:
            ctx.broadcast("x", ctx.pid, round=0)
        elif r == 1:
            ctx.decide(tuple(sorted(inbox)))


class TestTopologyScheduling:
    def test_messages_dropped_across_missing_edges(self):
        topo = ring_lattice_topology(5, 1)
        procs = [Probe() for _ in range(5)]
        res = SynchronousScheduler(procs, f=0, topology=topo).run()
        for pid in range(5):
            heard = set(res.decisions[pid])
            assert heard == set(topo.neighbors(pid)) | {pid}

    def test_complete_topology_equals_none(self):
        procs = [Probe() for _ in range(4)]
        res_none = SynchronousScheduler([Probe() for _ in range(4)], f=0).run()
        res_topo = SynchronousScheduler(
            procs, f=0, topology=complete_topology(4)
        ).run()
        assert res_none.decisions == res_topo.decisions

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SynchronousScheduler(
                [Probe() for _ in range(4)], f=0, topology=complete_topology(5)
            )

    def test_byzantine_cannot_reach_non_neighbours(self):
        """A Byzantine sender's messages across missing edges are dropped
        too — it cannot conjure wires."""
        from repro.system.adversary import Adversary, ByzantineStrategy
        from repro.system.messages import Message

        class Spammer(ByzantineStrategy):
            def inject(self, pid, view):
                return [
                    Message(pid, dst, "x", f"spam-{dst}", round=view.round)
                    for dst in range(view.n)
                    if dst != pid
                ]

        topo = ring_lattice_topology(5, 1)
        procs = [Probe() for _ in range(5)]
        adv = Adversary(faulty=[0], strategy=Spammer())
        res = SynchronousScheduler(procs, f=1, adversary=adv, topology=topo).run()
        # process 2 is not adjacent to 0: it must not hear the spam
        assert 0 not in res.decisions[2]
