"""Tests for the FIFO complete-graph network buffer."""

from __future__ import annotations

import pytest

from repro.system.messages import Message
from repro.system.network import Network


def msg(src, dst, tag="t", payload=None, seq=0):
    return Message(src, dst, tag, payload, seq=seq)


class TestNetwork:
    def test_submit_and_pop_fifo(self):
        net = Network(3)
        net.submit(msg(0, 1, payload="a", seq=0))
        net.submit(msg(0, 1, payload="b", seq=1))
        assert net.pop((0, 1)).payload == "a"
        assert net.pop((0, 1)).payload == "b"

    def test_out_of_range_rejected(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.submit(msg(0, 5))

    def test_pending_links_sorted_deterministic(self):
        net = Network(3)
        net.submit(msg(2, 0))
        net.submit(msg(0, 1))
        net.submit(msg(1, 2))
        assert net.pending_links() == [(0, 1), (1, 2), (2, 0)]

    def test_peek_does_not_remove(self):
        net = Network(2)
        net.submit(msg(0, 1, payload="x"))
        assert net.peek((0, 1)).payload == "x"
        assert net.pending_count() == 1

    def test_pop_empty_link_raises(self):
        net = Network(2)
        with pytest.raises(KeyError):
            net.pop((0, 1))

    def test_drain_all_empties(self):
        net = Network(3)
        for i in range(3):
            net.submit(msg(i, (i + 1) % 3))
        drained = list(net.drain_all())
        assert len(drained) == 3
        assert net.pending_count() == 0

    def test_stats_counts(self):
        net = Network(2)
        net.submit(msg(0, 1, tag="a"))
        net.submit(msg(0, 1, tag="a"))
        net.submit(msg(1, 0, tag="b"))
        list(net.drain_all())
        assert net.stats.messages_sent == 3
        assert net.stats.messages_delivered == 3
        assert net.stats.per_tag == {"a": 2, "b": 1}
