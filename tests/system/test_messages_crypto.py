"""Tests for message envelopes, canonical serialisation, and signatures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system.crypto import Signature, SignatureScheme
from repro.system.messages import Message, canonical_bytes


class TestCanonicalBytes:
    def test_ndarray_stable(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 2.0, 3.0])
        assert canonical_bytes(a) == canonical_bytes(b)

    def test_ndarray_value_sensitive(self):
        assert canonical_bytes(np.array([1.0])) != canonical_bytes(np.array([2.0]))

    def test_shape_sensitive(self):
        assert canonical_bytes(np.zeros((2, 3))) != canonical_bytes(np.zeros((3, 2)))

    def test_nested_structures(self):
        x = ("tag", [np.array([1.0]), {"k": np.float64(2.0)}])
        y = ("tag", [np.array([1.0]), {"k": np.float64(2.0)}])
        assert canonical_bytes(x) == canonical_bytes(y)

    def test_dict_order_insensitive(self):
        assert canonical_bytes({"a": 1, "b": 2}) == canonical_bytes({"b": 2, "a": 1})

    def test_tuple_vs_list_equal(self):
        assert canonical_bytes((1, 2)) == canonical_bytes([1, 2])


class TestMessage:
    def test_repr_contains_route(self):
        m = Message(0, 1, "x", None, round=3)
        assert "0->1" in repr(m)
        assert "r=3" in repr(m)

    def test_frozen(self):
        m = Message(0, 1, "x", None)
        with pytest.raises(AttributeError):
            m.src = 2


class TestSignatures:
    def test_sign_verify_roundtrip(self, rng):
        scheme = SignatureScheme(4, rng)
        sig = scheme.sign(2, ("hello", np.array([1.0])))
        assert scheme.verify(("hello", np.array([1.0])), sig)

    def test_wrong_message_fails(self, rng):
        scheme = SignatureScheme(4, rng)
        sig = scheme.sign(2, "hello")
        assert not scheme.verify("world", sig)

    def test_wrong_signer_fails(self, rng):
        scheme = SignatureScheme(4, rng)
        sig = scheme.sign(2, "hello")
        forged = Signature(3, sig.digest)
        assert not scheme.verify("hello", forged)

    def test_unknown_signer_rejected(self, rng):
        scheme = SignatureScheme(4, rng)
        with pytest.raises(ValueError):
            scheme.sign(7, "x")
        assert not scheme.verify("x", Signature(9, b"\x00" * 32))

    def test_restricted_signer_capability(self, rng):
        scheme = SignatureScheme(4, rng)
        sign = scheme.signer_for({1, 2})
        sig = sign(1, "payload")
        assert scheme.verify("payload", sig)
        with pytest.raises(PermissionError):
            sign(0, "payload")  # cannot sign as a correct process

    def test_distinct_runs_distinct_keys(self):
        s1 = SignatureScheme(3, np.random.default_rng(1))
        s2 = SignatureScheme(3, np.random.default_rng(2))
        sig = s1.sign(0, "x")
        assert not s2.verify("x", sig)

    def test_repr(self, rng):
        scheme = SignatureScheme(2, rng)
        assert "Sig(p0" in repr(scheme.sign(0, "x"))
