"""Tests for Bracha asynchronous reliable broadcast."""

from __future__ import annotations

import pytest

from repro.system.adversary import (
    Adversary,
    DuplicateStrategy,
    EquivocateStrategy,
    SilentStrategy,
)
from repro.system.broadcast.bracha import ECHO, INIT, READY, BrachaState

from .broadcast_harness import run_bracha


class TestBrachaUnit:
    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            BrachaState(3, 1, 0, 0)

    def test_sender_start(self):
        st = BrachaState(4, 1, 0, 0)
        msgs = st.start("v")
        assert len(msgs) == 4
        assert all(p == (INIT, "v") for _, p in msgs)

    def test_non_sender_start_empty(self):
        assert BrachaState(4, 1, 0, 1).start("v") == []

    def test_echo_on_init_from_sender_only(self):
        st = BrachaState(4, 1, 0, 1)
        assert st.on_message(2, (INIT, "v")) == []  # not the sender
        out = st.on_message(0, (INIT, "v"))
        assert len(out) == 4 and all(p == (ECHO, "v") for _, p in out)
        # second init: no double echo
        assert st.on_message(0, (INIT, "v")) == []

    def test_ready_on_echo_quorum(self):
        st = BrachaState(4, 1, 0, 1)  # echo threshold = ceil(6/2)=3
        assert st.on_message(0, (ECHO, "v")) == []
        assert st.on_message(2, (ECHO, "v")) == []
        out = st.on_message(3, (ECHO, "v"))
        assert all(p == (READY, "v") for _, p in out)

    def test_duplicate_echoes_not_counted(self):
        st = BrachaState(4, 1, 0, 1)
        st.on_message(0, (ECHO, "v"))
        st.on_message(0, (ECHO, "v"))
        out = st.on_message(0, (ECHO, "v"))
        assert out == []  # still only one distinct echoer

    def test_ready_amplification(self):
        """f+1 readys trigger own ready even without echo quorum."""
        st = BrachaState(4, 1, 0, 1)
        assert st.on_message(2, (READY, "v")) == []
        out = st.on_message(3, (READY, "v"))
        assert all(p == (READY, "v") for _, p in out)

    def test_delivery_on_ready_quorum(self):
        st = BrachaState(4, 1, 0, 1)
        for src in (0, 2, 3):
            st.on_message(src, (READY, "v"))
        assert st.delivered
        assert st.delivered_value == "v"

    def test_malformed_payload_ignored(self):
        st = BrachaState(4, 1, 0, 1)
        assert st.on_message(0, "junk") == []
        assert st.on_message(0, ("weird", 1, 2)) == []


class TestBrachaProtocol:
    def test_failure_free(self):
        res = run_bracha(4, 1, 0, ("x", 1.0))
        assert res.completed
        assert all(v == ("x", 1.0) for v in res.decisions.values())

    def test_silent_fault(self):
        res = run_bracha(
            4, 1, 0, "v", Adversary(faulty=[3], strategy=SilentStrategy())
        )
        assert res.completed
        assert all(res.decisions[p] == "v" for p in (0, 1, 2))

    def test_equivocating_sender_no_split_delivery(self):
        """An equivocating sender may prevent delivery, but can never make
        two correct processes deliver different values."""

        def equiv(tag, payload, dst, rng):
            phase, v = payload
            if phase == INIT:
                return (phase, "A" if dst < 2 else "B")
            return payload

        for seed in range(5):
            res = run_bracha(
                4, 1, 0, "V",
                Adversary(faulty=[0], strategy=EquivocateStrategy(equiv)),
                seed=seed, max_steps=20_000,
            )
            delivered = [
                v for p, v in res.decisions.items() if p != 0 and v is not None
            ]
            assert len(set(map(str, delivered))) <= 1

    def test_duplicates_harmless(self):
        res = run_bracha(
            4, 1, 0, "v", Adversary(faulty=[2], strategy=DuplicateStrategy(4))
        )
        assert all(res.decisions[p] == "v" for p in (0, 1, 3))

    def test_delay_policy_totality(self):
        """Totality under the starvation schedule: the victim still
        eventually delivers."""
        res = run_bracha(4, 1, 0, "v", seed=3)
        assert res.decisions[3] == "v"

    def test_larger_system_f2(self):
        res = run_bracha(
            7, 2, 0, "payload",
            Adversary(faulty=[5, 6], strategy=SilentStrategy()),
        )
        assert res.completed
        for p in range(5):
            assert res.decisions[p] == "payload"

    def test_fake_ready_injection_insufficient(self):
        """A single Byzantine process sending READY for a bogus value
        cannot reach the 2f+1 quorum."""
        def fake_ready(tag, payload, dst, rng):
            return (READY, "BOGUS")

        res = run_bracha(
            4, 1, 0, "v",
            Adversary(faulty=[2], strategy=EquivocateStrategy(fake_ready)),
            max_steps=50_000,
        )
        for p in (0, 1, 3):
            assert res.decisions.get(p) in ("v", None)
            assert res.decisions.get(p) != "BOGUS"
