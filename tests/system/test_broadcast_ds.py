"""Tests for authenticated Dolev–Strong broadcast."""

from __future__ import annotations

import pytest

from repro.system.adversary import (
    Adversary,
    AdversaryView,
    ByzantineStrategy,
    MutateStrategy,
    SilentStrategy,
)
from repro.system.broadcast.dolev_strong import DolevStrongState, ds_total_rounds
from repro.system.crypto import SignatureScheme
from repro.system.messages import Message

from .broadcast_harness import run_ds


def correct_values(res):
    return [res.decisions[p] for p in sorted(res.correct_decisions)]


class TestDSUnit:
    def test_sender_round0(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 0, 0, scheme)
        msgs = st.messages_for_round(0, 42)
        assert len(msgs) == 4
        value, chain = msgs[0][1]
        assert value == 42 and len(chain) == 1 and chain[0].signer == 0

    def test_invalid_chain_rejected(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 0, 1, scheme)
        bad_sig = scheme.sign(2, ("ds", 0, 0, 42))  # first signer not sender
        st.receive(1, 2, (42, (bad_sig,)))
        assert st.accepted == {}

    def test_short_chain_rejected_late(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 0, 1, scheme)
        sig = scheme.sign(0, ("ds", 0, 0, 42))
        st.receive(2, 3, (42, (sig,)))  # round 2 needs chain >= 2
        assert st.accepted == {}
        st.receive(1, 0, (42, (sig,)))  # round 1 with chain 1 is fine
        assert len(st.accepted) == 1

    def test_duplicate_signers_rejected(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 0, 1, scheme)
        sig = scheme.sign(0, ("ds", 0, 0, 42))
        st.receive(2, 3, (42, (sig, sig)))
        assert st.accepted == {}

    def test_decide_unique_vs_conflicting(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 0, 1, scheme, default="DEFAULT")
        s1 = scheme.sign(0, ("ds", 0, 0, "a"))
        s2 = scheme.sign(0, ("ds", 0, 0, "b"))
        st.receive(1, 0, ("a", (s1,)))
        assert st.decide() == "a"
        st.receive(1, 0, ("b", (s2,)))
        assert st.decide() == "DEFAULT"

    def test_total_rounds(self):
        assert ds_total_rounds(2) == 4


class TestDSProtocol:
    @pytest.mark.parametrize("n,f", [(4, 1), (5, 2)])
    def test_failure_free_validity(self, n, f):
        res, _ = run_ds(n, f, sender=0, value=("payload", 3))
        assert all(v == ("payload", 3) for v in res.decisions.values())

    def test_silent_sender(self):
        res, _ = run_ds(
            4, 1, 0, "v", Adversary(faulty=[0], strategy=SilentStrategy())
        )
        assert all(v is None for v in correct_values(res))

    def test_lying_relay_cannot_forge(self):
        """A faulty relay mutating values produces invalid signature
        chains — receivers discard them, validity holds."""
        res, _ = run_ds(
            4, 1, 0, "TRUTH",
            Adversary(
                faulty=[2],
                strategy=MutateStrategy(lambda tag, p, rng: ("FAKE", p[1])),
            ),
        )
        for p in (1, 3):
            assert res.decisions[p] == "TRUTH"

    def test_equivocating_sender_agreement(self):
        """Sender signs two values and sends different ones to different
        processes: relays expose the equivocation, all decide default."""

        class EquivSigner(ByzantineStrategy):
            def transform(self, msg: Message, view: AdversaryView):
                value, chain = msg.payload
                alt = "B" if msg.dst % 2 else "A"
                if view.sign is None or len(chain) != 1:
                    return [msg]
                sig = view.sign(msg.src, ("ds", 0, msg.src, alt))
                return [Message(msg.src, msg.dst, msg.tag, (alt, (sig,)), round=msg.round)]

        res, _ = run_ds(
            4, 1, 0, "V", Adversary(faulty=[0], strategy=EquivSigner())
        )
        vals = correct_values(res)
        assert len(set(map(str, vals))) == 1

    def test_f2_with_two_faults(self):
        res, _ = run_ds(
            5, 2, 0, "X",
            Adversary(
                faulty=[1, 3],
                strategies={
                    1: SilentStrategy(),
                    3: MutateStrategy(lambda tag, p, rng: ("Y", p[1])),
                },
            ),
        )
        for p in (2, 4):
            assert res.decisions[p] == "X"
