"""Shared harness embedding broadcast state machines into processes."""

from __future__ import annotations


import numpy as np

from repro.system.adversary import Adversary
from repro.system.broadcast.bracha import BrachaState
from repro.system.broadcast.dolev_strong import DolevStrongState
from repro.system.broadcast.om import EIGState
from repro.system.crypto import SignatureScheme
from repro.system.process import AsyncProcess, SyncProcess
from repro.system.scheduler import AsyncScheduler, SynchronousScheduler


class EIGProcess(SyncProcess):
    """One OM(f) broadcast instance, commander fixed."""

    def __init__(self, n, f, commander, pid, value=None, default=None):
        self.state = EIGState(n, f, commander, pid, default=default)
        self.value = value
        self.f = f

    def on_round(self, ctx, r, inbox):
        for src, entries in inbox.items():
            for tag, payload in entries:
                if tag == "eig":
                    self.state.receive(r, src, payload)
        if r <= self.f:
            for dst, payload in self.state.messages_for_round(r, self.value):
                ctx.send(dst, "eig", payload, round=r)
        if r == self.f + 1:
            ctx.decide(self.state.decide())


class DSProcess(SyncProcess):
    """One Dolev–Strong broadcast instance."""

    def __init__(self, n, f, sender, pid, scheme, value=None, default=None):
        self.state = DolevStrongState(n, f, sender, pid, scheme, default=default)
        self.value = value
        self.f = f

    def on_round(self, ctx, r, inbox):
        for src, entries in inbox.items():
            for tag, payload in entries:
                if tag == "ds":
                    self.state.receive(r, src, payload)
        if r <= self.f:
            for dst, payload in self.state.messages_for_round(r, self.value):
                ctx.send(dst, "ds", payload, round=r)
        if r == self.f + 1:
            ctx.decide(self.state.decide())


class BrachaProcess(AsyncProcess):
    """One Bracha RBC instance; decides on delivery."""

    def __init__(self, n, f, sender, pid, value=None):
        self.state = BrachaState(n, f, sender, pid)
        self.value = value

    def on_start(self, ctx):
        for dst, payload in self.state.start(self.value):
            ctx.send(dst, "rb", payload)

    def on_message(self, ctx, src, tag, payload):
        for dst, pl in self.state.on_message(src, payload):
            ctx.send(dst, "rb", pl)
        if self.state.delivered and not ctx.decided:
            ctx.decide(self.state.delivered_value)


def run_eig(n, f, commander, value, adversary=None, seed=0):
    procs = [
        EIGProcess(n, f, commander, pid, value if pid == commander else None)
        for pid in range(n)
    ]
    return SynchronousScheduler(
        procs, f, adversary, rng=np.random.default_rng(seed)
    ).run()


def run_ds(n, f, sender, value, adversary=None, seed=0):
    rng = np.random.default_rng(seed)
    scheme = SignatureScheme(n, rng)
    procs = [
        DSProcess(n, f, sender, pid, scheme, value if pid == sender else None)
        for pid in range(n)
    ]
    adversary = adversary or Adversary.none()
    return SynchronousScheduler(
        procs,
        f,
        adversary,
        rng=rng,
        sign=scheme.signer_for(set(adversary.faulty)),
    ).run(), scheme


def run_bracha(n, f, sender, value, adversary=None, seed=0, max_steps=100_000):
    procs = [
        BrachaProcess(n, f, sender, pid, value if pid == sender else None)
        for pid in range(n)
    ]
    return AsyncScheduler(
        procs, f, adversary, rng=np.random.default_rng(seed), max_steps=max_steps
    ).run()
