"""Tests for Byzantine strategies and the Adversary container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.system.adversary import (
    Adversary,
    AdversaryView,
    CrashStrategy,
    DuplicateStrategy,
    EquivocateStrategy,
    HonestStrategy,
    MutateStrategy,
    SilentStrategy,
)
from repro.system.messages import Message


def view(round=0):
    return AdversaryView(round=round, n=4, f=1, rng=np.random.default_rng(0))


def msg(dst=1, payload="v", src=0):
    return Message(src, dst, "t", payload)


class TestStrategies:
    def test_honest_passthrough(self):
        assert HonestStrategy().transform(msg(), view()) == [msg()]

    def test_silent_drops_everything(self):
        assert SilentStrategy().transform(msg(), view()) == []

    def test_crash_before_after(self):
        s = CrashStrategy(crash_round=2)
        assert s.transform(msg(), view(round=1)) == [msg()]
        assert s.transform(msg(), view(round=2)) == []
        assert s.transform(msg(), view(round=5)) == []

    def test_crash_partial_recipients(self):
        s = CrashStrategy(crash_round=1, partial_recipients={2})
        assert s.transform(msg(dst=2), view(round=1)) == [msg(dst=2)]
        assert s.transform(msg(dst=3), view(round=1)) == []

    def test_mutate_changes_payload(self):
        s = MutateStrategy(lambda tag, p, rng: p + "!")
        out = s.transform(msg(payload="v"), view())
        assert out[0].payload == "v!"
        assert out[0].dst == 1

    def test_mutate_drop_with_none(self):
        s = MutateStrategy(lambda tag, p, rng: None)
        assert s.transform(msg(), view()) == []

    def test_equivocate_per_destination(self):
        s = EquivocateStrategy(lambda tag, p, dst, rng: f"{p}-{dst}")
        assert s.transform(msg(dst=2), view())[0].payload == "v-2"
        assert s.transform(msg(dst=3), view())[0].payload == "v-3"

    def test_duplicate(self):
        s = DuplicateStrategy(3)
        assert len(s.transform(msg(), view())) == 3

    def test_duplicate_rejects_zero(self):
        with pytest.raises(ValueError):
            DuplicateStrategy(0)


class TestAdversary:
    def test_is_faulty(self):
        adv = Adversary(faulty=[1, 3])
        assert adv.is_faulty(1) and adv.is_faulty(3)
        assert not adv.is_faulty(0)

    def test_strategy_for_nonfaulty_raises(self):
        adv = Adversary(faulty=[1])
        with pytest.raises(ValueError):
            adv.strategy_for(0)

    def test_per_process_overrides(self):
        adv = Adversary(
            faulty=[1, 2],
            strategy=SilentStrategy(),
            strategies={2: HonestStrategy()},
        )
        assert isinstance(adv.strategy_for(1), SilentStrategy)
        assert isinstance(adv.strategy_for(2), HonestStrategy)

    def test_override_nonfaulty_rejected(self):
        with pytest.raises(ValueError):
            Adversary(faulty=[1], strategies={0: SilentStrategy()})

    def test_custom_process_nonfaulty_rejected(self):
        with pytest.raises(ValueError):
            Adversary(faulty=[1], custom_processes={0: object()})

    def test_transform_outbox_applies(self):
        adv = Adversary(faulty=[0], strategy=SilentStrategy())
        out = adv.transform_outbox(0, [msg(), msg(dst=2)], view())
        assert out == []

    def test_spoofed_sender_rejected(self):
        class Spoofer(HonestStrategy):
            def inject(self, pid, v):
                return [Message(pid + 1, 0, "t", "forged")]

        adv = Adversary(faulty=[0], strategy=Spoofer())
        with pytest.raises(ValueError):
            adv.transform_outbox(0, [], view())

    def test_none_adversary(self):
        adv = Adversary.none()
        assert not adv.faulty
