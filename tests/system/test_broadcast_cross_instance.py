"""Cross-instance and replay-safety tests for the broadcast protocols.

The consensus layer multiplexes ``n`` simultaneous broadcast instances;
these tests pin the isolation properties that makes that sound —
especially signature domain separation (a Dolev–Strong signature from one
instance must be useless in another) and EIG tree isolation.
"""

from __future__ import annotations


from repro.system.broadcast.dolev_strong import DolevStrongState
from repro.system.broadcast.om import EIGState
from repro.system.crypto import SignatureScheme


class TestDolevStrongDomainSeparation:
    def test_signature_not_replayable_across_instances(self, rng):
        scheme = SignatureScheme(4, rng)
        a = DolevStrongState(4, 1, 0, 1, scheme, instance="a")
        b = DolevStrongState(4, 1, 0, 1, scheme, instance="b")
        sig_a = scheme.sign(0, ("ds", "a", 0, 42))
        a.receive(1, 0, (42, (sig_a,)))
        assert len(a.accepted) == 1
        # replay the same (value, chain) into instance b: must be rejected
        b.receive(1, 0, (42, (sig_a,)))
        assert b.accepted == {}

    def test_signature_not_replayable_across_senders(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 2, 1, scheme, instance=0)
        # signature binds sender id 0, but this instance's sender is 2
        sig = scheme.sign(0, ("ds", 0, 0, 42))
        st.receive(1, 0, (42, (sig,)))
        assert st.accepted == {}

    def test_chain_extension_requires_valid_prefix(self, rng):
        scheme = SignatureScheme(4, rng)
        st = DolevStrongState(4, 1, 0, 1, scheme, instance=0)
        good = scheme.sign(0, ("ds", 0, 0, "v"))
        bad = scheme.sign(3, ("ds", 0, 0, "OTHER"))  # signs a different value
        st.receive(2, 3, ("v", (good, bad)))
        assert st.accepted == {}


class TestEIGInstanceIsolation:
    def test_paths_rooted_at_wrong_commander_rejected(self):
        st = EIGState(4, 1, commander=0, pid=1)
        st.receive(1, 2, ((2,), "v"))  # rooted at 2, not the commander
        assert st.tree == {}

    def test_parallel_instances_do_not_interfere(self):
        states = {c: EIGState(4, 1, c, 1) for c in range(4)}
        # feed instance-0's round-1 message into all states: only the
        # commander-0 instance stores it
        for c, st in states.items():
            st.receive(1, 0, ((0,), "v0"))
        assert states[0].tree == {(0,): "v0"}
        for c in (1, 2, 3):
            assert states[c].tree == {}

    def test_decide_idempotent(self):
        st = EIGState(4, 1, 0, 1)
        st.receive(1, 0, ((0,), "v"))
        first = st.decide()
        st.receive(2, 2, ((0, 2), "w"))  # late delivery after deciding
        assert st.decide() == first

    def test_relay_skips_own_paths(self):
        st = EIGState(4, 1, 0, 1)
        st.receive(1, 0, ((0,), "v"))
        msgs = st.messages_for_round(1, None)
        # relays (0, 1) to everyone; never relays a path containing itself twice
        assert all(payload[0] == (0, 1) for _, payload in msgs)
        assert len(msgs) == 4

    def test_no_relay_beyond_f_rounds(self):
        st = EIGState(4, 1, 0, 1)
        st.receive(1, 0, ((0,), "v"))
        assert st.messages_for_round(2, None) == []
