"""Tests for the reliable-broadcast-channel model (paper footnote 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import run_algo, run_k_relaxed
from repro.system import (
    ALL,
    Adversary,
    Message,
    MutateStrategy,
    SilentStrategy,
)
from repro.system.adversary import ByzantineStrategy
from repro.system.network import Network
from repro.system.process import AsyncProcess, Context, SyncProcess
from repro.system.scheduler import AsyncScheduler, SynchronousScheduler


class AtomicEcho(SyncProcess):
    def on_round(self, ctx, r, inbox):
        if r == 0:
            ctx.atomic_broadcast("v", ctx.pid, round=0)
        elif r == 1:
            got = sorted(
                payload for entries in inbox.values() for _, payload in entries
            )
            ctx.decide(tuple(got))


class TestAtomicMessage:
    def test_sentinel(self):
        msg = Message(0, ALL, "t", None)
        assert msg.is_atomic_broadcast

    def test_network_accepts_atomic(self):
        net = Network(3)
        net.submit(Message(1, ALL, "t", "x"))
        assert net.pending_count() == 1

    def test_context_atomic_broadcast_queues_one(self, rng):
        ctx = Context(0, 4, 1, rng)
        ctx.atomic_broadcast("t", "payload")
        assert len(ctx.outbox) == 1
        assert ctx.outbox[0].is_atomic_broadcast


class TestAtomicSync:
    def test_fanout_identical(self):
        procs = [AtomicEcho() for _ in range(4)]
        res = SynchronousScheduler(procs, f=0).run()
        assert all(v == (0, 1, 2, 3) for v in res.decisions.values())

    def test_mutation_allowed_equivocation_impossible(self):
        """A faulty sender may change its atomic value (one value for
        everyone) but a strategy that splits it into point-to-point sends
        is rejected by the channel model."""
        procs = [AtomicEcho() for _ in range(4)]
        adv = Adversary(
            faulty=[1], strategy=MutateStrategy(lambda tag, p, rng: 99)
        )
        res = SynchronousScheduler(procs, f=1, adversary=adv).run()
        vals = [res.decisions[p] for p in (0, 2, 3)]
        assert all(v == (0, 2, 3, 99) for v in vals)  # same lie to all

    def test_deatomise_rejected(self):
        class Deatomiser(ByzantineStrategy):
            def transform(self, msg, view):
                return [Message(msg.src, 0, msg.tag, msg.payload, round=msg.round)]

        procs = [AtomicEcho() for _ in range(4)]
        adv = Adversary(faulty=[1], strategy=Deatomiser())
        with pytest.raises(ValueError):
            SynchronousScheduler(procs, f=1, adversary=adv).run()

    def test_silent_atomic(self):
        procs = [AtomicEcho() for _ in range(4)]
        adv = Adversary(faulty=[2], strategy=SilentStrategy())
        res = SynchronousScheduler(procs, f=1, adversary=adv).run()
        assert res.decisions[0] == (0, 1, 3)


class AtomicAsyncEcho(AsyncProcess):
    def on_start(self, ctx):
        ctx.atomic_broadcast("v", ctx.pid)
        self.got = set()

    def on_message(self, ctx, src, tag, payload):
        self.got.add(payload)
        if len(self.got) == ctx.n and not ctx.decided:
            ctx.decide(tuple(sorted(self.got)))


class TestAtomicAsync:
    def test_async_fanout(self):
        procs = [AtomicAsyncEcho() for _ in range(3)]
        res = AsyncScheduler(procs, f=0).run()
        assert res.completed
        assert all(v == (0, 1, 2) for v in res.decisions.values())


class TestFootnote3Consensus:
    """n = 3f suffices on a broadcast channel (the paper's footnote 3)."""

    def test_algo_n3_f1(self, rng):
        inputs = rng.normal(size=(3, 3))
        out = run_algo(inputs, f=1, adversary=Adversary(faulty=[2]),
                       transport="atomic")
        assert out.ok
        assert out.result.rounds == 2  # the whole Step 1 is one exchange

    def test_algo_n3_with_outlier_fault(self, rng):
        inputs = rng.normal(size=(3, 4))
        inputs[2] = 100.0
        out = run_algo(inputs, f=1, adversary=Adversary(faulty=[2]),
                       transport="atomic")
        assert out.ok
        assert out.delta_used > 0

    def test_k1_n3(self, rng):
        inputs = rng.normal(size=(3, 2))
        out = run_k_relaxed(inputs, f=1, k=1,
                            adversary=Adversary(faulty=[1]),
                            transport="atomic")
        assert out.ok

    def test_atomic_matches_eig_failure_free(self, rng):
        """On failure-free runs the atomic channel and OM(f) produce the
        identical multiset, hence the identical decision."""
        inputs = rng.normal(size=(4, 3))
        a = run_algo(inputs, f=1, transport="atomic")
        b = run_algo(inputs, f=1, transport="eig")
        np.testing.assert_allclose(a.decisions[0], b.decisions[0], atol=1e-9)
