"""Tests for OM(f)/EIG Byzantine broadcast: validity + agreement under a
battery of adversaries."""

from __future__ import annotations

import pytest

from repro.system.adversary import (
    Adversary,
    CrashStrategy,
    DuplicateStrategy,
    EquivocateStrategy,
    MutateStrategy,
    SilentStrategy,
)
from repro.system.broadcast.om import EIGState, eig_total_rounds

from .broadcast_harness import run_eig


def correct_values(res):
    return [res.decisions[p] for p in sorted(res.correct_decisions)]


class TestEIGStateUnit:
    def test_rejects_small_n(self):
        with pytest.raises(ValueError):
            EIGState(3, 1, 0, 0)

    def test_rejects_bad_ids(self):
        with pytest.raises(ValueError):
            EIGState(4, 1, 5, 0)

    def test_commander_round0_messages(self):
        st = EIGState(4, 1, 2, 2)
        msgs = st.messages_for_round(0, "v")
        assert len(msgs) == 4
        assert all(payload == ((2,), "v") for _, payload in msgs)

    def test_non_commander_round0_silent(self):
        st = EIGState(4, 1, 2, 0)
        assert st.messages_for_round(0, None) == []

    def test_receive_validates_path(self):
        st = EIGState(4, 1, 0, 1)
        st.receive(1, 0, ((0,), "v"))  # valid
        assert st.tree == {(0,): "v"}
        st.receive(1, 2, ((0,), "w"))  # last hop mismatch: src=2 but path (0,)
        assert st.tree == {(0,): "v"}
        st.receive(1, 0, ((1, 1), "w"))  # repeated ids + wrong length
        st.receive(2, 0, ((0, 0), "w"))  # repeats
        st.receive(2, 3, ((0, 9), "w"))  # out of range... also last!=src
        assert st.tree == {(0,): "v"}

    def test_first_write_wins(self):
        st = EIGState(4, 1, 0, 1)
        st.receive(1, 0, ((0,), "v"))
        st.receive(1, 0, ((0,), "other"))
        assert st.tree[(0,)] == "v"

    def test_malformed_payload_ignored(self):
        st = EIGState(4, 1, 0, 1)
        st.receive(1, 0, "garbage")
        st.receive(1, 0, (None, "x"))
        assert st.tree == {}

    def test_total_rounds(self):
        assert eig_total_rounds(1) == 3
        assert eig_total_rounds(2) == 4


class TestEIGFailureFree:
    @pytest.mark.parametrize("n,f", [(4, 1), (5, 1), (7, 2)])
    def test_validity(self, n, f):
        res = run_eig(n, f, commander=0, value=("v", 1.5))
        assert all(v == ("v", 1.5) for v in res.decisions.values())


class TestEIGFaultyCommander:
    def test_equivocating_commander_agreement(self):
        def equiv(tag, payload, dst, rng):
            path, v = payload
            return (path, f"lie-{dst}") if len(path) == 1 else (path, v)

        for seed in range(3):
            res = run_eig(
                4, 1, 0, "V",
                adversary=Adversary(faulty=[0], strategy=EquivocateStrategy(equiv)),
                seed=seed,
            )
            vals = correct_values(res)
            assert len(set(map(str, vals))) == 1, "agreement violated"

    def test_silent_commander_default(self):
        res = run_eig(
            4, 1, 0, "V", adversary=Adversary(faulty=[0], strategy=SilentStrategy())
        )
        assert all(v is None for v in correct_values(res))

    def test_crash_mid_broadcast_agreement(self):
        """Commander crashes sending round 0 to only some recipients —
        the classic hard case; agreement must still hold."""
        for recips in [{1}, {1, 2}, {2, 3}]:
            res = run_eig(
                4, 1, 0, "V",
                adversary=Adversary(
                    faulty=[0], strategy=CrashStrategy(0, partial_recipients=recips)
                ),
            )
            vals = correct_values(res)
            assert len(set(map(str, vals))) == 1


class TestEIGFaultyLieutenant:
    @pytest.mark.parametrize("strategy_factory", [
        lambda: SilentStrategy(),
        lambda: MutateStrategy(lambda tag, p, rng: (p[0], "FAKE")),
        lambda: EquivocateStrategy(lambda tag, p, dst, rng: (p[0], f"L{dst}")),
        lambda: DuplicateStrategy(3),
        lambda: CrashStrategy(1),
    ])
    def test_validity_with_correct_commander(self, strategy_factory):
        """Whatever a faulty lieutenant does, correct processes decide
        the correct commander's value."""
        res = run_eig(
            4, 1, 0, "TRUTH",
            adversary=Adversary(faulty=[2], strategy=strategy_factory()),
        )
        for p in (1, 3):
            assert res.decisions[p] == "TRUTH"

    def test_two_faulty_lieutenants_f2(self):
        res = run_eig(
            7, 2, 0, "TRUTH",
            adversary=Adversary(
                faulty=[3, 5],
                strategies={
                    3: MutateStrategy(lambda tag, p, rng: (p[0], "A")),
                    5: EquivocateStrategy(lambda tag, p, dst, rng: (p[0], f"B{dst}")),
                },
            ),
        )
        for p in (1, 2, 4, 6):
            assert res.decisions[p] == "TRUTH"

    def test_faulty_commander_and_lieutenant_f2(self):
        def equiv(tag, payload, dst, rng):
            path, v = payload
            return (path, dst % 2)

        res = run_eig(
            7, 2, 0, "V",
            adversary=Adversary(
                faulty=[0, 4], strategy=EquivocateStrategy(equiv)
            ),
        )
        vals = [res.decisions[p] for p in (1, 2, 3, 5, 6)]
        assert len(set(map(str, vals))) == 1
