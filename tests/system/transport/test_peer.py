"""PeerLink: handshake, reconnect/backoff, retransmission, backpressure.

Each test stands up a miniature listener that performs the real
listener-side handshake (read HELLO, validate, reply HELLO) and then
collects decoded records — the same sequence ``LiveNode._serve_conn``
runs — so the link under test speaks to a faithful counterpart.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.system.messages import Message
from repro.system.transport import wire
from repro.system.transport.peer import PeerLink

INSTANCE = "test-run"


class MiniListener:
    """UDS listener doing the HELLO exchange, then recording frames."""

    def __init__(
        self,
        path: str,
        node_id: int,
        instance: str = INSTANCE,
        validate: bool = True,
        version: int = wire.WIRE_VERSION,
    ):
        self.path = path
        self.node_id = node_id
        self.instance = instance
        #: Wire version this listener advertises in its HELLO reply — a
        #: value below WIRE_VERSION makes the dialing link downgrade.
        self.version = version
        #: False replies with our HELLO without checking theirs — lets a
        #: test hand the dialer a mismatching identity to choke on.
        self.validate = validate
        self.records: list[tuple] = []
        self.connections = 0
        self._server = None
        self._tasks: list[asyncio.Task] = []

    async def start(self) -> None:
        self._server = await asyncio.start_unix_server(
            self._serve, path=self.path
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:  # handlers wake on EOF; drain before asserting
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def _serve(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.append(task)
        self.connections += 1
        try:
            head = await reader.readexactly(4)
            (length,) = struct.unpack("!I", head)
            hello = wire.decode_body(await reader.readexactly(length))
            if self.validate:
                wire.check_hello(hello, instance=self.instance)
            writer.write(
                wire.encode_hello(self.node_id, self.instance, self.version)
            )
            await writer.drain()
            async for record in wire.read_frames(reader):
                self.records.append(record)
        except (wire.WireError, ConnectionError, OSError, EOFError):
            pass
        finally:
            writer.close()


def make_link(path: str, **kwargs) -> PeerLink:
    def dial():
        return asyncio.open_unix_connection(path)

    kwargs.setdefault("instance", INSTANCE)
    return PeerLink(0, 1, dial, **kwargs)


class TestBackoffSchedule:
    def test_capped_exponential_ramp(self, tmp_path):
        link = make_link(str(tmp_path / "x.sock"))
        delays = [link._backoff(a) for a in range(1, 9)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 2.0, 2.0]

    def test_custom_base_and_cap(self, tmp_path):
        link = make_link(
            str(tmp_path / "x.sock"), backoff_base=0.01, backoff_cap=0.04
        )
        assert [link._backoff(a) for a in range(1, 5)] == [
            0.01, 0.02, 0.04, 0.04,
        ]


class TestHandshakeAndDelivery:
    def test_frames_flow_after_handshake(self, tmp_path):
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(path, node_id=1)
            await listener.start()
            link = make_link(path)
            link.start()
            await link.send_message(Message(0, 1, "bc:0", (1.0, 2.0)))
            await link.send_decided()
            await link.close()
            await listener.stop()
            return listener, link

        listener, link = asyncio.run(go())
        assert [r[0] for r in listener.records] == [wire.MSG, wire.DECIDED]
        assert link.stats.handshakes == 1
        assert link.stats.frames_sent == 2
        assert link.failed is None

    def test_instance_mismatch_is_permanent(self, tmp_path):
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(
                path, node_id=1, instance="other-run", validate=False
            )
            await listener.start()
            link = make_link(path)
            link.start()
            await link._writer_task  # dies on the mismatched HELLO reply
            assert isinstance(link.failed, wire.WireError)
            with pytest.raises(wire.WireError, match="failed permanently"):
                await link.send_message(Message(0, 1, "bc:0", ()))
            await listener.stop()

        asyncio.run(go())

    def test_unreachable_peer_fails_after_max_dials(self, tmp_path):
        path = str(tmp_path / "never.sock")  # nothing ever listens here

        async def go():
            link = make_link(
                path, backoff_base=0.001, backoff_cap=0.002,
                max_dial_failures=3,
            )
            link.start()
            await link._writer_task
            assert isinstance(link.failed, ConnectionError)
            assert "unreachable" in str(link.failed)
            with pytest.raises(wire.WireError, match="failed permanently"):
                await link.send_decided()

        asyncio.run(go())


    def test_silent_listener_exhausts_handshake_budget(self, tmp_path):
        # A listener that accepts but drops the connection before its
        # HELLO (e.g. it rejects ours) burns the same attempt budget as a
        # refused dial — the link must not redial forever.
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(path, node_id=1, instance="other-run")
            await listener.start()
            link = make_link(
                path, backoff_base=0.001, backoff_cap=0.002,
                max_dial_failures=3,
            )
            link.start()
            await link._writer_task
            await listener.stop()
            return link

        link = asyncio.run(go())
        assert isinstance(link.failed, ConnectionError)
        assert "never completed a handshake" in str(link.failed)


class TestReconnect:
    def test_chaos_close_reconnects_and_retransmits(self, tmp_path):
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(path, node_id=1)
            await listener.start()
            link = make_link(
                path, backoff_base=0.001, chaos_close_after=1
            )
            link.start()
            for i in range(3):
                await link.send_message(Message(0, 1, "bc:0", (float(i),)))
            # Wait for delivery before closing so the assertions below
            # don't depend on the close()-time drain grace.
            deadline = asyncio.get_running_loop().time() + 5.0
            while len(listener.records) < 3:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            await link.close()
            await listener.stop()
            return listener, link

        listener, link = asyncio.run(go())
        # The forced close is graceful (drained frames arrived); the frame
        # in flight rides over the reconnect, so the listener sees every
        # sequence number exactly once.
        seqs = [r[1] for r in listener.records if r[0] == wire.MSG]
        assert seqs == [0, 1, 2]
        assert link.stats.chaos_closes == 1
        assert link.stats.reconnects == 1
        assert link.stats.retransmits == 1
        assert listener.connections == 2

    def test_close_interrupts_backoff(self, tmp_path):
        # Regression: a writer redialling a peer that exited for good used
        # to serve out its full backoff ramp before noticing close() —
        # stalling cluster teardown for minutes.
        path = str(tmp_path / "gone.sock")

        async def go():
            link = make_link(
                path, backoff_base=30.0, backoff_cap=30.0
            )
            link.start()
            await asyncio.sleep(0.05)  # let the first dial fail
            start = asyncio.get_running_loop().time()
            await link.close()
            return asyncio.get_running_loop().time() - start

        elapsed = asyncio.run(go())
        assert elapsed < 1.0, f"close() waited {elapsed:.1f}s out the backoff"

    def test_close_drains_undelivered_frames_within_grace(self, tmp_path):
        # Regression: a node exiting while a peer link was mid-reconnect
        # used to abandon queued frames — if the abandoned frame was the
        # DECIDED announcement, the peer waited on it forever.  close()
        # now keeps redialling for `drain_grace` when frames remain.
        path = str(tmp_path / "n1.sock")

        async def go():
            link = make_link(path, backoff_base=0.01, backoff_cap=0.02)
            link.start()
            await link.send_decided()
            await asyncio.sleep(0.05)  # dial fails: nothing listening yet
            listener = MiniListener(path, node_id=1)
            await listener.start()
            await link.close()  # must deliver the queued DECIDED first
            await listener.stop()
            return listener

        listener = asyncio.run(go())
        kinds = [r[0] for r in listener.records]
        assert kinds == [wire.DECIDED]

    def test_close_gives_up_when_grace_expires(self, tmp_path):
        path = str(tmp_path / "gone.sock")

        async def go():
            link = make_link(
                path, backoff_base=0.01, backoff_cap=0.02, drain_grace=0.2
            )
            link.start()
            await link.send_decided()
            await asyncio.sleep(0.05)  # dial fails: nothing listening
            start = asyncio.get_running_loop().time()
            await link.close()
            return asyncio.get_running_loop().time() - start

        elapsed = asyncio.run(go())
        # Keeps trying for about the grace window, then stops — it must
        # neither bail instantly nor serve out the full reconnect ramp.
        assert 0.1 < elapsed < 2.0, f"close() took {elapsed:.2f}s"


class TestBackpressure:
    def test_full_queue_counts_and_waits(self, tmp_path):
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(path, node_id=1)
            await listener.start()
            link = make_link(path, queue_limit=1)
            await link.send_message(Message(0, 1, "bc:0", (0.0,)))  # fills
            blocked = asyncio.ensure_future(
                link.send_message(Message(0, 1, "bc:0", (1.0,)))
            )
            await asyncio.sleep(0)  # the producer is now parked on put()
            assert not blocked.done()
            assert link.stats.backpressure_waits == 1
            link.start()  # the writer drains the queue, unblocking it
            await blocked
            await link.close()
            await listener.stop()
            return listener

        listener = asyncio.run(go())
        assert len(listener.records) == 2


class TestVersionNegotiation:
    STAMP = (7, 12, (5, 12))

    def _exchange(self, path: str, listener_version: int):
        async def go():
            listener = MiniListener(path, node_id=1, version=listener_version)
            await listener.start()
            link = make_link(path)
            link.start()
            await link.send_message(
                Message(0, 1, "bc:0", (1.0,)), stamp=self.STAMP
            )
            await link.close()
            await listener.stop()
            return listener, link

        return asyncio.run(go())

    def test_v2_peer_receives_stamp(self, tmp_path):
        listener, link = self._exchange(str(tmp_path / "n1.sock"), 2)
        assert link.wire_version == 2
        (record,) = listener.records
        assert wire.message_stamp(record) == self.STAMP

    def test_v1_peer_downgrades_and_stamp_is_stripped(self, tmp_path):
        # The stamp lives only at wire version 2: against a v1 peer the
        # link must emit the legacy 7-tuple the peer can decode.
        listener, link = self._exchange(str(tmp_path / "n1.sock"), 1)
        assert link.wire_version == 1
        (record,) = listener.records
        assert len(record) == 7
        assert wire.message_stamp(record) is None
        seq, decoded = wire.decode_message(record)
        assert decoded.payload == (1.0,)


class TestLinkTelemetry:
    def test_bytes_and_queue_wait_recorded(self, tmp_path):
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(path, node_id=1)
            await listener.start()
            link = make_link(path)
            # Enqueue before starting the writer so frames measurably wait.
            await link.send_message(Message(0, 1, "bc:0", (0.0,)))
            await link.send_message(Message(0, 1, "bc:0", (1.0,)))
            link.start()
            await link.close()
            await listener.stop()
            return link

        link = asyncio.run(go())
        stats = link.stats
        assert stats.frames_sent == 2
        assert stats.bytes_sent > 0
        assert stats.queue_depth_peak == 2
        assert len(stats.queue_wait_samples) == 2
        assert all(s >= 0.0 for s in stats.queue_wait_samples)
        # as_dict exposes exactly the counter fields — gauges and samples
        # fold into the registry elsewhere, under their own metric types.
        assert set(stats.as_dict()) == set(stats.COUNTER_FIELDS)
        assert stats.as_dict()["bytes_sent"] == stats.bytes_sent

    def test_retransmit_samples_queue_wait_once(self, tmp_path):
        # A frame that rides over a reconnect is retransmitted, but its
        # time-in-queue was already measured: one sample per frame.
        path = str(tmp_path / "n1.sock")

        async def go():
            listener = MiniListener(path, node_id=1)
            await listener.start()
            link = make_link(path, backoff_base=0.001, chaos_close_after=1)
            link.start()
            for i in range(3):
                await link.send_message(Message(0, 1, "bc:0", (float(i),)))
            deadline = asyncio.get_running_loop().time() + 5.0
            while len(listener.records) < 3:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            await link.close()
            await listener.stop()
            return link

        link = asyncio.run(go())
        assert link.stats.retransmits == 1
        assert len(link.stats.queue_wait_samples) == 3


class TestSequenceNumbers:
    def test_monotonic_per_link(self, tmp_path):
        link = make_link(str(tmp_path / "x.sock"))
        assert [link.next_seq() for _ in range(4)] == [0, 1, 2, 3]

    def test_receiver_drops_duplicate_seq(self, tmp_path):
        # Receiver-side dedup lives in LiveNode._on_record; drive it
        # directly with a replayed record, as a retransmitting link would.
        from repro.system.transport.live import LiveNode, NodeAddress

        node = LiveNode(
            0, 2, 0, process=None,
            address=NodeAddress(0, "uds", path=str(tmp_path / "n0.sock")),
            instance=INSTANCE,
        )

        async def go():
            record = wire.decode_body(
                wire.encode_message(Message(1, 0, "bc:1", (1.0,)), 0)[4:]
            )
            await node._on_record(1, record)
            await node._on_record(1, record)  # exact retransmit
            return node.dupes_dropped

        assert asyncio.run(go()) == 1
        assert len(node._pending_msgs[1]) == 1
