"""Sim-vs-live conformance: the same specs decide on both backends.

Honest runs of the four headline algorithms execute over real loopback
sockets (``transport="live-uds"``, plus one TCP case) with the validity
envelope probe attached, and must reach decisions the probe accepts.
``SimTransport`` must stay bit-identical to the committed sweep digest.
Live runs are real concurrency — the assertions here are about protocol
outcomes (agreement, validity, termination), never about schedules.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import RunSpec, run
from repro.core.exact_bvc import ExactBVCProcess
from repro.exec import (
    SweepGrid,
    build_topology,
    load_topology,
    run_grid,
    write_topology,
)
from repro.exec.live_launch import allocate_addresses
from repro.system.adversary import Adversary, SilentStrategy
from repro.system.topology import ring_lattice_topology
from repro.system.transport.base import (
    TransportError,
    get_transport,
    transport_names,
)
from repro.system.transport.live import LiveTransport, node_seeds

REPO = Path(__file__).resolve().parents[3]


class TestRegistry:
    def test_shipped_backends(self):
        assert transport_names() == ("live-tcp", "live-uds", "sim")

    def test_unknown_name_is_value_error_with_choices(self):
        with pytest.raises(ValueError, match="choices"):
            get_transport("carrier-pigeon")

    def test_determinism_flags(self):
        assert get_transport("sim").deterministic
        assert not get_transport("live-tcp").deterministic
        assert not get_transport("live-uds").deterministic

    def test_backend_names_self_identify(self):
        for name in transport_names():
            assert get_transport(name).name == name


#: (algorithm, spec knobs) — sizes span 4..7 nodes per the acceptance
#: criteria; exact uses d=2 so n=5 clears its (d+1)f+1 floor.
LIVE_CASES = [
    ("exact", dict(n=5, d=2, f=1)),
    ("algo", dict(n=4, d=3, f=1, p=2.0)),
    ("krelaxed", dict(n=6, d=4, f=1, k=1)),
    ("averaging", dict(n=7, d=2, f=2, epsilon=5e-2)),
]


class TestLiveConformance:
    @pytest.mark.parametrize(
        "algorithm,knobs", LIVE_CASES, ids=[c[0] for c in LIVE_CASES]
    )
    def test_honest_decision_over_uds(self, algorithm, knobs):
        outcome = run(
            RunSpec(
                algorithm=algorithm,
                seed=7,
                transport="live-uds",
                probes=("validity",),
                **knobs,
            )
        )
        assert outcome.result.completed
        assert outcome.ok, outcome.report
        assert outcome.probe_violations == 0
        report = outcome.probe_reports[0]
        assert report.name == "validity" and report.checks > 0

    def test_honest_decision_over_tcp(self):
        outcome = run(
            RunSpec(
                algorithm="algo", n=4, d=2, f=1, seed=11,
                transport="live-tcp", probes=("validity",),
            )
        )
        assert outcome.result.completed and outcome.ok
        assert outcome.result.metrics.counter_value("net.live.handshakes") > 0

    def test_live_matches_sim_verdicts(self):
        # Live schedules differ from simulated ones, so decisions need
        # not match bit-for-bit — but both backends must satisfy the
        # same correctness envelope on the same inputs.
        spec = RunSpec(algorithm="exact", n=5, d=2, f=1, seed=3)
        sim = run(spec)
        live = run(
            RunSpec(algorithm="exact", n=5, d=2, f=1, seed=3,
                    transport="live-uds")
        )
        assert sim.ok and live.ok
        np.testing.assert_array_equal(sim.honest_inputs, live.honest_inputs)

    def test_disconnect_survival(self):
        # Force node 0 to drop its link to node 1 mid-run; the run must
        # still decide, riding the reconnect + retransmission path.
        transport = LiveTransport(
            kind="uds", chaos_drop_link=(0, 1), chaos_drop_after=2
        )
        n, f, d = 5, 1, 2
        inputs = np.random.default_rng(5).normal(size=(n, d))
        processes = [
            ExactBVCProcess(n, f, pid, inputs[pid]) for pid in range(n)
        ]
        result = transport.run_sync(processes, f, seed=5)
        assert result.completed
        decisions = list(result.decisions.values())
        assert len(decisions) == n
        for vec in decisions[1:]:
            np.testing.assert_array_equal(vec, decisions[0])
        assert result.metrics.counter_value("net.live.chaos_closes") == 1
        assert result.metrics.counter_value("net.live.reconnects") >= 1


class TestLiveRejections:
    def test_adversary_requires_simulator(self):
        with pytest.raises(TransportError, match="honest"):
            run(
                RunSpec(
                    algorithm="algo", n=4, d=2, f=1,
                    adversary=Adversary(faulty=[3], strategy=SilentStrategy()),
                    transport="live-uds",
                )
            )

    def test_incomplete_topology_requires_simulator(self):
        n, f = 6, 1
        inputs = np.zeros((n, 2))
        processes = [
            ExactBVCProcess(n, f, pid, inputs[pid]) for pid in range(n)
        ]
        with pytest.raises(TransportError, match="complete graph"):
            LiveTransport(kind="uds").run_sync(
                processes, f, topology=ring_lattice_topology(n, 1)
            )

    def test_delivery_policy_requires_simulator(self):
        from repro.system.scheduler import FifoPolicy

        with pytest.raises(TransportError, match="simulator"):
            LiveTransport(kind="uds").run_async([], 0, policy=FifoPolicy())


class TestSimDigest:
    def test_sim_transport_reproduces_committed_sweep_digest(self):
        # The whole sweep engine now routes through SimTransport; the
        # decision digest pinned by BENCH_sweep.json must be unchanged.
        doc = json.loads((REPO / "BENCH_sweep.json").read_text())
        grid = doc["grid"]
        result = run_grid(
            SweepGrid(
                algorithms=tuple(grid["algorithms"]),
                dimensions=tuple(grid["dimensions"]),
                faults=tuple(grid["faults"]),
                sizes=tuple(grid["sizes"]),
                adversaries=tuple(grid["adversaries"]),
                reps=int(grid["reps"]),
                base_seed=int(grid["base_seed"]),
                p=float(grid["p"]),
                k=int(grid["k"]),
                epsilon=float(grid["epsilon"]),
                input_scale=float(grid["input_scale"]),
            )
        )
        assert result.decisions_digest() == doc["decisions_digest"]["serial"]

    def test_sim_runs_are_repeatable(self):
        spec = RunSpec(algorithm="krelaxed", n=6, d=3, f=1, seed=9)
        a, b = run(spec), run(spec)
        for pid in a.decisions:
            np.testing.assert_array_equal(a.decisions[pid], b.decisions[pid])


class TestNodeSeeds:
    def test_every_node_derives_the_same_table(self):
        assert node_seeds(42, 5) == node_seeds(42, 5)
        assert node_seeds(42, 5) != node_seeds(43, 5)
        assert len(set(node_seeds(0, 7))) == 7


class TestTopologyFiles:
    def _nodes(self, tmp_path, n):
        return allocate_addresses(n, "uds", base_dir=str(tmp_path))

    def test_round_trip(self, tmp_path):
        doc = build_topology(
            "averaging", 4, 2, 1, self._nodes(tmp_path, 4),
            kind="uds", seed=3,
        )
        path = tmp_path / "topology.json"
        write_topology(path, doc)
        assert load_topology(path) == doc

    def test_averaging_rounds_resolved_at_build_time(self, tmp_path):
        # Subprocess nodes must agree on the round budget without
        # coordinating, so it is computed once and written into the doc.
        doc = build_topology(
            "averaging", 4, 2, 1, self._nodes(tmp_path, 4),
            kind="uds", seed=3,
        )
        assert int(doc["rounds"]) >= 1

    def test_build_validation(self, tmp_path):
        nodes = self._nodes(tmp_path, 4)
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_topology("nope", 4, 2, 1, nodes, kind="uds")
        with pytest.raises(ValueError, match="kind"):
            build_topology("algo", 4, 2, 1, nodes, kind="smoke-signals")
        with pytest.raises(ValueError, match="scalar"):
            build_topology("scalar", 4, 2, 1, nodes, kind="uds")
        with pytest.raises(ValueError, match="n >="):
            build_topology("exact", 4, 3, 1, nodes, kind="uds")
        with pytest.raises(ValueError, match="node addresses"):
            build_topology("algo", 4, 2, 1, nodes[:3], kind="uds")

    def test_load_rejects_tampered_docs(self, tmp_path):
        doc = build_topology(
            "algo", 4, 2, 1, self._nodes(tmp_path, 4), kind="uds"
        )
        path = tmp_path / "topology.json"

        bad = dict(doc, schema="something/else")
        write_topology(path, doc)  # sanity: the good doc loads
        load_topology(path)
        path.write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="schema"):
            load_topology(path)

        missing = {k: v for k, v in doc.items() if k != "seed"}
        path.write_text(json.dumps(missing))
        with pytest.raises(ValueError, match="seed"):
            load_topology(path)

    def test_tcp_addresses_are_distinct(self):
        addrs = allocate_addresses(5, "tcp")
        ports = [a.port for a in addrs]
        assert len(set(ports)) == 5 and all(p > 0 for p in ports)
