"""Tests for the transport abstraction: wire protocol, links, backends."""
