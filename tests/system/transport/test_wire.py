"""Wire protocol: framing, record round-trips, and handshake validation.

The message round-trip coverage is cross-checked against the FLOW001
sent-kind inventory: every message kind any shipped process class sends
must round-trip through ``encode_message``/``decode_message`` here, so
a new protocol message cannot ship without wire coverage.
"""

from __future__ import annotations

import ast
import asyncio
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.lint.engine import iter_python_files, logical_path_for
from repro.lint.flow.model import build_model
from repro.lint.flow.msgflow import class_profile
from repro.system.messages import ALL, Message
from repro.system.transport import wire

SRC = Path(__file__).resolve().parents[3] / "src" / "repro"

#: One representative message per shipped kind (tag prefix before ":").
#: Payload shapes mirror what the algorithms actually put on the wire.
REPRESENTATIVES = {
    "bc": Message(0, 2, "bc:0", np.array([1.5, -2.0, 0.25]), round=0),
    "abc": Message(1, ALL, "abc", ("echo", 0, (0.5, 1.0)), round=1),
    "rva": Message(2, 3, "rva:echo:4", (4, np.array([0.1, 0.2])), round=None),
    "iter": Message(3, 1, "iter", np.array([0.0, 7.0]), round=5),
    "val": Message(0, 1, "val", np.array([2.0]), round=0),
}


def shipped_sent_kinds() -> set[str]:
    """FLOW-resolved message kinds sent by any shipped process class."""
    records = []
    for path in iter_python_files([str(SRC)]):
        source = Path(path).read_text()
        records.append(
            (
                path,
                logical_path_for(path),
                ast.parse(source),
                tuple(source.splitlines()),
            )
        )
    model = build_model(records)
    kinds: set[str] = set()
    for cls in model.process_classes():
        for site in class_profile(model, cls).sends:
            if site.kind is not None:
                kinds.add(site.kind)
    return kinds


def roundtrip(frame: bytes) -> tuple:
    """Strip the length prefix and decode the body."""
    length = int.from_bytes(frame[:4], "big")
    body = frame[4:]
    assert len(body) == length
    return wire.decode_body(body)


class TestMessageRoundTrip:
    def test_every_shipped_kind_has_a_representative(self):
        # The inventory is whatever FLOW001 sees — the same analysis the
        # linter gates on — so this cannot silently go stale.
        kinds = shipped_sent_kinds()
        assert kinds, "flow analysis found no sent kinds — model broken?"
        missing = kinds - set(REPRESENTATIVES)
        assert not missing, f"no wire round-trip coverage for {missing}"

    @pytest.mark.parametrize("kind", sorted(REPRESENTATIVES))
    def test_roundtrip_identity(self, kind):
        msg = REPRESENTATIVES[kind]
        record = roundtrip(wire.encode_message(msg, 17))
        seq, decoded = wire.decode_message(record)
        assert seq == 17
        assert decoded.src == msg.src
        assert decoded.dst == msg.dst
        assert decoded.tag == msg.tag
        assert decoded.round == msg.round
        assert _payload_equal(decoded.payload, msg.payload)

    def test_payload_defensively_copied(self):
        payload = np.array([1.0, 2.0])
        frame = wire.encode_message(Message(0, 1, "bc:0", payload), 0)
        payload[0] = 99.0  # sender mutates after queueing
        _, decoded = wire.decode_message(roundtrip(frame))
        assert decoded.payload[0] == 1.0

    def test_atomic_envelope_detection(self):
        assert wire.is_atomic(Message(0, ALL, "abc", ()))
        assert not wire.is_atomic(Message(0, 1, "bc:0", ()))


def _payload_equal(a, b) -> bool:
    if isinstance(b, np.ndarray):
        return isinstance(a, np.ndarray) and np.array_equal(a, b)
    if isinstance(b, tuple):
        return (
            isinstance(a, tuple)
            and len(a) == len(b)
            and all(_payload_equal(x, y) for x, y in zip(a, b))
        )
    return a == b


class TestVersionedMessages:
    STAMP = (42, 17, (3, 17, 0, 5))

    def test_stamp_roundtrip(self):
        msg = Message(1, 2, "rva:echo:0", np.array([0.5]), round=3)
        record = roundtrip(wire.encode_message(msg, 9, stamp=self.STAMP))
        assert len(record) == 8
        assert wire.message_stamp(record) == self.STAMP
        seq, decoded = wire.decode_message(record)
        assert seq == 9
        assert decoded.tag == msg.tag

    def test_stamp_coordinates_normalised(self):
        # Stamps may arrive with numpy ints or a list clock; the reader
        # always sees plain ints and a tuple.
        stamp = (np.int64(1), np.int64(4), [np.int64(2), np.int64(4)])
        record = roundtrip(wire.encode_message(Message(0, 1, "val", ()), 0, stamp=stamp))
        assert wire.message_stamp(record) == (1, 4, (2, 4))

    def test_unstamped_v2_frame_has_no_stamp(self):
        record = roundtrip(wire.encode_message(Message(0, 1, "val", ()), 0))
        assert len(record) == 8
        assert wire.message_stamp(record) is None

    def test_v1_downgrade_strips_stamp(self):
        # encode_for_version at version 1 must emit the legacy 7-tuple a
        # version-1 peer can decode.
        rec = wire.message_record(Message(0, 1, "val", ()), 5, self.STAMP)
        record = roundtrip(wire.encode_for_version(rec, 1))
        assert len(record) == 7
        assert wire.message_stamp(record) is None
        seq, decoded = wire.decode_message(record)
        assert seq == 5
        assert decoded.tag == "val"

    def test_message_record_copies_payload_at_enqueue(self):
        payload = np.array([1.0, 2.0])
        rec = wire.message_record(Message(0, 1, "bc:0", payload), 0)
        payload[0] = 99.0  # sender mutates after queueing, before encode
        _, decoded = wire.decode_message(roundtrip(wire.encode_for_version(rec, 2)))
        assert decoded.payload[0] == 1.0

    def test_negotiate_picks_newest_common_version(self):
        assert wire.negotiate(1) == 1
        assert wire.negotiate(2) == 2
        assert wire.negotiate(99) == wire.WIRE_VERSION

    def test_v1_hello_accepted(self):
        record = roundtrip(wire.encode_hello(3, "run-x", version=1))
        assert wire.check_hello(record, instance="run-x", expected_id=3) == 3
        assert wire.hello_version(record) == 1


class TestControlRecords:
    def test_hello_roundtrip(self):
        record = roundtrip(wire.encode_hello(3, "run-x"))
        assert record == (wire.HELLO, 3, wire.WIRE_VERSION, "run-x")
        assert wire.check_hello(record, instance="run-x", expected_id=3) == 3

    def test_hello_version_mismatch(self):
        record = roundtrip(wire.encode_hello(3, "run-x", version=99))
        with pytest.raises(wire.WireError, match="version mismatch"):
            wire.check_hello(record, instance="run-x")

    def test_hello_instance_mismatch(self):
        record = roundtrip(wire.encode_hello(3, "run-x"))
        with pytest.raises(wire.WireError, match="instance mismatch"):
            wire.check_hello(record, instance="run-y")

    def test_hello_identity_mismatch(self):
        record = roundtrip(wire.encode_hello(3, "run-x"))
        with pytest.raises(wire.WireError, match="expected 4"):
            wire.check_hello(record, instance="run-x", expected_id=4)

    def test_round_roundtrip(self):
        assert roundtrip(wire.encode_round(5, 2, True)) == (
            wire.ROUND, 5, 2, True,
        )

    def test_decided_roundtrip(self):
        assert roundtrip(wire.encode_decided(9, 1)) == (wire.DECIDED, 9, 1)


class TestMalformedFrames:
    def test_oversized_body_refused_at_encode(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 64)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.encode_record((wire.MSG, 0, 0, 1, "bc:0", bytes(1024), 0))

    def test_undecodable_body(self):
        with pytest.raises(wire.WireError, match="undecodable"):
            wire.decode_body(b"\x00not a pickle")

    def test_non_tuple_body(self):
        with pytest.raises(wire.WireError, match="not a record tuple"):
            wire.decode_body(pickle.dumps(["msg", 1]))

    def test_unknown_record_type(self):
        with pytest.raises(wire.WireError, match="unknown record type"):
            wire.decode_body(pickle.dumps(("gossip", 1, 2)))

    @pytest.mark.parametrize(
        "record",
        [
            (wire.HELLO, 1, 1),
            (wire.MSG, 0, 0, 1, "bc:0", None),
            (wire.ROUND, 0, 1),
            (wire.DECIDED, 0),
        ],
    )
    def test_wrong_arity(self, record):
        with pytest.raises(wire.WireError, match="malformed"):
            wire.decode_body(pickle.dumps(record))


class TestReadFrames:
    def _collect(self, data: bytes) -> list[tuple]:
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            reader.feed_eof()
            return [record async for record in wire.read_frames(reader)]

        return asyncio.run(go())

    def test_stream_of_frames(self):
        data = (
            wire.encode_hello(0, "i")
            + wire.encode_round(0, 1, False)
            + wire.encode_decided(1, 0)
        )
        records = self._collect(data)
        assert [r[0] for r in records] == [wire.HELLO, wire.ROUND, wire.DECIDED]

    def test_truncated_trailing_frame_is_clean_eof(self):
        # A frame cut off mid-body counts as connection loss: the sender
        # retransmits it after reconnecting, so the reader just stops.
        whole = wire.encode_round(0, 1, False)
        records = self._collect(whole + wire.encode_decided(1, 0)[:5])
        assert [r[0] for r in records] == [wire.ROUND]

    def test_oversized_announced_frame_raises(self):
        head = (wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(wire.WireError, match="exceeds"):
            self._collect(head + b"x")
