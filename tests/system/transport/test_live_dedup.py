"""Wire-vs-effective delivery accounting and causal stamping in LiveNode.

Retransmitted frames (reconnect replay) arrive on the wire but must be
invisible to everything downstream: delivery stats, causal deliver
events, and the ``net.live.*`` effective-delivery counters all count a
frame at most once.  The split is pinned by two counters —
``wire_frames_received`` (pre-dedup) and ``frames_received``
(post-dedup) — whose difference is exactly ``dupes_dropped``.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core.exact_bvc import ExactBVCProcess
from repro.obs.causal import CausalCollector, use_causal_collector
from repro.obs.metrics import MetricsRegistry
from repro.system.messages import Message
from repro.system.transport import wire
from repro.system.transport.live import LiveNode, LiveTransport, NodeAddress

INSTANCE = "dedup-test"


def make_node(tmp_path, **kwargs) -> LiveNode:
    return LiveNode(
        0, 2, 0, process=None,
        address=NodeAddress(0, "uds", path=str(tmp_path / "n0.sock")),
        instance=INSTANCE,
        **kwargs,
    )


def replay(node: LiveNode, record: tuple, times: int) -> None:
    async def go():
        for _ in range(times):
            await node._on_record(1, record)

    asyncio.run(go())


class TestDeliveryDedup:
    def test_wire_vs_effective_counters(self, tmp_path):
        node = make_node(tmp_path)
        record = wire.decode_body(
            wire.encode_message(Message(1, 0, "bc:1", (1.0,)), 0)[4:]
        )
        replay(node, record, 3)  # original + two retransmits
        assert node.wire_frames_received == 3
        assert node.frames_received == 1
        assert node.dupes_dropped == 2
        assert (
            node.wire_frames_received
            == node.frames_received + node.dupes_dropped
        )

    def test_duplicate_never_reaches_delivery_stats_or_collector(self, tmp_path):
        # Deliveries are stamped at consumption, from the deduped buffer:
        # a retransmitted frame contributes zero deliver events and zero
        # delivery-stat increments even with tracing on.
        collector = CausalCollector(2)
        with use_causal_collector(collector):
            node = make_node(tmp_path)
            stamp = (0, 1, (0, 1))
            record = wire.decode_body(
                wire.encode_message(Message(1, 0, "bc:1", (1.0,)), 0, stamp)[4:]
            )
            replay(node, record, 2)
            for msg, meta in node._pending_msgs.pop(1):
                node._deliver_one(msg, meta, 0)
        assert node.stats.messages_delivered == 1
        delivers = [e for e in collector.events if e.kind == "deliver"]
        assert len(delivers) == 1
        assert delivers[0].fields["origin"] == [1, 0]

    def test_fold_exposes_the_invariant_as_metrics(self, tmp_path):
        node = make_node(tmp_path)
        record = wire.decode_body(
            wire.encode_message(Message(1, 0, "bc:1", (1.0,)), 0)[4:]
        )
        replay(node, record, 2)
        registry = MetricsRegistry()
        node._fold_live_metrics(registry)
        wire_n = registry.counter_value("net.live.wire_frames_received")
        effective = registry.counter_value("net.live.frames_received")
        dupes = registry.counter_value("net.live.dupes_dropped")
        assert (wire_n, effective, dupes) == (2, 1, 1)


class TestChaosReconnectInvariant:
    def test_invariant_holds_across_a_forced_reconnect(self):
        # Full cluster with a chaos-closed link: whatever mix of
        # retransmits and duplicates the reconnect produces, the wire
        # ledger must balance on the merged metrics.
        transport = LiveTransport(
            kind="uds", chaos_drop_link=(0, 1), chaos_drop_after=2
        )
        n, f, d = 5, 1, 2
        inputs = np.random.default_rng(5).normal(size=(n, d))
        processes = [
            ExactBVCProcess(n, f, pid, inputs[pid]) for pid in range(n)
        ]
        result = transport.run_sync(processes, f, seed=5)
        assert result.completed
        m = result.metrics
        assert m.counter_value("net.live.reconnects") >= 1
        assert m.counter_value("net.live.retransmits") >= 1
        assert m.counter_value("net.live.wire_frames_received") == (
            m.counter_value("net.live.frames_received")
            + m.counter_value("net.live.dupes_dropped")
        )
        # Effective deliveries drive the protocol-level stats: the sum of
        # per-tag deliveries cannot exceed effective MSG frames plus
        # self-deliveries (which never touch the wire).
        assert result.stats.messages_delivered <= (
            m.counter_value("net.live.frames_received")
            + result.stats.messages_sent
        )


class TestLiveCausalStamping:
    def test_remote_delivers_carry_origin_and_digests(self):
        # End-to-end over live-uds: sends are stamped on the wire and the
        # receiver's deliver events resolve their remote origin.
        collector = CausalCollector(4)
        n, f, d = 4, 1, 2
        inputs = np.random.default_rng(9).normal(size=(n, d))
        processes = [
            ExactBVCProcess(n, f, pid, inputs[pid]) for pid in range(n)
        ]
        with use_causal_collector(collector):
            result = LiveTransport(kind="uds").run_sync(processes, f, seed=9)
        assert result.completed
        sends = [e for e in collector.events if e.kind == "send"]
        delivers = [e for e in collector.events if e.kind == "deliver"]
        assert sends and delivers
        assert all("digest" in e.fields for e in sends)
        remote = [e for e in delivers if "origin" in e.fields]
        assert remote, "no cross-node deliveries were stamped"
        for ev in remote:
            origin_node, origin_eid = ev.fields["origin"]
            assert collector.events[origin_eid].kind == "send"
            assert collector.events[origin_eid].pid == origin_node
            # Causality: the deliver is strictly after its send.
            assert ev.lamport > collector.events[origin_eid].lamport
