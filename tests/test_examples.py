"""Smoke tests: every shipped example runs to completion.

The examples are part of the public deliverable; these tests execute each
one's ``main()`` in-process (stdout captured by pytest) so a refactor that
breaks an example breaks the suite.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart",
    "sensor_fusion",
    "geometry_playground",
    "defensible_region",
    "robust_aggregation",
    "impossibility_tour",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_complete(self):
        present = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
        assert set(FAST_EXAMPLES) <= present
        assert "mesh_network" in present  # exercised by its own slow test

    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_example_runs(self, name, capsys):
        module = _load(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 50  # produced real output

    def test_mesh_network_reduced(self, capsys, monkeypatch):
        """Run the mesh example with fewer rounds to keep the suite fast."""
        module = _load("mesh_network")
        # patch its trial to fewer rounds by calling trial() directly
        import numpy as np

        from repro.system.topology import ring_lattice_topology

        inputs = np.random.default_rng(1).normal(size=(8, 2))
        module.trial("ring k=2", ring_lattice_topology(8, 2), inputs,
                     faulty=7, rounds=15)
        out = capsys.readouterr().out
        assert "validity OK" in out
