"""Probes riding DST scenarios: injections must trip the matching probe."""

from __future__ import annotations

from repro.dst import replay
from repro.dst.explore import run_scenario
from repro.dst.scenarios import Scenario


class TestScenarioProbes:
    def test_honest_scenario_clean(self):
        result = run_scenario(
            Scenario(algorithm="algo", n=6, d=2, f=1, seed=7),
            probes=("all",),
        )
        assert result.ok
        assert result.probe_violations == 0
        assert {r.name for r in result.probe_reports} == {
            "validity", "agreement", "broadcast",
        }

    def test_split_brain_trips_agreement_and_validity(self):
        result = run_scenario(
            Scenario(algorithm="algo", n=6, d=2, f=1, seed=3,
                     inject="split-brain"),
            probes=("all",),
        )
        assert not result.ok and "agreement" in result.violations
        tripped = {r.name for r in result.probe_reports if r.violations}
        assert "agreement" in tripped
        assert "validity" in tripped

    def test_equivocation_strategy_still_safe(self):
        # an equivocating Byzantine sender is within the fault model: the
        # protocol masks it, so the probes must stay silent (no false
        # positives under real — tolerated — faults)
        from repro.dst.scenarios import FaultClause

        result = run_scenario(
            Scenario(algorithm="algo", n=6, d=2, f=1, seed=5,
                     faults=(FaultClause(pid=0, kind="equivocate"),)),
            probes=("all",),
        )
        assert result.ok
        assert result.probe_violations == 0

    def test_no_probes_yields_no_reports(self):
        result = run_scenario(Scenario(algorithm="algo", n=6, d=2, f=1, seed=7))
        assert result.probe_reports == ()
        assert result.probe_violations == 0


class TestReplayProbes:
    def test_replay_forwards_probes(self, tmp_path):
        report = replay(
            Scenario(algorithm="algo", n=6, d=2, f=1, seed=3,
                     inject="split-brain"),
            probes=("all",),
            trace_path=str(tmp_path / "trace.jsonl"),
        )
        assert report.result.probe_violations >= 1
        done = next(e for e in report.tracer.events
                    if e.name == "dst.replay.done")
        assert done.fields["probe_violations"] == report.result.probe_violations
