"""Replay-token round-trips and the committed regression-seed corpus.

``tests/corpus/*.json`` is the promoted-counterexample store: every seed
is replayed on every test run and must match its recorded expectation —
``{"ok": true}`` seeds are regression fences (the invariants must hold),
``{"violates": ...}`` seeds are expected failures (the injected-bug demo
must keep failing the same way).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dst.corpus import (
    decode_token,
    encode_token,
    load_corpus,
    load_seed,
    replay,
    save_seed,
)
from repro.dst.scenarios import FaultClause, Scenario, ScheduleWindow
from repro.obs import read_jsonl

CORPUS_DIR = Path(__file__).resolve().parents[1] / "corpus"
CORPUS = load_corpus(CORPUS_DIR)


def small_scenario(**kw):
    base = dict(
        algorithm="averaging", n=4, d=2, f=1, seed=21,
        faults=(FaultClause(pid=3, kind="silent", start=2, end=9),),
        schedule=(ScheduleWindow(kind="delay", start=0, end=30, victims=(1,)),),
    )
    base.update(kw)
    return Scenario(**base)


class TestTokens:
    def test_round_trip(self):
        s = small_scenario()
        assert decode_token(encode_token(s)) == s

    def test_token_is_urlsafe_single_line(self):
        tok = encode_token(small_scenario())
        assert tok.startswith("dst1-")
        assert "\n" not in tok and " " not in tok
        assert "=" not in tok  # padding stripped

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError, match="not a replay token"):
            decode_token("xyz-AAAA")

    def test_corrupt_payload_rejected(self):
        with pytest.raises(ValueError, match="corrupt replay token"):
            decode_token("dst1-not!really@base64")

    def test_tokens_canonical(self):
        # Same scenario -> same token, independent of construction order.
        a = small_scenario()
        b = Scenario.from_dict(json.loads(json.dumps(a.to_dict())))
        assert encode_token(a) == encode_token(b)


class TestReplay:
    def test_replay_collects_forensics(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        rep = replay(small_scenario(), trace_path=out)
        assert rep.ok
        events = {e.name for e in rep.tracer.events}
        assert {"dst.replay.start", "dst.replay.done"} <= events
        assert rep.span_names()  # the protocol stack emitted spans
        assert out.exists()
        assert read_jsonl(out)  # parses back

    def test_replay_from_token_matches_scenario_replay(self):
        s = small_scenario()
        assert replay(encode_token(s)).ok == replay(s).ok


class TestSeedFiles:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "seed.json"
        saved = save_seed(path, small_scenario(), expect={"ok": True},
                          notes="round-trip test")
        loaded = load_seed(path)
        assert loaded.scenario == saved.scenario
        assert loaded.expect_ok and loaded.expected_violation is None
        assert loaded.notes == "round-trip test"

    def test_hand_edited_seed_detected(self, tmp_path):
        path = tmp_path / "seed.json"
        save_seed(path, small_scenario())
        data = json.loads(path.read_text())
        data["scenario"]["seed"] += 1  # token now stale
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="token does not match"):
            load_seed(path)

    def test_expectation_mismatch_reported(self):
        from repro.dst.corpus import SeedCase

        rep = replay(small_scenario())
        bad = SeedCase(name="x", scenario=small_scenario(),
                       expect={"violates": "agreement"})
        msg = bad.check(rep.result)
        assert msg is not None and "expected a 'agreement' violation" in msg


class TestCommittedCorpus:
    def test_corpus_is_populated(self):
        assert len(CORPUS) >= 5

    def test_corpus_covers_all_algorithms(self):
        assert {c.scenario.algorithm for c in CORPUS} == {
            "exact", "algo", "k1", "averaging"
        }

    def test_corpus_has_an_expected_failure_seed(self):
        assert any(c.expected_violation for c in CORPUS)

    @pytest.mark.parametrize("case", CORPUS, ids=[c.name for c in CORPUS])
    def test_seed_replays_to_expectation(self, case):
        rep = replay(case.scenario)
        mismatch = case.check(rep.result)
        assert mismatch is None, mismatch

    @pytest.mark.parametrize("case", CORPUS, ids=[c.name for c in CORPUS])
    def test_seed_token_matches_body(self, case):
        # load_seed already validates this; assert explicitly so a future
        # format change cannot silently drop the check.
        raw = json.loads(Path(case.path).read_text())
        assert decode_token(raw["token"]) == case.scenario
